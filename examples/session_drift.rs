//! Reader drift over a long reading session (§5's "indirect effects").
//!
//! Simulates a screening session where the reader fatigues and adapts to
//! the CADT's precision, printing the per-batch false-negative rate and the
//! drifting behavioural parameters. This is the data that would tell an
//! assessor whether the static per-class model needs per-period refitting.
//!
//! ```text
//! cargo run --release --example session_drift
//! ```

use hmdiv::sim::cadt::Cadt;
use hmdiv::sim::reader::Reader;
use hmdiv::sim::scenario;
use hmdiv::sim::session::{run_session, DriftConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = scenario::trial_population()?;
    let cadt = Cadt::default_detector()?;
    let reader = Reader::expert();

    for (label, drift) in [
        ("static reader (control)", DriftConfig::none()),
        (
            "fatiguing reader",
            DriftConfig {
                fatigue_per_1000: 0.10,
                trust_learning_rate: 0.0,
                complacency_coupling: 0.0,
            },
        ),
        (
            "adapting + complacent reader",
            DriftConfig {
                fatigue_per_1000: 0.02,
                trust_learning_rate: 0.01,
                complacency_coupling: 0.7,
            },
        ),
    ] {
        println!("== {label} ==");
        println!(
            "{:>5} {:>8} {:>9} {:>11} {:>12} {:>9}",
            "batch", "FN rate", "lapse", "trust", "neglect", "cancers"
        );
        let series = run_session(&population, &cadt, &reader, &drift, 8, 2_000, 4242)?;
        for b in &series {
            println!(
                "{:>5} {:>8.3} {:>9.3} {:>11.3} {:>12.3} {:>9}",
                b.batch,
                b.fn_rate().unwrap_or(f64::NAN),
                b.lapse_rate,
                b.prompt_trust,
                b.unprompted_neglect,
                b.cancers
            );
        }
        println!();
    }
    Ok(())
}
