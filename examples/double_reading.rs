//! Double reading and team configurations (§7), analytically and by
//! simulation.
//!
//! Compares the false-negative rate of single reading, UK-style double
//! reading (unilateral recall), consensus, arbitration, and a pair of less
//! qualified readers — first with the analytic team model over the paper's
//! parameter table, then with the behavioural simulator to confirm the same
//! ordering emerges from micro-level behaviour.
//!
//! ```text
//! cargo run --release --example double_reading
//! ```

use hmdiv::core::multi_reader::{CombinationRule, ReaderSkill, TeamModel};
use hmdiv::core::paper;
use hmdiv::prob::Probability;
use hmdiv::sim::engine::{SimConfig, Simulation, World};
use hmdiv::sim::protocol::DecisionRule;
use hmdiv::sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    analytic()?;
    simulated()?;
    Ok(())
}

fn analytic() -> Result<(), Box<dyn std::error::Error>> {
    println!("== analytic team model (paper parameters, field profile) ==");
    let p = |v: f64| Probability::new(v).expect("literal probability");
    let expert = ReaderSkill::builder()
        .class("easy", p(0.14), p(0.18))
        .class("difficult", p(0.4), p(0.9))
        .build()?;
    let machine = |b: hmdiv::core::multi_reader::TeamModelBuilder| {
        b.machine("easy", p(0.07)).machine("difficult", p(0.41))
    };
    let field = paper::field_profile()?;
    let rows: Vec<(&str, TeamModel)> = vec![
        (
            "single reader + CADT",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .build()?,
        ),
        (
            "double reading + CADT (either recalls)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert.clone())
                .rule(CombinationRule::EitherRecalls)
                .build()?,
        ),
        (
            "double reading + CADT (arbitrated)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert.clone())
                .rule(CombinationRule::Arbitrated {
                    arbiter: expert.clone(),
                })
                .build()?,
        ),
        (
            "double reading + CADT (consensus)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert)
                .rule(CombinationRule::Consensus)
                .build()?,
        ),
    ];
    for (name, team) in &rows {
        println!(
            "{:<42} P(FN) = {:.5}",
            name,
            team.system_failure(&field)?.value()
        );
    }
    println!();
    Ok(())
}

fn simulated() -> Result<(), Box<dyn std::error::Error>> {
    println!("== behavioural simulation (enriched population, 200k cases) ==");
    let run = |world: World, label: &str| -> Result<(), Box<dyn std::error::Error>> {
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 200_000,
                seed: 808,
                threads: 4,
            },
        )
        .run()?;
        println!(
            "{:<42} FN rate {:.4}, FP rate {:.4}",
            label,
            report.fn_rate().map(|p| p.value()).unwrap_or(f64::NAN),
            report.fp_rate().map(|p| p.value()).unwrap_or(f64::NAN)
        );
        Ok(())
    };

    let enrich = |mut world: World| -> Result<World, Box<dyn std::error::Error>> {
        world.population = scenario::trial_population()?;
        Ok(world)
    };

    run(
        enrich(scenario::unaided_world()?)?,
        "single expert, unaided",
    )?;
    run(enrich(scenario::default_world()?)?, "single expert + CADT")?;
    run(
        enrich(scenario::double_reading_world()?)?,
        "double experts + CADT (either recalls)",
    )?;
    run(
        enrich(scenario::novice_pair_world()?)?,
        "two novices + CADT (either recalls)",
    )?;

    // Consensus variant assembled by hand.
    let mut consensus = scenario::double_reading_world()?;
    consensus.population = scenario::trial_population()?;
    consensus.team.rule = DecisionRule::Consensus;
    run(consensus, "double experts + CADT (consensus)")?;
    Ok(())
}
