//! Observability quickstart: enable the `hmdiv-obs` layer, run a simulation
//! and a parallel Monte-Carlo estimate, and print both export formats.
//!
//! Metrics are off by default and cost one atomic load per run when
//! disabled; enabling them changes no simulated result bit (the
//! instrumentation rides the deterministic fold as timing-only side data).
//!
//! Run with `cargo run --release --example metrics_snapshot`.

use hmdiv::obs;
use hmdiv::prob::Probability;
use hmdiv::rbd::monte_carlo::monte_carlo_failure_par;
use hmdiv::rbd::{Block, RbdError};
use hmdiv::sim::engine::{SimConfig, Simulation};
use hmdiv::sim::scenario;

fn failure_of(name: &str) -> Result<Probability, RbdError> {
    Ok(Probability::clamped(match name {
        "Hdetect" => 0.2,
        "Mdetect" => 0.07,
        _ => 0.1,
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Equivalent to running with HMDIV_OBS=1 in the environment.
    obs::set_enabled(true);

    // A behavioural-simulator run: records cases/sec, per-worker busy time
    // and stratified per-class outcome counters under `sim.engine.*`.
    let world = scenario::trial_world()?;
    let report = Simulation::new(
        world,
        SimConfig {
            cases: 50_000,
            seed: 2003,
            threads: 4,
        },
    )
    .run()?;
    println!(
        "simulated {} cases, FN rate {:.4}",
        report.total_cases(),
        report.fn_rate().map(|p| p.value()).unwrap_or(f64::NAN)
    );

    // A parallel Monte-Carlo estimate: records `rbd.mc.*` sample throughput
    // and the `rbd.compile` span.
    let sys = Block::series(vec![
        Block::parallel(vec![
            Block::component("Hdetect"),
            Block::component("Mdetect"),
        ]),
        Block::component("Hclassify"),
    ]);
    let est = monte_carlo_failure_par(&sys, failure_of, 500_000, 42, 4)?;
    println!("Fig. 2 P(FN) ≈ {:.6}", est.failure.value());

    let snapshot = obs::snapshot();
    println!("\n-- JSON snapshot (what `repro --metrics=PATH` writes) --");
    print!("{}", obs::export::to_json(&snapshot));
    println!("\n-- Prometheus text exposition --");
    print!("{}", obs::export::to_prometheus(&snapshot));
    Ok(())
}
