//! Serve quickstart: start the evaluation server in-process, drive the
//! JSON-lines protocol over a real loopback socket, and read the paper's
//! headline numbers back off the wire.
//!
//! The same session works against a standalone server started with
//! `cargo run --release --bin repro -- serve` — point
//! [`Client::connect`] at its printed address instead.
//!
//! Run with `cargo run --release --example serve_client`.

use hmdiv::serve::{json, Client, Json, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Metrics are optional; enabling them makes the `metrics` verb return
    // live counters (request latency, batch sizes, per-verb counts).
    hmdiv::obs::set_enabled(true);

    let server = Server::start(ServerConfig::default())?;
    println!("server listening on {}", server.addr());
    let mut client = Client::connect(server.addr())?;

    // Load the paper's two-class model. The registry content-addresses it:
    // loading identical parameters twice yields the same id.
    let receipt = client.request(
        "load",
        vec![(
            "classes".into(),
            json::parse(
                r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                    "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
            )?,
        )],
    )?;
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .ok_or("load receipt without model_id")?
        .to_owned();
    println!("loaded model {model_id}");

    // Table 2's field estimate: P(system failure) = 0.18902.
    let field_profile = json::parse(r#"{"easy":0.9,"difficult":0.1}"#)?;
    let result = client.request(
        "evaluate",
        vec![
            ("model".into(), Json::str(model_id.as_str())),
            ("profile".into(), field_profile.clone()),
        ],
    )?;
    let failure = result
        .get("failure")
        .and_then(Json::as_f64)
        .ok_or("evaluate without failure")?;
    println!("field P(system failure) = {failure:.5}");

    // A what-if: improve the machine tenfold on difficult cases.
    let what_if = client.request(
        "extrapolate",
        vec![
            ("model".into(), Json::str(model_id.as_str())),
            ("profile".into(), field_profile.clone()),
            (
                "scenario".into(),
                json::parse(r#"[{"op":"improve_machine","class":"difficult","factor":10}]"#)?,
            ),
        ],
    )?;
    println!(
        "improve machine 10x on difficult: {:.5} -> {:.5} (gain {:.5})",
        what_if
            .get("before")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
        what_if
            .get("after")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
        what_if
            .get("improvement")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
    );

    // Pipelining: send a scenario sweep as many requests at once; the
    // server's micro-batcher coalesces them into one dense evaluation.
    let requests: Vec<(String, Vec<(String, Json)>)> = (1..=8)
        .map(|i| {
            (
                "scenarios".to_owned(),
                vec![
                    ("model".to_owned(), Json::str(model_id.as_str())),
                    ("profile".to_owned(), field_profile.clone()),
                    (
                        "scenarios".to_owned(),
                        Json::Arr(vec![json::parse(&format!(
                            r#"[{{"op":"improve_machine_everywhere","factor":{i}}}]"#
                        ))
                        .expect("static JSON")]),
                    ),
                ],
            )
        })
        .collect();
    println!("factor sweep (pipelined, micro-batched server-side):");
    for (i, outcome) in client.pipeline(requests)?.into_iter().enumerate() {
        let failures = outcome?;
        let p = failures
            .get("failures")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(Json::as_f64)
            .ok_or("scenarios without failures")?;
        println!("  machine improved {}x everywhere -> {p:.5}", i + 1);
    }

    // The `metrics` verb exposes what the batcher actually did.
    let metrics = client.request("metrics", vec![])?;
    let prometheus = metrics
        .get("prometheus")
        .and_then(Json::as_str)
        .unwrap_or_default();
    for line in prometheus
        .lines()
        .filter(|l| l.starts_with("hmdiv_serve_batch") || l.starts_with("hmdiv_serve_verb"))
    {
        println!("  {line}");
    }

    // Graceful shutdown: in-flight work drains before the listener stops.
    client.request("shutdown", vec![])?;
    server.join();
    println!("server drained and stopped");
    Ok(())
}
