//! Reader variability across a screening programme (§5 item 2).
//!
//! Builds a cohort of readers with different abilities and automation-bias
//! levels over the same CADT, evaluates the programme-level dependability,
//! identifies the weakest reader, shows that the best CADT-improvement
//! target can differ from reader to reader, and uses McNemar's paired test
//! to decide whether the CADT measurably helps a given reader.
//!
//! ```text
//! cargo run --release --example reader_cohort
//! ```

use hmdiv::core::cohort::{CohortMember, ReaderCohort};
use hmdiv::core::{paper, ClassParams, ModelParams, SequentialModel};
use hmdiv::prob::compare::mcnemar_exact;
use hmdiv::prob::Probability;
use rand::Rng;
use rand::SeedableRng;

fn reader(hf_ms_easy: f64, hf_mf_easy: f64, hf_ms_diff: f64, hf_mf_diff: f64) -> SequentialModel {
    let p = |v: f64| Probability::new(v).expect("literal probability");
    SequentialModel::new(
        ModelParams::builder()
            .class(
                "easy",
                ClassParams::new(p(0.07), p(hf_ms_easy), p(hf_mf_easy)),
            )
            .class(
                "difficult",
                ClassParams::new(p(0.41), p(hf_ms_diff), p(hf_mf_diff)),
            )
            .build()
            .expect("two classes"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cohort = ReaderCohort::new(vec![
        CohortMember {
            name: "R1 (careful senior)".into(),
            model: reader(0.10, 0.12, 0.30, 0.55),
            weight: 1.0,
        },
        CohortMember {
            name: "R2 (paper average)".into(),
            model: paper::example_model()?,
            weight: 2.0,
        },
        CohortMember {
            name: "R3 (fast, bias-prone)".into(),
            model: reader(0.14, 0.40, 0.40, 0.98),
            weight: 1.5,
        },
        CohortMember {
            name: "R4 (junior)".into(),
            model: reader(0.22, 0.30, 0.55, 0.93),
            weight: 0.5,
        },
    ])?;
    let field = paper::field_profile()?;

    println!("== programme-level dependability (field profile) ==");
    let summary = cohort.evaluate(&field)?;
    for row in &summary.rows {
        println!(
            "  {:<24} caseload {:>4.0}%  P(FN) = {:.4}",
            row.name,
            row.share * 100.0,
            row.failure.value()
        );
    }
    println!(
        "  cohort mean {:.4}; best {:.4}, worst {:.4} (spread {:.4})",
        summary.mean.value(),
        summary.best.value(),
        summary.worst.value(),
        summary.spread()
    );

    println!("\n== best CADT-improvement target, per reader (section 6.2) ==");
    for (name, class) in cohort.preferred_targets(&field)? {
        println!("  {name:<24} -> improve machine on `{class}`");
    }

    println!("\n== does the CADT help reader R2? paired (McNemar) analysis ==");
    // Simulate the classic paired design: the same 600 cancer cases read
    // with and without the tool, using R2's conditional probabilities.
    // Without the tool, failure probability is the PHf|Mf branch (the
    // machine effectively "always fails" for an unaided reading).
    let model = paper::example_model()?;
    let trial_profile = paper::trial_profile()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1903);
    let (mut b, mut c) = (0u64, 0u64); // b: unaided fails, aided succeeds
    for _ in 0..600 {
        let class = trial_profile.sample(&mut rng).clone();
        let cp = model.params().class(&class)?;
        let machine_ok = rng.gen::<f64>() >= cp.p_mf().value();
        let aided_p = if machine_ok {
            cp.p_hf_given_ms()
        } else {
            cp.p_hf_given_mf()
        };
        let unaided_fail = rng.gen::<f64>() < cp.p_hf_given_mf().value();
        let aided_fail = rng.gen::<f64>() < aided_p.value();
        match (unaided_fail, aided_fail) {
            (true, false) => b += 1,
            (false, true) => c += 1,
            _ => {}
        }
    }
    let cmp = mcnemar_exact(b, c);
    println!("  discordant pairs: {b} saved by the CADT vs {c} lost with it");
    println!(
        "  exact McNemar p = {:.5} -> {}",
        cmp.p_value,
        if cmp.significant_at(0.05) {
            "the CADT measurably helps"
        } else {
            "inconclusive"
        }
    );
    Ok(())
}
