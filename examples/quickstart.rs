//! Quickstart: reproduce the paper's headline numbers in a few lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hmdiv::core::decomposition::decompose;
use hmdiv::core::extrapolate::Scenario;
use hmdiv::core::{paper, ClassId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §5 worked example: two classes of cases, a CADT, a reader.
    let model = paper::example_model()?;
    let trial = paper::trial_profile()?;
    let field = paper::field_profile()?;

    // Table 2: system failure probability under each demand profile.
    println!(
        "P(false negative), trial profile: {:.3}",
        model.system_failure(&trial)?.value()
    );
    println!(
        "P(false negative), field profile: {:.3}",
        model.system_failure(&field)?.value()
    );

    // Table 3: which class should the CADT designers improve?
    for class in ["easy", "difficult"] {
        let prediction = Scenario::new()
            .improve_machine(ClassId::new(class), 10.0)
            .predict(&model, &field)?;
        println!(
            "improve CADT x10 on {class:<10} -> field failure {:.3} (gain {:.4})",
            prediction.after.value(),
            prediction.improvement()
        );
    }

    // §6.2: the covariance term explains why the rare difficult cases win.
    let d = decompose(&model, &field)?;
    println!(
        "eq. (10): E[PHf|Ms] {:.3} + E[PMf]E[t] {:.4} + cov {:.4} = {:.3}",
        d.mean_hf_given_ms,
        d.mean_field_term(),
        d.covariance,
        d.direct.value()
    );
    Ok(())
}
