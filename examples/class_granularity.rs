//! The §6.2 class-granularity pitfall, demonstrated end to end.
//!
//! A high coherence index `t(x)` measured for a class may be genuine
//! human–machine coupling — or an artefact of lumping together subclasses of
//! different difficulty. This example builds a world where the reader is
//! *completely indifferent* to the machine within each subclass, merges the
//! subclasses the way a class-blind trial would, and shows:
//!
//! 1. the merged class reports a large, spurious `t`;
//! 2. predictions under the *measured* profile are still exact (merging is
//!    lossless for the environment it was measured in);
//! 3. extrapolation to a new case mix goes wrong for the coarse model and
//!    right for the fine one — the cost of the artefact;
//! 4. the sensitivity toolkit shows where the prediction uncertainty lives.
//!
//! ```text
//! cargo run --example class_granularity
//! ```

use hmdiv::core::aggregation::{coarsen, merge_classes};
use hmdiv::core::sensitivity::{delta_method_variance, gradients};
use hmdiv::core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv::prob::Probability;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = |v: f64| Probability::new(v).expect("literal probability");

    // Within each subclass the reader ignores the machine: t = 0 exactly.
    let fine_model = SequentialModel::new(
        ModelParams::builder()
            .class(
                "screening-easy",
                ClassParams::new(p(0.05), p(0.10), p(0.10)),
            )
            .class(
                "screening-hard",
                ClassParams::new(p(0.60), p(0.80), p(0.80)),
            )
            .build()?,
    );
    let measured_profile = DemandProfile::builder()
        .class("screening-easy", 0.7)
        .class("screening-hard", 0.3)
        .build()?;

    println!("== fine-grained truth ==");
    for (class, cp) in fine_model.params().iter() {
        println!("  {class}: {cp}, t(x) = {:.3}", cp.coherence_index());
    }

    let members = [
        ClassId::new("screening-easy"),
        ClassId::new("screening-hard"),
    ];
    let merged = merge_classes(&fine_model, &measured_profile, &members)?;
    println!("\n== what a class-blind trial measures ==");
    println!(
        "  merged: {}, t = {:.3}  <-- spurious coupling!",
        merged.params,
        merged.coherence_index()
    );

    let (coarse_model, coarse_profile) = coarsen(&fine_model, &measured_profile, &members)?;
    println!("\n== predictions under the measured mix (both exact) ==");
    println!(
        "  fine:   {:.5}",
        fine_model.system_failure(&measured_profile)?.value()
    );
    println!(
        "  coarse: {:.5}",
        coarse_model.system_failure(&coarse_profile)?.value()
    );

    // The environment changes: hard cases double in share.
    let new_profile = DemandProfile::builder()
        .class("screening-easy", 0.4)
        .class("screening-hard", 0.6)
        .build()?;
    let truth = fine_model.system_failure(&new_profile)?.value();
    // The coarse observer can't see the shift; their single class keeps its
    // parameters.
    let coarse_stuck = coarse_model.system_failure(&coarse_profile)?.value();
    println!("\n== extrapolating to a harder case mix (easy 40% / hard 60%) ==");
    println!("  fine model (correct):      {truth:.5}");
    println!("  coarse model (stuck):      {coarse_stuck:.5}");
    println!("  coarse bias:               {:+.5}", coarse_stuck - truth);

    println!("\n== sensitivity: where does prediction uncertainty live? ==");
    for g in gradients(&fine_model, &new_profile)? {
        let (name, value) = g.dominant();
        println!(
            "  {}: dPHf/dPMf = {:+.3}, dominant parameter {} ({:+.3})",
            g.class, g.d_p_mf, name, value
        );
    }
    let (var, contributions) = delta_method_variance(&fine_model, &new_profile, |_, _| 0.02)?;
    println!(
        "  delta-method sd with ±0.02 parameter SEs: {:.4}",
        var.sqrt()
    );
    for (class, share) in contributions {
        println!(
            "    {class}: {:.1}% of prediction variance",
            100.0 * share / var
        );
    }
    Ok(())
}
