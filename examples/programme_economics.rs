//! Cost-effectiveness of screening configurations (§7).
//!
//! Measures FN/FP rates for candidate configurations with the behavioural
//! simulator, prices them with a cost model, and ranks them — the decision
//! the paper's "improve the cost-effectiveness of screening programmes"
//! remark points at. Also prints the incremental cost-effectiveness ratio
//! of stepping up from single to double reading.
//!
//! ```text
//! cargo run --release --example programme_economics
//! ```

use hmdiv::core::economics::{icer, price_configurations, ConfigurationProfile, CostModel};
use hmdiv::prob::Probability;
use hmdiv::sim::engine::{SimConfig, Simulation, World};
use hmdiv::sim::scenario;

fn measure(world: World, name: &str, readers: usize, uses_cadt: bool) -> ConfigurationProfile {
    // Rates measured on the enriched population for precision; FN is a
    // per-cancer rate and FP a per-normal rate, so enrichment does not bias
    // them (only their estimation precision).
    let mut enriched = world;
    enriched.population = scenario::trial_population().expect("population");
    let report = Simulation::new(
        enriched,
        SimConfig {
            cases: 150_000,
            seed: 606,
            threads: 4,
        },
    )
    .run()
    .expect("simulation");
    ConfigurationProfile {
        name: name.to_owned(),
        readers,
        uses_cadt,
        arbitration_rate: 0.0,
        fn_rate: report.fn_rate().expect("cancers present"),
        fp_rate: report.fp_rate().expect("normals present"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("measuring configurations (150k simulated cases each)...\n");
    let configurations = vec![
        measure(
            scenario::unaided_world()?,
            "single expert, unaided",
            1,
            false,
        ),
        measure(scenario::default_world()?, "single expert + CADT", 1, true),
        measure(
            scenario::double_reading_world()?,
            "double experts + CADT",
            2,
            true,
        ),
        measure(
            scenario::novice_pair_world()?,
            "two novices + CADT",
            2,
            true,
        ),
    ];
    for c in &configurations {
        println!(
            "  {:<26} FN {:.4}  FP {:.4}",
            c.name,
            c.fn_rate.value(),
            c.fp_rate.value()
        );
    }

    let costs = CostModel {
        reading_cost: 12.0,
        arbitration_cost: 18.0,
        recall_cost: 250.0,
        missed_cancer_cost: 120_000.0,
        cadt_cost: 3.0,
    };
    let prevalence = Probability::new(0.008)?;
    println!("\n== priced at field prevalence 0.8% ==");
    println!(
        "{:<28} {:>12} {:>14} {:>14}",
        "configuration", "cost/case", "missed/100k", "recalls/100k"
    );
    let priced = price_configurations(&costs, prevalence, &configurations)?;
    for row in &priced {
        println!(
            "{:<28} {:>12.2} {:>14.1} {:>14.0}",
            row.name, row.cost_per_case, row.missed_per_100k, row.recalls_per_100k
        );
    }

    let single = priced.iter().find(|c| c.name == "single expert + CADT");
    let double = priced.iter().find(|c| c.name == "double experts + CADT");
    if let (Some(single), Some(double)) = (single, double) {
        if let Some(ratio) = icer(single, double) {
            println!(
                "\nstepping single -> double reading costs {ratio:.0} per additional cancer caught"
            );
        }
    }
    Ok(())
}
