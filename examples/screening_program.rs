//! A screening programme evaluating whether to adopt a CADT.
//!
//! The full pipeline the paper proposes, run against the simulator:
//!
//! 1. run an *enriched* controlled trial of reader + CADT (cancers
//!    oversampled, difficult cases oversampled);
//! 2. estimate the per-class conditional probabilities with confidence
//!    intervals;
//! 3. extrapolate to the field demand profile with the clear-box model;
//! 4. validate against a direct field simulation (a luxury only the
//!    simulator affords), and compare with the naive carry-over of the raw
//!    trial failure rate;
//! 5. quantify parameter uncertainty with a posterior credible interval.
//!
//! ```text
//! cargo run --release --example screening_program
//! ```

use hmdiv::core::uncertainty::propagate;
use hmdiv::prob::estimate::CiMethod;
use hmdiv::sim::scenario;
use hmdiv::trial::design::TrialDesign;
use hmdiv::trial::estimate::{estimate_trial, posterior_from_trial};
use hmdiv::trial::extrapolate::validate_extrapolation;
use hmdiv::trial::report::render_estimates;
use hmdiv::trial::run::run_trial;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = scenario::default_world()?;
    let design = TrialDesign::new("adoption-trial", 60_000, 0.5, 20_030_622)?
        .with_oversample("difficult", 3.0)?;

    println!(
        "running enriched trial `{}` ({} cases)...",
        design.name(),
        design.cases()
    );
    let data = run_trial(&world, &design)?;
    println!(
        "trial composition: {} cancers / {} cases; raw trial FN rate {:.4}\n",
        data.report.cancer_cases(),
        data.report.total_cases(),
        data.report.fn_rate().map(|p| p.value()).unwrap_or(f64::NAN),
    );

    let estimates = estimate_trial(&data, CiMethod::Wilson, 0.95, true)?;
    println!("estimated per-class parameters (95% Wilson intervals):");
    print!("{}", render_estimates(&estimates));
    for est in &estimates.classes {
        let (lo, t, hi) = est.coherence_index();
        println!("  t({}) = {:.3} in [{:.3}, {:.3}]", est.class, t, lo, hi);
    }
    println!();

    println!("validating trial -> field extrapolation (3M field cases)...");
    let report = validate_extrapolation(&world, &design, 3_000_000, 7)?;
    println!("  field profile observed:      {}", report.field_profile);
    println!(
        "  model-based field prediction: {:.4}",
        report.predicted.value()
    );
    println!(
        "  observed field FN rate:       {:.4}",
        report.observed.value()
    );
    println!(
        "  naive carry-over (trial rate): {:.4}",
        report.trial_rate.value()
    );
    println!(
        "  model error {:.4} vs naive error {:.4} -> clear-box model {}",
        report.model_error(),
        report.naive_error(),
        if report.model_beats_naive() {
            "wins"
        } else {
            "does not win"
        }
    );
    println!();

    println!("posterior uncertainty on the field prediction:");
    let posterior = posterior_from_trial(&data)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let uncertain = propagate(&posterior, &report.field_profile, 4000, &mut rng)?;
    let (lo, hi) = uncertain.credible_interval(0.95)?;
    println!(
        "  P(FN in field) = {:.4}, 95% credible interval [{:.4}, {:.4}]",
        uncertain.mean().value(),
        lo.value(),
        hi.value()
    );

    // Finally: which modelling assumptions does this extrapolation lean on?
    println!("\nextrapolation audit (paper section 5/6 caveats):");
    let warnings = hmdiv::core::advice::audit_extrapolation(
        &estimates.point_model()?,
        &hmdiv::core::extrapolate::Scenario::new(),
        &estimates.trial_profile()?,
        &report.field_profile,
        &hmdiv::core::advice::Thresholds::default(),
    )?;
    if warnings.is_empty() {
        println!("  no warnings: small shift, no parameter fiat");
    }
    for w in warnings {
        println!("  warning: {w}");
    }
    Ok(())
}
