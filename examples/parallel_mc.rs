//! Parallel Monte-Carlo estimation of the paper's Fig. 2 failure
//! probability, demonstrating the determinism contract: for a fixed seed
//! the estimate is bit-identical at any thread count.

use hmdiv::prob::Probability;
use hmdiv::rbd::monte_carlo::{monte_carlo_failure_par, MonteCarloEstimate};
use hmdiv::rbd::reliability::system_failure;
use hmdiv::rbd::{Block, RbdError};

fn failure_of(name: &str) -> Result<Probability, RbdError> {
    Ok(Probability::clamped(match name {
        "Hdetect" => 0.2,
        "Mdetect" => 0.07,
        _ => 0.1, // Hclassify
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2: (human detect | CADT detect) -> human classify.
    let sys = Block::series(vec![
        Block::parallel(vec![
            Block::component("Hdetect"),
            Block::component("Mdetect"),
        ]),
        Block::component("Hclassify"),
    ]);
    let exact = system_failure(&sys, failure_of)?;
    println!("exact P(FN)      = {:.6}", exact.value());

    // One million samples, seed 42, at several thread counts.
    let mut estimates: Vec<MonteCarloEstimate> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let est = monte_carlo_failure_par(&sys, failure_of, 1_000_000, 42, threads)?;
        println!(
            "threads={threads}: P(FN) ≈ {:.6} {}",
            est.failure.value(),
            est.interval
        );
        estimates.push(est);
    }
    assert!(
        estimates.windows(2).all(|w| w[0] == w[1]),
        "thread count must not change the estimate"
    );
    println!("all thread counts agree bit-for-bit");
    assert!(estimates[0].interval.contains(exact));
    println!("95% interval covers the exact value");
    Ok(())
}
