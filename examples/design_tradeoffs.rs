//! Design-space exploration for the CADT vendor.
//!
//! Uses the paper's analysis toolkit to answer three design questions:
//!
//! 1. *Where* should detection improvements go? (§6.2 leverage ranking and
//!    a greedy improvement-budget allocation.)
//! 2. *How far* can machine improvement take the system? (§6.1 lower bound
//!    and the Fig. 4 lines.)
//! 3. *Which operating point* should the detector ship with, trading false
//!    negatives against false positives under a recall-rate cap? (§7.)
//!
//! ```text
//! cargo run --example design_tradeoffs
//! ```

use hmdiv::core::design::{allocate_improvement_budget, rank_improvement_targets};
use hmdiv::core::importance::{machine_response_lines, system_lower_bound};
use hmdiv::core::tradeoff::{MachineRoc, TradeoffStudy, TwoSidedModel};
use hmdiv::core::{paper, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv::prob::Probability;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = paper::example_model()?;
    let field = paper::field_profile()?;

    println!("== 1. where should improvement effort go? ==");
    for lever in rank_improvement_targets(&model, &field)? {
        println!(
            "class {:<10} p(x)={:.2} t(x)={:.2} PMf(x)={:.2} -> eliminating machine failure buys {:.4}",
            lever.class.name(),
            lever.weight,
            lever.coherence_index,
            lever.p_mf,
            lever.max_benefit
        );
    }
    let alloc = allocate_improvement_budget(&model, &field, 4, 2.0)?;
    println!("greedy budget (4 halvings of PMf): {:?}", alloc.allocation);
    println!("field failure {:.4} -> {:.4}\n", alloc.before, alloc.after);

    println!("== 2. how far can machine improvement take the system? ==");
    for line in machine_response_lines(&model) {
        println!(
            "class {:<10} PHf(x) = {:.2} + PMf * {:.2}   (floor {:.2})",
            line.class().name(),
            line.lower_bound().value(),
            line.coherence_index(),
            line.lower_bound().value()
        );
    }
    println!(
        "system floor under the field profile: {:.4} (current {:.4})\n",
        system_lower_bound(&model, &field)?.value(),
        model.system_failure(&field)?.value()
    );

    println!("== 3. which operating point should ship? ==");
    let p = |v: f64| Probability::new(v).expect("literal probability");
    let fp_model = SequentialModel::new(
        ModelParams::builder()
            .class("clear", ClassParams::new(p(0.1), p(0.02), p(0.08)))
            .class("ambiguous", ClassParams::new(p(0.3), p(0.15), p(0.4)))
            .build()?,
    );
    let study = TradeoffStudy {
        base: TwoSidedModel {
            false_negative: model,
            false_positive: fp_model,
        },
        roc: MachineRoc::builder()
            .cancer_class("easy", 0.15)
            .cancer_class("difficult", 0.6)
            .normal_class("clear", 0.3)
            .normal_class("ambiguous", 0.9)
            .build()?,
        cancer_profile: field,
        normal_profile: DemandProfile::builder()
            .class("clear", 0.85)
            .class("ambiguous", 0.15)
            .build()?,
        prevalence: p(0.008),
    };
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "tau", "FN", "FP", "recall rate"
    );
    for point in study.sweep(6)? {
        println!(
            "{:>6.2} {:>10.4} {:>10.4} {:>12.4}",
            point.tau,
            point.fn_rate.value(),
            point.fp_rate.value(),
            point.recall_rate.value()
        );
    }
    for cap in [0.06, 0.08, 0.10] {
        match study.best_operating_point(201, 500.0, 1.0, Some(p(cap)))? {
            Some(best) => println!(
                "recall cap {:.0}% -> tau {:.2}, FN {:.4}, FP {:.4}",
                cap * 100.0,
                best.tau,
                best.fn_rate.value(),
                best.fp_rate.value()
            ),
            None => println!("recall cap {:.0}% -> infeasible", cap * 100.0),
        }
    }
    Ok(())
}
