//! Offline-compatible stub of the `serde` API surface used by the `hmdiv`
//! workspace.
//!
//! The build environment has no crates.io access, so the real `serde` cannot
//! be fetched. The workspace only *derives* `Serialize`/`Deserialize` (no
//! serializer backend such as `serde_json` is present), so the traits here
//! are markers: deriving them type-checks and records the intent, and the
//! real implementations can be restored by swapping this stub for upstream
//! serde when a registry is available.

#![deny(missing_docs)]

/// Marker for types that can be serialized.
///
/// Stub: carries no methods because no serializer backend exists in this
/// build environment.
pub trait Serialize {}

/// Marker for types that can be deserialized.
///
/// Stub: carries no methods because no deserializer backend exists in this
/// build environment.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_marker {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_marker!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
