//! Offline-compatible reimplementation of the subset of the `rand` 0.8 API
//! that the `hmdiv` workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the external `rand` crate cannot be fetched. This crate provides a
//! self-contained, drop-in replacement for the pieces the workspace relies
//! on:
//!
//! * [`RngCore`] / [`Rng`] — the core generator traits, with `gen`,
//!   `gen_range` and `gen_bool`.
//! * [`SeedableRng`] with `seed_from_u64`.
//! * [`rngs::StdRng`] — a deterministic generator (xoshiro256++ seeded via
//!   SplitMix64). It does **not** produce the same stream as the upstream
//!   `StdRng` (ChaCha12); all determinism guarantees in this workspace are
//!   relative to this implementation.
//! * [`distributions`] — the `Standard` distribution for `f64`, `f32`,
//!   `bool` and the unsigned integer types, plus the [`Distribution`] trait.
//!
//! Statistical quality: xoshiro256++ passes BigCrush and is more than
//! adequate for the Monte-Carlo estimation and property tests in this
//! workspace.

#![deny(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Extension methods for random value generation, blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// matching the upstream `rand` convention.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 sequence (same expansion rule as upstream rand).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
