//! Distributions and range sampling.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the natural domain of the type
/// (`[0, 1)` for floats, the full range for integers, fair for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// A range that can be sampled uniformly (the receiver of
/// [`crate::Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded integer sampling (Lemire-style widening multiply with
/// rejection).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone below 2^64 mod bound keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(bound);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}
