//! Offline-compatible stub of the `crossbeam` API surface used by the
//! `hmdiv` workspace: scoped threads.
//!
//! Since Rust 1.63 the standard library provides [`std::thread::scope`],
//! which covers everything this workspace needs from
//! `crossbeam::thread::scope`; this crate adapts the std API to the
//! crossbeam signatures so the calling code is source-compatible with the
//! real crate.

#![deny(missing_docs)]

pub mod thread {
    //! Scoped threads (see [`scope`]).

    use std::any::Any;

    /// Result of joining a scoped thread: `Err` holds the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning borrowing threads; see [`scope`].
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn nested threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread; join it to collect the result.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing stack
    /// frame. All spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates out of
    /// `scope` (std semantics) instead of being collected into the `Err`
    /// variant; the workspace joins every handle explicitly, so the
    /// difference is unobservable here.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this implementation; the `Result` shape is
    /// kept for signature compatibility with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<u64>()
            })
            .expect("scope succeeds");
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_via_scope_argument() {
            let got = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                    .join()
                    .expect("outer")
            })
            .expect("scope succeeds");
            assert_eq!(got, 7);
        }
    }
}
