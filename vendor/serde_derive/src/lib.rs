//! Dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stub.
//!
//! The stub traits are markers, so the derives only need to emit an empty
//! impl with the right generics. The input item is parsed with a small
//! hand-written scanner (no `syn`): skip attributes and visibility, read the
//! `struct`/`enum` keyword, the type name, and the generic parameter list.
//! `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_generics = item.params_with_bounds("");
    format!(
        "impl{ig} ::serde::Serialize for {name}{ty} {{}}",
        ig = impl_generics,
        name = item.name,
        ty = item.args()
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_generics = item.params_with_bounds("'de");
    format!(
        "impl{ig} ::serde::Deserialize<'de> for {name}{ty} {{}}",
        ig = impl_generics,
        name = item.name,
        ty = item.args()
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    /// Generic parameters with their bounds, defaults stripped, e.g.
    /// `["K: Ord", "T"]`.
    params: Vec<String>,
    /// Bare parameter names/lifetimes for use as type arguments, e.g.
    /// `["K", "T"]`.
    args: Vec<String>,
}

impl Item {
    /// `<extra, P1: B1, P2>` or `""`/`<extra>` when the item is not generic.
    fn params_with_bounds(&self, extra: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !extra.is_empty() {
            parts.push(extra.to_owned());
        }
        parts.extend(self.params.iter().cloned());
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// `<P1, P2>` or `""` when the item is not generic.
    fn args(&self) -> String {
        if self.args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.args.join(", "))
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.next() {
        Some(TokenTree::Ident(kw))
            if matches!(kw.to_string().as_str(), "struct" | "enum" | "union") => {}
        other => panic!("expected struct/enum/union, found {other:?}"),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    // Collect the generic parameter tokens, if any.
    let mut generics: Vec<TokenTree> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            for tok in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                generics.push(tok);
            }
        }
    }
    let (params, args) = split_generics(&generics);
    Item { name, params, args }
}

/// Splits the token list between `<` and `>` into per-parameter strings,
/// stripping default values (`= T`) and extracting the bare name of each
/// parameter for the type-argument position.
fn split_generics(tokens: &[TokenTree]) -> (Vec<String>, Vec<String>) {
    let mut params = Vec::new();
    let mut args = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    let mut flush = |current: &mut Vec<TokenTree>| {
        if current.is_empty() {
            return;
        }
        let (param, arg) = render_param(current);
        params.push(param);
        args.push(arg);
        current.clear();
    };
    for tok in tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tok.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                current.push(tok.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => flush(&mut current),
            _ => current.push(tok.clone()),
        }
    }
    flush(&mut current);
    (params, args)
}

/// Renders one generic parameter as (declaration without default, bare name).
fn render_param(tokens: &[TokenTree]) -> (String, String) {
    // Truncate at a top-level `=` (default value).
    let mut decl_end = tokens.len();
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                '=' if depth == 0 => {
                    decl_end = i;
                    break;
                }
                _ => {}
            }
        }
    }
    let decl_tokens = &tokens[..decl_end];
    let decl = render_tokens(decl_tokens);
    // The bare name: `'a` for lifetimes, `N` for `const N: usize`, the
    // leading ident otherwise.
    let arg = match decl_tokens.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => match decl_tokens.get(1) {
            Some(TokenTree::Ident(id)) => format!("'{id}"),
            _ => panic!("malformed lifetime parameter"),
        },
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => match decl_tokens.get(1) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => panic!("malformed const parameter"),
        },
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("malformed generic parameter {other:?}"),
    };
    (decl, arg)
}

fn render_tokens(tokens: &[TokenTree]) -> String {
    // Spaces between tokens are harmless (`K : Ord` parses fine) except
    // after a lifetime quote, which must stay glued to its identifier.
    let mut out = String::new();
    let mut glue = false;
    for tok in tokens {
        if !out.is_empty() && !glue {
            out.push(' ');
        }
        out.push_str(&tok.to_string());
        glue = matches!(tok, TokenTree::Punct(p) if p.as_char() == '\'');
    }
    out
}
