//! Offline-compatible mini property-testing framework exposing the subset of
//! the `proptest` API that the `hmdiv` workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This crate keeps the same *testing semantics* —
//! strategies compose with `prop_map`/`prop_filter`/`prop_oneof!`, the
//! [`proptest!`] macro runs each property over many generated cases,
//! `prop_assume!` rejects uninteresting cases — with two simplifications:
//!
//! * no shrinking: a failing case reports its message and the deterministic
//!   per-test seed instead of a minimised input;
//! * deterministic seeding: each test derives its RNG seed from the test
//!   name, so runs are reproducible without a persistence file.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                __result
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Rejects the current case (it does not count towards the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Asserts a condition inside a property, failing the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Chooses between several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
