//! Runs properties over many generated cases with deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// The case failed an assertion; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection (see `prop_assume!`).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure (see `prop_assert!` and friends).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// FNV-1a on the test name: a stable, platform-independent seed so each
/// property explores a distinct but reproducible stream of cases.
fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property until `config.cases` cases pass.
///
/// # Panics
///
/// Panics when a case fails, or when rejections exceed `cases * 20 + 1000`
/// (an over-strict `prop_assume!`/`prop_filter`).
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = seed_from_name(name);
    let mut rng = StdRng::seed_from_u64(seed);
    let reject_cap = u64::from(config.cases) * 20 + 1000;
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "property '{name}': {rejected} cases rejected before {} passed \
                     (seed {seed:#018x}); loosen prop_assume!/prop_filter",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(message)) => panic!(
                "property '{name}' failed after {passed} passing cases \
                 (seed {seed:#018x}): {message}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_the_configured_number_of_cases() {
        let mut calls = 0u32;
        run_cases(ProptestConfig::with_cases(40), "counting", |_rng| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 40);
    }

    #[test]
    fn rejections_do_not_count_towards_cases() {
        let mut calls = 0u32;
        run_cases(ProptestConfig::with_cases(10), "rejecting", |_rng| {
            calls += 1;
            if calls.is_multiple_of(2) {
                Err(TestCaseError::reject("every other"))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 19);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_the_message() {
        run_cases(ProptestConfig::with_cases(10), "failing", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        assert_eq!(seed_from_name("abc"), seed_from_name("abc"));
        assert_ne!(seed_from_name("abc"), seed_from_name("abd"));
    }
}
