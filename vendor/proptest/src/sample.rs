//! Sampling helpers: a length-agnostic collection index.

use rand::rngs::StdRng;
use rand::Rng;

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;

/// An index into a collection of not-yet-known length.
///
/// Generate one with `any::<Index>()` and resolve it against a concrete
/// collection with [`Index::index`].
// Derived `PartialOrd` expands to `partial_cmp`, which clippy.toml disallows
// for hand-written float comparisons; the derive itself is fine.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Index(usize);

impl Index {
    /// Maps this abstract index onto a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

/// Strategy generating uniformly random [`Index`] values.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;

    fn generate(&self, rng: &mut StdRng) -> Index {
        Index(rng.gen::<u64>() as usize)
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;

    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn index_stays_in_bounds_for_every_len() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let idx = any::<Index>().generate(&mut rng);
            for len in 1..10usize {
                assert!(idx.index(len) < len);
            }
        }
    }
}
