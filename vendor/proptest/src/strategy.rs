//! Value-generation strategies and combinators.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type from an RNG.
///
/// Unlike the real proptest this trait has no value-tree/shrinking layer;
/// `generate` produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retains only values satisfying `pred`; `reason` labels the filter in
    /// the panic raised if it rejects essentially everything.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erases the strategy type, enabling recursion and heterogeneous lists.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// A type-erased, cheaply clonable strategy (see [`Strategy::boxed`]).
#[allow(missing_debug_implementations)]
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Chooses among weighted boxed arms; built by the `prop_oneof!` macro.
#[allow(missing_debug_implementations)]
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> WeightedUnion<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Clone for WeightedUnion<T> {
    fn clone(&self) -> Self {
        WeightedUnion {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is bounded by the total weight");
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Copy,
    std::ops::Range<T>: rand::distributions::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Copy,
    std::ops::RangeInclusive<T>: rand::distributions::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_map_filter_and_union_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let strat = crate::prop_oneof![
            2 => (0u8..3).prop_map(|v| v as u64),
            1 => (10u64..=12).prop_filter("always true", |v| *v >= 10),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 3 || (10..=12).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn tuples_and_just_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (Just(5u32), 0.0..1.0f64, 0usize..4).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..50 {
            let (a, b, c) = strat.generate(&mut rng);
            assert_eq!(a, 5);
            assert!((0.0..1.0).contains(&b));
            assert!(c < 4);
        }
    }

    #[test]
    fn boxed_strategy_clones_share_the_recipe() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (0u64..100).boxed();
        let copy = strat.clone();
        let a = strat.generate(&mut rng);
        let b = copy.generate(&mut rng);
        assert!(a < 100 && b < 100);
    }
}
