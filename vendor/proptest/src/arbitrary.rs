//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;

/// Types with a canonical strategy for generating arbitrary values.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A` (e.g. `any::<sample::Index>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}
