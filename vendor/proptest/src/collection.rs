//! Strategies for collections.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(!range.is_empty(), "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(!range.is_empty(), "empty size range");
        let (min, max) = range.into_inner();
        SizeRange { min, max }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_all_size_forms() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(vec(0u8..5, 3).generate(&mut rng).len(), 3);
            let open = vec(0u8..5, 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&open));
            let closed = vec(0u8..5, 2..=6).generate(&mut rng).len();
            assert!((2..=6).contains(&closed));
        }
    }
}
