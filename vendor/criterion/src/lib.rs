//! Offline-compatible mini benchmark harness exposing the subset of the
//! `criterion` API used by the `hmdiv` workspace.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This harness keeps the same bench-authoring surface —
//! [`Criterion::benchmark_group`], [`Bencher::iter`], `criterion_group!` /
//! `criterion_main!` — with simplified measurement: each benchmark is
//! auto-calibrated to a fixed measurement window and reports mean
//! time/iteration (plus throughput when configured), without statistical
//! outlier analysis or HTML reports.
//!
//! `cargo bench -- --test` runs every benchmark body exactly once, making
//! the bench suite usable as a smoke test in CI.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark (overridable with the
/// `CRITERION_MEASUREMENT_MS` environment variable).
fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(500);
    Duration::from_millis(ms.max(1))
}

/// The benchmark manager: collects and runs benchmarks, printing results.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a manager from the process arguments, honouring `--test`
    /// (smoke mode: run every body once) and a positional name filter.
    /// Harness flags passed by cargo (`--bench`, etc.) are ignored.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }

    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmarks a single function under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.should_run(name) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{name}: test passed");
            return;
        }
        if bencher.iters == 0 {
            println!("{name}: no measurement (Bencher::iter never called)");
            return;
        }
        let per_iter = bencher.total.as_secs_f64() / bencher.iters as f64;
        let mut line = format!(
            "{name}: time/iter {} ({} iters)",
            format_seconds(per_iter),
            bencher.iters
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let rate = *n as f64 / per_iter;
            line.push_str(&format!(", thrpt {rate:.3e} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = throughput {
            let rate = *n as f64 / per_iter;
            line.push_str(&format!(", thrpt {rate:.3e} B/s"));
        }
        println!("{line}");
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("all benchmarks ran in test mode");
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting on subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness auto-calibrates the
    /// iteration count from the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&name, self.throughput.as_ref(), f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one(&name, self.throughput.as_ref(), |b| f(b, input));
        self
    }

    /// Closes the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    ///
    /// In `--test` mode the routine runs exactly once. Otherwise one warmup
    /// call calibrates an iteration count that fills the measurement
    /// window, and the whole batch is timed.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters = 1;
            return;
        }
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let warmup = warmup_start.elapsed().max(Duration::from_nanos(1));
        let window = measurement_window();
        let n = (window.as_secs_f64() / warmup.as_secs_f64()).clamp(1.0, 10_000_000.0) as u64;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

/// Throughput hint for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group: a function name, a bare
/// parameter, or both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a [`BenchmarkId`], accepted anywhere a bench is named.
pub trait IntoBenchmarkId {
    /// Converts self into the id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Prevents the optimiser from eliding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
        };
        let mut ran = false;
        c.bench_function("skipped", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.benchmark_group("keep_group")
            .bench_function("inner", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn format_seconds_picks_sensible_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" us"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
