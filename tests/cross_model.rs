//! Cross-model consistency: the paper's two models, the RBD substrate, and
//! the team model must agree wherever their assumptions coincide.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv::core::multi_reader::{CombinationRule, ReaderSkill, TeamModel};
use hmdiv::core::{
    paper, ClassId, ClassParams, DemandProfile, DetectionParams, ModelParams,
    ParallelDetectionModel, SequentialModel,
};
use hmdiv::prob::Probability;
use hmdiv::rbd::difficulty::{eckhardt_lee, littlewood_miller};
use hmdiv::rbd::importance::importance;
use hmdiv::rbd::reliability::system_failure;
use hmdiv::rbd::Block;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

#[test]
fn parallel_model_equals_fig2_rbd_per_class() {
    // Evaluating the parallel-detection closed form and the Fig. 2 diagram
    // with identical probabilities must agree for every parameter corner.
    let corners = [0.0, 0.07, 0.41, 0.9, 1.0];
    let diagram = ParallelDetectionModel::fig2_diagram();
    for &mf in &corners {
        for &miss in &corners {
            for &mis in &corners {
                let dp = DetectionParams::new(p(mf), p(miss), p(mis));
                let closed = dp.class_failure().value();
                let rbd = system_failure(&diagram, |name| {
                    Ok(match name {
                        "Mdetect" => p(mf),
                        "Hdetect" => p(miss),
                        "Hclassify" => p(mis),
                        other => {
                            return Err(hmdiv::rbd::RbdError::UnknownComponent {
                                name: other.into(),
                            })
                        }
                    })
                })
                .unwrap()
                .value();
                assert!(
                    (closed - rbd).abs() < 1e-12,
                    "mf={mf} miss={miss} mis={mis}"
                );
            }
        }
    }
}

#[test]
fn sequential_specialises_to_parallel_when_reader_is_prompt_perfect() {
    // If the reader examines prompted features exactly as their own finds
    // (no bias), the sequential conditionals can be *derived* from the
    // parallel parameters:
    //   PHf|Ms = PHmisclass                      (features surely examined)
    //   PHf|Mf = PHmiss + (1-PHmiss)·PHmisclass  (reader alone must find them)
    // and then both models give the same class failure probability.
    let corners = [0.05, 0.2, 0.6];
    for &mf in &corners {
        for &miss in &corners {
            for &mis in &corners {
                let dp = DetectionParams::new(p(mf), p(miss), p(mis));
                let hf_ms = mis;
                let hf_mf = miss + (1.0 - miss) * mis;
                let cp = ClassParams::new(p(mf), p(hf_ms), p(hf_mf));
                assert!(
                    (dp.class_failure().value() - cp.class_failure().value()).abs() < 1e-12,
                    "mf={mf} miss={miss} mis={mis}"
                );
            }
        }
    }
}

#[test]
fn team_single_reader_equals_sequential_model() {
    let model = paper::example_model().unwrap();
    let expert = ReaderSkill::builder()
        .class("easy", p(0.14), p(0.18))
        .class("difficult", p(0.4), p(0.9))
        .build()
        .unwrap();
    let team = TeamModel::builder()
        .machine("easy", p(0.07))
        .machine("difficult", p(0.41))
        .reader(expert)
        .rule(CombinationRule::Single)
        .build()
        .unwrap();
    for profile in [
        paper::trial_profile().unwrap(),
        paper::field_profile().unwrap(),
    ] {
        let a = model.system_failure(&profile).unwrap();
        let b = team.system_failure(&profile).unwrap();
        assert!((a.value() - b.value()).abs() < 1e-12);
    }
}

#[test]
fn cadt_birnbaum_importance_equals_coherence_index() {
    // §6.1: t(x) "is an importance index (of the CADT for the whole system)".
    // Model the system per class as a two-state diagram where the "machine"
    // component's working/failing switches the reader's failure probability:
    // Birnbaum importance of the machine = PHf|Mf − PHf|Ms = t(x).
    let model = paper::example_model().unwrap();
    for class in ["easy", "difficult"] {
        let cp = *model.params().class_by_name(class).unwrap();
        // Diagram: machine in parallel with "reader-conditional" components
        // is not expressible directly; instead verify through conditional
        // evaluation: the defining difference of conditional failures.
        let f_when_fails = cp.p_hf_given_mf().value();
        let f_when_works = cp.p_hf_given_ms().value();
        assert!((cp.coherence_index() - (f_when_fails - f_when_works)).abs() < 1e-15);
        // And in the RBD world: for a 1-of-2 parallel detection stage, the
        // machine's Birnbaum importance is the human miss probability —
        // check with the paper-ish detection numbers.
        let stage = Block::parallel(vec![Block::component("H"), Block::component("M")]);
        let measures = importance(&stage, "M", |n| {
            Ok(if n == "H" {
                cp.p_hf_given_mf()
            } else {
                cp.p_mf()
            })
        })
        .unwrap();
        assert!((measures.birnbaum - cp.p_hf_given_mf().value()).abs() < 1e-12);
    }
}

#[test]
fn littlewood_miller_matches_parallel_detection_covariance() {
    let model = ParallelDetectionModel::builder()
        .class("easy", DetectionParams::new(p(0.07), p(0.1), p(0.05)))
        .class("difficult", DetectionParams::new(p(0.41), p(0.6), p(0.3)))
        .build()
        .unwrap();
    let profile = DemandProfile::builder()
        .class("easy", 0.8)
        .class("difficult", 0.2)
        .build()
        .unwrap();
    let cov = model.detection_covariance(&profile).unwrap();
    let lm = littlewood_miller(
        profile.as_categorical(),
        |c| if c.name() == "easy" { p(0.07) } else { p(0.41) },
        |c| if c.name() == "easy" { p(0.1) } else { p(0.6) },
    );
    assert!((cov.covariance - lm.covariance).abs() < 1e-12);
    assert!((cov.detection_failure.value() - lm.p_both.value()).abs() < 1e-12);
}

#[test]
fn eckhardt_lee_penalty_appears_in_identical_redundancy() {
    // Two identical readers (same difficulty function) in 1-of-2 redundancy
    // fail together more than independence predicts — the EL theorem — and
    // the team model shows the same number.
    let profile = DemandProfile::builder()
        .class("easy", 0.8)
        .class("difficult", 0.2)
        .build()
        .unwrap();
    let theta = |c: &ClassId| if c.name() == "easy" { p(0.18) } else { p(0.9) };
    let el = eckhardt_lee(profile.as_categorical(), theta);
    // Team model: machine always fails (so |Mf branch = unaided), two
    // identical readers, either recalls.
    let skill = ReaderSkill::builder()
        .class("easy", p(0.18), p(0.18))
        .class("difficult", p(0.9), p(0.9))
        .build()
        .unwrap();
    let team = TeamModel::builder()
        .machine("easy", Probability::ONE)
        .machine("difficult", Probability::ONE)
        .reader(skill.clone())
        .reader(skill)
        .rule(CombinationRule::EitherRecalls)
        .build()
        .unwrap();
    let team_fn = team.system_failure(&profile).unwrap();
    assert!((team_fn.value() - el.p_both.value()).abs() < 1e-12);
    assert!(
        el.p_both.value() > el.independent_product,
        "EL penalty present"
    );
}

#[test]
fn sequential_model_is_general_enough_to_express_parallel() {
    // §4: "By varying the values of the model's parameters, any conceivable
    // form of this influence of the CADT can be represented." Concretely:
    // for any parallel-detection parameterisation, there is a sequential
    // parameterisation with identical per-class and system behaviour.
    let parallel = ParallelDetectionModel::builder()
        .class("easy", DetectionParams::new(p(0.07), p(0.1), p(0.05)))
        .class("difficult", DetectionParams::new(p(0.41), p(0.6), p(0.3)))
        .build()
        .unwrap();
    let mut builder = ModelParams::builder();
    for (class, dp) in parallel.iter() {
        let hf_ms = dp.p_h_misclass.value();
        let hf_mf = dp.p_h_miss.value() + (1.0 - dp.p_h_miss.value()) * dp.p_h_misclass.value();
        builder = builder.class(class.clone(), ClassParams::new(dp.p_mf, p(hf_ms), p(hf_mf)));
    }
    let sequential = SequentialModel::new(builder.build().unwrap());
    let profile = DemandProfile::builder()
        .class("easy", 0.8)
        .class("difficult", 0.2)
        .build()
        .unwrap();
    let a = parallel.system_failure(&profile).unwrap();
    let b = sequential.system_failure(&profile).unwrap();
    assert!((a.value() - b.value()).abs() < 1e-12);
}
