//! Property-based integration tests over randomly generated models and
//! profiles: the paper's identities must hold for *every* parameterisation,
//! not just the worked example.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv::core::decomposition::decompose;
use hmdiv::core::extrapolate::Scenario;
use hmdiv::core::importance::{system_failure_with_machine_scaled, system_lower_bound};
use hmdiv::core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv::prob::Probability;
use proptest::prelude::*;

const MAX_CLASSES: usize = 6;

#[derive(Debug, Clone)]
struct RandomSystem {
    model: SequentialModel,
    profile: DemandProfile,
}

fn prob() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn build_system(rows: Vec<(f64, f64, f64, f64)>, force_nonneg_t: bool) -> RandomSystem {
    let mut params = ModelParams::builder();
    let mut profile = DemandProfile::builder();
    for (i, (p_mf, hf_ms, hf_mf, weight)) in rows.into_iter().enumerate() {
        let name = format!("c{i}");
        // When requested, reinterpret hf_mf as "hf_ms plus a non-negative
        // increment", guaranteeing t(x) >= 0 without rejection sampling.
        let hf_mf = if force_nonneg_t {
            (hf_ms + hf_mf * (1.0 - hf_ms)).clamp(0.0, 1.0)
        } else {
            hf_mf
        };
        params = params.class(
            name.as_str(),
            ClassParams::new(
                Probability::new(p_mf).unwrap(),
                Probability::new(hf_ms).unwrap(),
                Probability::new(hf_mf).unwrap(),
            ),
        );
        profile = profile.class(name.as_str(), weight);
    }
    RandomSystem {
        model: SequentialModel::new(params.build().unwrap()),
        profile: profile.build().unwrap(),
    }
}

fn random_system() -> impl Strategy<Value = RandomSystem> {
    let class = (prob(), prob(), prob(), 0.01..10.0f64);
    proptest::collection::vec(class, 1..=MAX_CLASSES).prop_map(|rows| build_system(rows, false))
}

fn random_nonneg_t_system() -> impl Strategy<Value = RandomSystem> {
    let class = (prob(), prob(), prob(), 0.01..10.0f64);
    proptest::collection::vec(class, 1..=MAX_CLASSES).prop_map(|rows| build_system(rows, true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eq8_is_a_probability_and_a_profile_mixture(sys in random_system()) {
        let total = sys.model.system_failure(&sys.profile).unwrap();
        prop_assert!((0.0..=1.0).contains(&total.value()));
        // System failure is a convex combination of class failures.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (class, _) in sys.profile.iter() {
            let f = sys.model.class_failure(class).unwrap().value();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        prop_assert!(total.value() >= lo - 1e-12);
        prop_assert!(total.value() <= hi + 1e-12);
    }

    #[test]
    fn eq10_always_reconciles(sys in random_system()) {
        let d = decompose(&sys.model, &sys.profile).unwrap();
        prop_assert!(d.reconciles(1e-9), "{:?}", d);
    }

    #[test]
    fn eq4_identity_when_defined(sys in random_system()) {
        // Undefined conditionals (machine never fails / never succeeds)
        // are legitimate; check the identity only when defined.
        if let Ok((lhs, rhs)) = sys.model.equation4_sides(&sys.profile) {
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn machine_improvement_never_hurts_when_t_nonnegative(sys in random_nonneg_t_system()) {
        // If every class has t(x) >= 0, dividing any class's PMf can only
        // reduce system failure.
        let before = sys.model.system_failure(&sys.profile).unwrap().value();
        for (class, _) in sys.profile.iter() {
            let pred = Scenario::new()
                .improve_machine(class.clone(), 10.0)
                .predict(&sys.model, &sys.profile)
                .unwrap();
            prop_assert!(pred.after.value() <= before + 1e-12);
        }
    }

    #[test]
    fn lower_bound_is_a_true_floor(sys in random_nonneg_t_system()) {
        let floor = system_lower_bound(&sys.model, &sys.profile).unwrap();
        for step in 0..=4 {
            let scale = step as f64 / 4.0;
            let v = system_failure_with_machine_scaled(&sys.model, &sys.profile, scale).unwrap();
            prop_assert!(v >= floor);
        }
    }

    #[test]
    fn profile_reweighting_brackets_extremes(sys in random_system()) {
        // Any reweighting of the same classes keeps the system failure
        // between the min and max class failures.
        let reweighted = sys
            .profile
            .reweighted(|c, _| if c.name().ends_with('0') { 5.0 } else { 0.5 })
            .unwrap();
        let v = sys.model.system_failure(&reweighted).unwrap().value();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (class, _) in sys.profile.iter() {
            let f = sys.model.class_failure(class).unwrap().value();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn class_failure_between_conditionals(p_mf in prob(), hf_ms in prob(), hf_mf in prob()) {
        let cp = ClassParams::new(
            Probability::new(p_mf).unwrap(),
            Probability::new(hf_ms).unwrap(),
            Probability::new(hf_mf).unwrap(),
        );
        let f = cp.class_failure().value();
        prop_assert!(f >= hf_ms.min(hf_mf) - 1e-12);
        prop_assert!(f <= hf_ms.max(hf_mf) + 1e-12);
        // Coherence index bounds.
        prop_assert!((-1.0..=1.0).contains(&cp.coherence_index()));
    }

    #[test]
    fn table_driven_simulation_tracks_analytic(sys in random_system(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (empirical, analytic) =
            hmdiv::sim::table_driven::cross_check(&sys.model, &sys.profile, 20_000, &mut rng)
                .unwrap();
        // 20k cases: 5 sigma of a Bernoulli is ~0.018 at worst.
        prop_assert!(
            (empirical.value() - analytic.value()).abs() < 0.025,
            "{} vs {}",
            empirical.value(),
            analytic.value()
        );
    }

    #[test]
    fn scenario_composition_is_order_independent_for_disjoint_classes(sys in random_system()) {
        prop_assume!(sys.model.params().len() >= 2);
        let classes: Vec<ClassId> = sys.model.params().classes().cloned().collect();
        let a = Scenario::new()
            .improve_machine(classes[0].clone(), 2.0)
            .improve_machine(classes[1].clone(), 3.0)
            .apply(&sys.model)
            .unwrap();
        let b = Scenario::new()
            .improve_machine(classes[1].clone(), 3.0)
            .improve_machine(classes[0].clone(), 2.0)
            .apply(&sys.model)
            .unwrap();
        let fa = a.system_failure(&sys.profile).unwrap().value();
        let fb = b.system_failure(&sys.profile).unwrap().value();
        prop_assert!((fa - fb).abs() < 1e-12);
    }
}
