//! Integration tests of the extension modules through the facade crate:
//! class aggregation, sensitivity, trial planning, coverage validation,
//! calibration, session drift, and the system ROC.

use hmdiv::core::aggregation::{coarsen, merge_classes};
use hmdiv::core::importance::{system_lower_bound, system_machine_sweep};
use hmdiv::core::sensitivity::gradients;
use hmdiv::core::{paper, ClassId};
use hmdiv::prob::compare::{fisher_exact, odds_ratio_interval, two_proportion_z_test};
use hmdiv::prob::estimate::{BinomialEstimate, CiMethod};
use hmdiv::sim::calibrate::calibrate_operating;
use hmdiv::sim::scenario;
use hmdiv::trial::coverage::coverage_experiment;
use hmdiv::trial::power::plan_trial;
use rand::SeedableRng;

#[test]
fn paper_example_would_survive_a_granularity_audit() {
    // Merging the paper's easy+difficult classes under the trial profile
    // must preserve the headline failure probability exactly — and show how
    // much structure the merge hides (t jumps from the per-class values to a
    // blended one).
    let model = paper::example_model().unwrap();
    let trial = paper::trial_profile().unwrap();
    let members = [ClassId::new("easy"), ClassId::new("difficult")];
    let merged = merge_classes(&model, &trial, &members).unwrap();
    let (coarse, coarse_profile) = coarsen(&model, &trial, &members).unwrap();
    assert!(
        (coarse.system_failure(&coarse_profile).unwrap().value()
            - model.system_failure(&trial).unwrap().value())
        .abs()
            < 1e-12
    );
    // The merged machine failure probability is the marginal PMf.
    assert!((merged.params.p_mf().value() - (0.8 * 0.07 + 0.2 * 0.41)).abs() < 1e-12);
    // The merged t is NOT between the class ts weighted naively: it blends
    // the heterogeneity in.
    assert!(merged.coherence_index() > 0.0);
}

#[test]
fn statistical_comparison_of_paper_conditionals() {
    // With counts consistent with the paper's difficult class (82 Mf of 200,
    // 74/82 Hf|Mf, 47/118 Hf|Ms), the dependence of the reader on the
    // machine is overwhelming by every test.
    let hf_mf = BinomialEstimate::new(74, 82).unwrap();
    let hf_ms = BinomialEstimate::new(47, 118).unwrap();
    let z = two_proportion_z_test(hf_mf, hf_ms).unwrap();
    let f = fisher_exact(hf_mf, hf_ms).unwrap();
    assert!(z.significant_at(0.001));
    assert!(f.p_value < 1e-6);
    let (or, lo, _) = odds_ratio_interval(hf_mf, hf_ms, 0.95).unwrap();
    assert!(or > 10.0 && lo > 5.0);
}

#[test]
fn trial_plan_then_coverage_holds() {
    // Plan a trial for ±0.05 intervals, then verify by replay that the
    // planned size achieves nominal coverage.
    let model = paper::example_model().unwrap();
    let mix = paper::trial_profile().unwrap();
    let plan = plan_trial(&model, &mix, 0.5, 0.05, 0.95).unwrap();
    assert!(plan.cancer_cases >= 1_000, "{plan:?}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let records = coverage_experiment(
        &model,
        &mix,
        plan.cancer_cases,
        120,
        CiMethod::Wilson,
        0.95,
        &mut rng,
    )
    .unwrap();
    for rec in records {
        assert!(rec.rate().unwrap() > 0.88, "{rec:?}");
    }
}

#[test]
fn calibrated_cadt_hits_target_in_the_behavioural_world() {
    let population = scenario::field_population().unwrap();
    let base = hmdiv::sim::cadt::Cadt::default_detector().unwrap();
    let target = hmdiv::prob::Probability::new(0.5).unwrap();
    let cal = calibrate_operating(&base, &population, "difficult", target, 0.02, 8_000, 5).unwrap();
    assert!(
        (cal.achieved.value() - 0.5).abs() < 0.05,
        "{:?}",
        cal.achieved
    );
}

#[test]
fn sweep_and_floor_line_up_with_gradients() {
    let model = paper::example_model().unwrap();
    let field = paper::field_profile().unwrap();
    let series = system_machine_sweep(&model, &field, 11).unwrap();
    let floor = system_lower_bound(&model, &field).unwrap().value();
    assert!((series[0].1 - floor).abs() < 1e-12);
    // The sweep's total rise equals Σ p(x)·t(x)·PMf(x) — the summed leverage
    // — which also equals the dot product of the PMf gradients with the
    // current PMf values.
    let rise = series[10].1 - series[0].1;
    let grads = gradients(&model, &field).unwrap();
    let dot: f64 = grads
        .iter()
        .map(|g| {
            let cp = model.params().class(&g.class).unwrap();
            g.d_p_mf * cp.p_mf().value()
        })
        .sum();
    assert!((rise - dot).abs() < 1e-12, "{rise} vs {dot}");
}

#[test]
fn session_drift_changes_what_a_static_model_would_predict() {
    use hmdiv::sim::session::{run_session, DriftConfig};
    let population = scenario::trial_population().unwrap();
    let cadt = hmdiv::sim::cadt::Cadt::default_detector().unwrap();
    let reader = hmdiv::sim::reader::Reader::expert();
    let stable = run_session(
        &population,
        &cadt,
        &reader,
        &DriftConfig::none(),
        6,
        2_000,
        8,
    )
    .unwrap();
    let drifting = run_session(
        &population,
        &cadt,
        &reader,
        &DriftConfig {
            fatigue_per_1000: 0.10,
            trust_learning_rate: 0.0,
            complacency_coupling: 0.0,
        },
        6,
        2_000,
        8,
    )
    .unwrap();
    let late_rate = |series: &[hmdiv::sim::session::BatchSummary]| {
        let fns: u64 = series[4..].iter().map(|b| b.false_negatives).sum();
        let cancers: u64 = series[4..].iter().map(|b| b.cancers).sum();
        fns as f64 / cancers as f64
    };
    assert!(
        late_rate(&drifting) > late_rate(&stable),
        "fatigue must show up in late-session FN rates: {} vs {}",
        late_rate(&drifting),
        late_rate(&stable)
    );
}
