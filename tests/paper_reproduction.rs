//! Integration tests reproducing every numeric artefact of the paper,
//! analytically and by Monte-Carlo, through the public facade crate.

use hmdiv::core::decomposition::decompose;
use hmdiv::core::extrapolate::Scenario;
use hmdiv::core::importance::{
    machine_response_line, system_failure_with_machine_scaled, system_lower_bound,
};
use hmdiv::core::{paper, ClassId};
use hmdiv::sim::table_driven;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn table1_parameters_as_published() {
    let model = paper::example_model().unwrap();
    let easy = model.params().class_by_name("easy").unwrap();
    assert_eq!(easy.p_mf().value(), 0.07);
    assert_eq!(easy.p_hf_given_ms().value(), 0.14);
    assert_eq!(easy.p_hf_given_mf().value(), 0.18);
    assert!((easy.p_ms().value() - 0.93).abs() < 1e-12);
    let difficult = model.params().class_by_name("difficult").unwrap();
    assert_eq!(difficult.p_mf().value(), 0.41);
    assert_eq!(difficult.p_hf_given_ms().value(), 0.40);
    assert_eq!(difficult.p_hf_given_mf().value(), 0.90);
    assert!((difficult.p_ms().value() - 0.59).abs() < 1e-12);
    let trial = paper::trial_profile().unwrap();
    assert_eq!(trial.weight("easy").unwrap().value(), 0.8);
    assert_eq!(trial.weight("difficult").unwrap().value(), 0.2);
    let field = paper::field_profile().unwrap();
    assert_eq!(field.weight("easy").unwrap().value(), 0.9);
    assert_eq!(field.weight("difficult").unwrap().value(), 0.1);
}

#[test]
fn table2_all_four_cells() {
    let model = paper::example_model().unwrap();
    let check = |got: f64, printed: f64| {
        assert_eq!(
            (got * 1000.0).round() / 1000.0,
            printed,
            "{got} !~ {printed}"
        );
    };
    check(
        model.class_failure(&ClassId::new("easy")).unwrap().value(),
        0.143,
    );
    check(
        model
            .class_failure(&ClassId::new("difficult"))
            .unwrap()
            .value(),
        0.605,
    );
    check(
        model
            .system_failure(&paper::trial_profile().unwrap())
            .unwrap()
            .value(),
        0.235,
    );
    check(
        model
            .system_failure(&paper::field_profile().unwrap())
            .unwrap()
            .value(),
        0.189,
    );
}

#[test]
fn table3_all_eight_cells() {
    let check = |got: f64, printed: f64| {
        assert_eq!(
            (got * 1000.0).round() / 1000.0,
            printed,
            "{got} !~ {printed}"
        );
    };
    let trial = paper::trial_profile().unwrap();
    let field = paper::field_profile().unwrap();
    let easy_improved = paper::model_improved_on_easy().unwrap();
    check(
        easy_improved
            .class_failure(&ClassId::new("easy"))
            .unwrap()
            .value(),
        0.140,
    );
    check(
        easy_improved
            .class_failure(&ClassId::new("difficult"))
            .unwrap()
            .value(),
        0.605,
    );
    check(easy_improved.system_failure(&trial).unwrap().value(), 0.233);
    check(easy_improved.system_failure(&field).unwrap().value(), 0.187);
    let difficult_improved = paper::model_improved_on_difficult().unwrap();
    check(
        difficult_improved
            .class_failure(&ClassId::new("easy"))
            .unwrap()
            .value(),
        0.143,
    );
    check(
        difficult_improved
            .class_failure(&ClassId::new("difficult"))
            .unwrap()
            .value(),
        0.421,
    );
    check(
        difficult_improved.system_failure(&trial).unwrap().value(),
        0.198,
    );
    check(
        difficult_improved.system_failure(&field).unwrap().value(),
        0.171,
    );
}

#[test]
fn tables_2_and_3_cross_checked_by_monte_carlo() {
    let mut rng = StdRng::seed_from_u64(20_030_625);
    let models = [
        paper::example_model().unwrap(),
        paper::model_improved_on_easy().unwrap(),
        paper::model_improved_on_difficult().unwrap(),
    ];
    for model in &models {
        for profile in [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ] {
            let (empirical, analytic) =
                table_driven::cross_check(model, &profile, 300_000, &mut rng).unwrap();
            assert!(
                (empirical.value() - analytic.value()).abs() < 0.004,
                "empirical {} vs analytic {}",
                empirical.value(),
                analytic.value()
            );
        }
    }
}

#[test]
fn fig4_line_properties() {
    let model = paper::example_model().unwrap();
    let line = machine_response_line(&model, &ClassId::new("difficult")).unwrap();
    // Intercept and slope as published.
    assert!((line.lower_bound().value() - 0.4).abs() < 1e-12);
    assert!((line.coherence_index() - 0.5).abs() < 1e-12);
    // The line passes through the current operating point.
    let at_current = line.failure_at(line.current_p_mf());
    assert!(
        (at_current.value()
            - model
                .class_failure(&ClassId::new("difficult"))
                .unwrap()
                .value())
        .abs()
            < 1e-12
    );
    // Monotone sweep with the documented endpoints.
    let series = line.sweep(101).unwrap();
    assert!((series[0].1 - 0.4).abs() < 1e-12);
    assert!((series[100].1 - 0.9).abs() < 1e-12);
    for w in series.windows(2) {
        assert!(w[1].1 >= w[0].1);
    }
}

#[test]
fn fig4_system_floor_unreachable_by_machine_improvement() {
    let model = paper::example_model().unwrap();
    let trial = paper::trial_profile().unwrap();
    let floor = system_lower_bound(&model, &trial).unwrap();
    // Scan machine-failure scales upward: never below the floor, and
    // failure grows as the machine gets worse.
    let mut last = f64::NEG_INFINITY;
    for step in 0..=10 {
        let scale = step as f64 / 10.0;
        let p = system_failure_with_machine_scaled(&model, &trial, scale).unwrap();
        assert!(p >= floor);
        assert!(p.value() >= last - 1e-12);
        last = p.value();
    }
    let perfect = system_failure_with_machine_scaled(&model, &trial, 0.0).unwrap();
    assert_eq!(perfect, floor);
}

#[test]
fn eq10_decomposition_reconciles_and_is_positive_here() {
    let model = paper::example_model().unwrap();
    for profile in [
        paper::trial_profile().unwrap(),
        paper::field_profile().unwrap(),
    ] {
        let d = decompose(&model, &profile).unwrap();
        assert!(d.reconciles(1e-12));
        assert!(d.covariance > 0.0, "paper example difficulty is aligned");
        assert!((d.misjudgement_from_means() - d.covariance).abs() < 1e-12);
    }
}

#[test]
fn section5_punchline_difficult_beats_easy() {
    // "reducing the CADT's failure probability for these [difficult] cases
    // yields greater improvement in overall probability of failure".
    let base = paper::example_model().unwrap();
    for profile in [
        paper::trial_profile().unwrap(),
        paper::field_profile().unwrap(),
    ] {
        let improve = |class: &str| {
            Scenario::new()
                .improve_machine(ClassId::new(class), 10.0)
                .predict(&base, &profile)
                .unwrap()
                .improvement()
        };
        assert!(improve("difficult") > 5.0 * improve("easy"));
    }
}

#[test]
fn equation4_identity_under_both_profiles() {
    let model = paper::example_model().unwrap();
    for profile in [
        paper::trial_profile().unwrap(),
        paper::field_profile().unwrap(),
    ] {
        let (lhs, rhs) = model.equation4_sides(&profile).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
