//! Residual conditional-dependence validation.
//!
//! The paper's models assume that, *within a class and given the machine
//! outcome*, failures of distinct readers are independent — and warns that
//! this only holds if the classification is fine enough. The behavioural
//! simulator's classes are deliberately coarse (difficulty varies within a
//! class), so two readers' failures remain correlated inside each stratum.
//! This test measures that residual correlation, shows the independent team
//! model *underpredicts* the double-reading FN rate because of it, and
//! shows the correlated evaluation with the measured phi closes most of the
//! gap.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv::core::multi_reader::pair_failure_with_correlation;
use hmdiv::core::ClassId;
use hmdiv::sim::engine::{SimConfig, Simulation};
use hmdiv::sim::scenario;

#[test]
fn residual_correlation_breaks_independence_and_phi_repairs_it() {
    // Double reading, enriched population, plenty of cases.
    let mut world = scenario::double_reading_world().unwrap();
    world.population = scenario::trial_population().unwrap();
    let report = Simulation::new(
        world,
        SimConfig {
            cases: 250_000,
            seed: 314,
            threads: 4,
        },
    )
    .run()
    .unwrap();

    // Measured team FN rate (ground truth for this world).
    let simulated_fn = report.fn_rate().unwrap().value();

    // Per-reader marginal tables.
    let models = report.estimated_reader_models().unwrap();
    assert_eq!(models.len(), 2);

    // Build the independent and the phi-corrected predictions per
    // (class, machine outcome) stratum, weighted by observed frequencies.
    let mut independent = 0.0;
    let mut corrected = 0.0;
    let mut total_cases = 0.0;
    let mut saw_positive_phi = false;
    for (class, table) in report.cancer_counts().iter() {
        let class: &ClassId = class;
        let n_class = table.total() as f64;
        total_cases += n_class;
        let p_mf = table.machine_failures() as f64 / n_class;
        for (machine_failed, weight) in [(true, p_mf), (false, 1.0 - p_mf)] {
            let p1 = conditional(&models[0], class, machine_failed);
            let p2 = conditional(&models[1], class, machine_failed);
            let phi = report.reader_pair_phi(class, machine_failed).unwrap_or(0.0);
            if phi > 0.05 {
                saw_positive_phi = true;
            }
            independent += n_class * weight * (p1 * p2);
            corrected += n_class
                * weight
                * pair_failure_with_correlation(
                    hmdiv::prob::Probability::clamped(p1),
                    hmdiv::prob::Probability::clamped(p2),
                    phi,
                )
                .value();
        }
    }
    independent /= total_cases;
    corrected /= total_cases;

    assert!(
        saw_positive_phi,
        "shared within-class difficulty must leave positive phi"
    );
    // Independence underpredicts the simulated double-reading FN rate…
    assert!(
        independent < simulated_fn,
        "independent {independent} should underpredict simulated {simulated_fn}"
    );
    let independence_gap = simulated_fn - independent;
    assert!(
        independence_gap > 0.01,
        "the violation is material: {independence_gap}"
    );
    // …and the phi-corrected prediction closes most of the gap.
    let corrected_gap = (simulated_fn - corrected).abs();
    assert!(
        corrected_gap < independence_gap / 2.0,
        "corrected gap {corrected_gap} vs independence gap {independence_gap}"
    );
}

fn conditional(model: &hmdiv::core::SequentialModel, class: &ClassId, machine_failed: bool) -> f64 {
    let cp = model.params().class(class).unwrap();
    if machine_failed {
        cp.p_hf_given_mf().value()
    } else {
        cp.p_hf_given_ms().value()
    }
}

#[test]
fn pair_counts_empty_for_single_reader() {
    let world = scenario::default_world().unwrap();
    let report = Simulation::new(
        world,
        SimConfig {
            cases: 5_000,
            seed: 315,
            threads: 2,
        },
    )
    .run()
    .unwrap();
    assert_eq!(report.reader_pair_counts(true).pooled().total(), 0);
    assert_eq!(report.reader_pair_counts(false).pooled().total(), 0);
    assert!(report
        .reader_pair_phi(&ClassId::new("difficult"), true)
        .is_none());
}
