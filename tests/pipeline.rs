//! Integration tests of the full measurement pipeline: behavioural
//! simulation → stratified counting → estimation → clear-box modelling →
//! extrapolation — the workflow the paper prescribes, closed end to end.

use hmdiv::core::decomposition::decompose;
use hmdiv::core::extrapolate::Scenario;
use hmdiv::core::ClassId;
use hmdiv::prob::estimate::CiMethod;
use hmdiv::sim::engine::{SimConfig, Simulation};
use hmdiv::sim::scenario;
use hmdiv::trial::design::TrialDesign;
use hmdiv::trial::estimate::{estimate_trial, posterior_from_trial};
use hmdiv::trial::extrapolate::validate_extrapolation;
use hmdiv::trial::run::{run_field_study, run_trial};

#[test]
fn estimated_model_predicts_the_world_that_generated_it() {
    // Simulate a big enriched trial, estimate the model, and check the
    // model's prediction of the trial's own FN rate matches the observation.
    let world = scenario::default_world().unwrap();
    let design = TrialDesign::new("self", 80_000, 0.5, 101).unwrap();
    let data = run_trial(&world, &design).unwrap();
    let est = estimate_trial(&data, CiMethod::Wilson, 0.95, true).unwrap();
    let model = est.point_model().unwrap();
    let profile = est.trial_profile().unwrap();
    let predicted = model.system_failure(&profile).unwrap().value();
    let observed = data.report.fn_rate().unwrap().value();
    assert!(
        (predicted - observed).abs() < 0.005,
        "{predicted} vs {observed}"
    );
}

#[test]
fn extrapolation_beats_naive_under_distorted_trial_mix() {
    let world = scenario::default_world().unwrap();
    let design = TrialDesign::new("distorted", 50_000, 0.5, 102)
        .unwrap()
        .with_oversample("difficult", 5.0)
        .unwrap();
    let report = validate_extrapolation(&world, &design, 2_000_000, 103).unwrap();
    assert!(
        report.model_beats_naive(),
        "model {} naive {}",
        report.model_error(),
        report.naive_error()
    );
    assert!(report.model_error() < 0.02);
}

#[test]
fn simulated_covariance_structure_matches_theory() {
    // The behavioural world couples machine and reader difficulty through
    // the latent case difficulty, so the estimated model must show (a)
    // higher PMf on the difficult class, (b) positive cov(PMf, t) over the
    // enriched profile.
    let world = scenario::trial_world().unwrap();
    let report = Simulation::new(
        world,
        SimConfig {
            cases: 120_000,
            seed: 104,
            threads: 4,
        },
    )
    .run()
    .unwrap();
    let model = report.estimated_model().unwrap();
    let easy = model.params().class_by_name("easy").unwrap();
    let difficult = model.params().class_by_name("difficult").unwrap();
    assert!(difficult.p_mf() > easy.p_mf());
    assert!(difficult.p_hf_given_ms() > easy.p_hf_given_ms());
    // Build the empirical profile and decompose.
    let pairs: Vec<(ClassId, f64)> = report
        .cancer_counts()
        .iter()
        .map(|(c, t)| (c.clone(), t.total() as f64))
        .collect();
    let profile = hmdiv::core::DemandProfile::from_weights(pairs).unwrap();
    let d = decompose(&model, &profile).unwrap();
    assert!(d.reconciles(1e-9));
    assert!(
        d.covariance > 0.0,
        "shared difficulty must align PMf and t: {d:?}"
    );
}

#[test]
fn posterior_interval_covers_field_truth() {
    let world = scenario::default_world().unwrap();
    let design = TrialDesign::new("cover", 60_000, 0.5, 105).unwrap();
    let data = run_trial(&world, &design).unwrap();
    let posterior = posterior_from_trial(&data).unwrap();
    let field = run_field_study(&world, 2_000_000, 106, 4).unwrap();
    let pairs: Vec<(ClassId, f64)> = field
        .cancer_counts()
        .iter()
        .map(|(c, t)| (c.clone(), t.total() as f64))
        .collect();
    let profile = hmdiv::core::DemandProfile::from_weights(pairs).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(107);
    let pred = hmdiv::core::uncertainty::propagate(&posterior, &profile, 3000, &mut rng).unwrap();
    let (lo, hi) = pred.credible_interval(0.99).unwrap();
    let truth = field.fn_rate().unwrap();
    // Allow slack for the slight profile mismatch between trial and field
    // (class mixes within cancers are equal here, so this should be tight).
    assert!(
        truth.value() > lo.value() - 0.02 && truth.value() < hi.value() + 0.02,
        "truth {} outside [{}, {}]",
        truth.value(),
        lo.value(),
        hi.value()
    );
}

#[test]
fn improving_the_simulated_cadt_improves_the_estimated_system() {
    // Turn the simulated CADT's operating point up (more sensitive), re-run,
    // and verify both the raw FN rate and the estimated PMf improve.
    let base_world = scenario::trial_world().unwrap();
    let mut better_world = base_world.clone();
    better_world.team.cadt = Some(better_world.team.cadt.unwrap().with_operating(0.8).unwrap());
    let run = |w| {
        Simulation::new(
            w,
            SimConfig {
                cases: 120_000,
                seed: 108,
                threads: 4,
            },
        )
        .run()
        .unwrap()
    };
    let base = run(base_world);
    let better = run(better_world);
    assert!(better.fn_rate().unwrap() < base.fn_rate().unwrap());
    let base_pmf = base
        .estimated_model()
        .unwrap()
        .params()
        .class_by_name("difficult")
        .unwrap()
        .p_mf();
    let better_pmf = better
        .estimated_model()
        .unwrap()
        .params()
        .class_by_name("difficult")
        .unwrap()
        .p_mf();
    assert!(better_pmf < base_pmf);
    // But false positives get worse: the trade-off is real.
    assert!(better.fp_rate().unwrap() > base.fp_rate().unwrap());
}

#[test]
fn leverage_ranking_agrees_with_exact_scenario_benefits() {
    // Estimate a model from simulation, then ask the §6.2 question: which
    // class should the machine improve? Whatever the answer for this world,
    // the closed-form leverage ranking must order the classes exactly as
    // the exact scenario evaluation does.
    let world = scenario::trial_world().unwrap();
    let report = Simulation::new(
        world,
        SimConfig {
            cases: 120_000,
            seed: 109,
            threads: 4,
        },
    )
    .run()
    .unwrap();
    let model = report.estimated_model().unwrap();
    let field = hmdiv::core::DemandProfile::builder()
        .class("easy", 0.9)
        .class("difficult", 0.1)
        .build()
        .unwrap();
    let ranked = hmdiv::core::design::rank_improvement_targets(&model, &field).unwrap();
    let improve = |class: &ClassId| {
        Scenario::new()
            .improve_machine(class.clone(), 10.0)
            .predict(&model, &field)
            .unwrap()
            .improvement()
    };
    let benefits: Vec<f64> = ranked.iter().map(|l| improve(&l.class)).collect();
    for pair in benefits.windows(2) {
        assert!(
            pair[0] >= pair[1] - 1e-12,
            "leverage order disagrees: {benefits:?}"
        );
    }
    // And each exact benefit is 90% of the closed-form max (factor 10).
    for (lever, benefit) in ranked.iter().zip(&benefits) {
        assert!(
            (benefit - 0.9 * lever.max_benefit).abs() < 1e-9,
            "{}",
            lever.class
        );
    }
}
