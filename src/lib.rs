//! # hmdiv — human–machine diversity in computerised advisory systems
//!
//! A Rust reproduction of *Strigini, Povyakalo & Alberdi, "Human-machine
//! diversity in the use of computerised advisory systems: a case study"*
//! (DSN 2003): clear-box reliability modelling of a human expert assisted by
//! a computer-aided detection tool (CADT), treated as a fault-tolerant,
//! diverse-redundant system.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`prob`] — probability & statistics substrate.
//! * [`rbd`] — reliability block diagrams, importance measures,
//!   difficulty-function diversity models.
//! * [`core`] — the paper's models: sequential and parallel-detection,
//!   coherence index `t(x)`, covariance decomposition, trial→field
//!   extrapolation, design exploration, FN/FP trade-offs, multi-reader
//!   configurations.
//! * [`sim`] — a stochastic screening simulator (cases, CADT, behavioural
//!   reader, protocols, Monte-Carlo engine).
//! * [`trial`] — trial designs, stratified estimation, extrapolation
//!   validation.
//! * [`obs`] — zero-dependency metrics and span tracing (off by default;
//!   enable with `HMDIV_OBS=1` or [`obs::set_enabled`]).
//! * [`serve`] — a zero-dependency batched evaluation server: JSON-lines
//!   over TCP, a content-hash-addressed model registry, and a
//!   micro-batching executor with bit-identical results.
//! * [`fleet`] — a replicated sharded serving tier over `serve`:
//!   content-id registry sync between replicas, a consistent-hash front
//!   router, and health-checked failover with sync-gated re-admission.
//! * [`analyze`] — static analysis of compiled artifacts: a postfix
//!   bytecode verifier, an interval abstract interpreter bounding system
//!   reliability, and parameter-domain diagnostics with stable `HM0xx`
//!   codes; the admission gate behind `serve`'s registry and `repro check`.
//!
//! ## Quickstart
//!
//! Reproduce the paper's §5 headline numbers:
//!
//! ```
//! use hmdiv::core::{
//!     paper, DemandProfile, SequentialModel,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model: SequentialModel = paper::example_model()?;
//! let trial: DemandProfile = paper::trial_profile()?;
//! let field: DemandProfile = paper::field_profile()?;
//! // Table 2: P(system failure) = 0.235 in the trial, 0.189 in the field.
//! assert!((model.system_failure(&trial)?.value() - 0.23524).abs() < 1e-9);
//! assert!((model.system_failure(&field)?.value() - 0.18902).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub use hmdiv_analyze as analyze;
pub use hmdiv_core as core;
pub use hmdiv_fleet as fleet;
pub use hmdiv_obs as obs;
pub use hmdiv_prob as prob;
pub use hmdiv_rbd as rbd;
pub use hmdiv_serve as serve;
pub use hmdiv_sim as sim;
pub use hmdiv_trial as trial;
