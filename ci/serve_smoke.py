#!/usr/bin/env python3
"""CI smoke test for the hmdiv-serve JSON-lines protocol.

Drives a scripted session against a running `repro serve` instance:
load -> evaluate -> scenarios -> analyze -> trace -> metrics ->
shutdown, asserting the paper's field estimate comes back bit-exactly,
that the static-analysis admission gate rejects a malformed cohort with
its stable HM0xx wire code, that a client-supplied `trace_id` round-trips
into the flight recorder with a full stage breakdown, and writing the
server's Prometheus metrics snapshot and the drained flight-recorder
report to the given paths.

The server must run with `--trace N` for the trace assertions; TRACE_OUT
is the artifact path for the drained recorder report.

With SNAPSHOT_OUT given, the session also exercises the registry
persistence half: it issues `save` (the server must run with
`--snapshot-dir`) and records the saved content ids plus the exact
evaluation result to SNAPSHOT_OUT. After the server is restarted from
the same snapshot directory, `--warm-start` mode asserts the round
trip: the restored server lists identical content ids and serves the
identical (bit-for-bit, via JSON float round-trip) evaluation without
any client-side reload.

Usage: serve_smoke.py HOST PORT METRICS_OUT TRACE_OUT [SNAPSHOT_OUT]
       serve_smoke.py --warm-start HOST PORT SNAPSHOT_OUT
"""

import json
import socket
import sys

PAPER_CLASSES = {
    "easy": {"p_mf": 0.07, "p_hf_given_ms": 0.14, "p_hf_given_mf": 0.18},
    "difficult": {"p_mf": 0.41, "p_hf_given_ms": 0.40, "p_hf_given_mf": 0.90},
}
FIELD_PROFILE = {"easy": 0.9, "difficult": 0.1}
FIELD_FAILURE = 0.18902


class Session:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buf = b""
        self.next_id = 1

    def request_raw(self, verb, **fields):
        """One round trip, returning the full response envelope."""
        req = {"id": self.next_id, "verb": verb, **fields}
        self.next_id += 1
        self.sock.sendall(json.dumps(req).encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("server closed the connection mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def request(self, verb, **fields):
        response = self.request_raw(verb, **fields)
        if not response.get("ok"):
            raise RuntimeError(f"{verb} failed: {response.get('error')}")
        return response["result"]


CORRELATION_ID = "00000000000000ff"


def warm_start(host, port, snapshot_out):
    """Phase two of the persistence round trip, against a server that was
    restarted with the same `--snapshot-dir` the save phase wrote to."""
    with open(snapshot_out, encoding="utf-8") as f:
        saved = json.load(f)
    s = Session(host, port)
    listing = s.request("models")
    ids = sorted(row["id"] for row in listing["models"])
    assert ids == sorted(saved["ids"]), (ids, saved["ids"])
    print(f"warm start restored identical content ids: {ids}")
    result = s.request("evaluate", model=saved["model_id"], profile=FIELD_PROFILE)
    assert result["failure"] == saved["failure"], (result, saved)
    print(f"warm-started evaluate is exact: {result['failure']}")
    # The explicit verb re-restores idempotently into the live registry.
    restored = s.request("restore")
    assert sorted(restored["ids"]) == ids, restored
    assert s.request("shutdown").get("draining") is True
    print("warm-start round trip OK")


def main():
    if sys.argv[1] == "--warm-start":
        warm_start(sys.argv[2], int(sys.argv[3]), sys.argv[4])
        return
    host, port, metrics_out, trace_out = (
        sys.argv[1],
        int(sys.argv[2]),
        sys.argv[3],
        sys.argv[4],
    )
    snapshot_out = sys.argv[5] if len(sys.argv) > 5 else None
    s = Session(host, port)

    pong = s.request("ping")
    assert pong.get("pong") is True, pong

    receipt = s.request("load", classes=PAPER_CLASSES)
    model_id = receipt["model_id"]
    assert model_id.startswith("m"), receipt
    # Content addressing: an identical reload yields the identical id.
    assert s.request("load", classes=PAPER_CLASSES)["model_id"] == model_id

    # Trace correlation: a client-supplied trace_id is echoed on the
    # response envelope and names the server-side flight-recorder record.
    traced = s.request_raw(
        "evaluate", model=model_id, profile=FIELD_PROFILE, trace_id=CORRELATION_ID
    )
    assert traced.get("ok") is True, traced
    assert traced.get("trace_id") == CORRELATION_ID, traced
    failure = traced["result"]["failure"]
    assert abs(failure - FIELD_FAILURE) < 1e-9, failure
    print(f"field P(system failure) = {failure} [trace {traced['trace_id']}]")

    sweep = s.request(
        "scenarios",
        model=model_id,
        profile=FIELD_PROFILE,
        scenarios=[
            [{"op": "improve_machine", "class": "difficult", "factor": f}]
            for f in (2, 5, 10)
        ],
    )
    failures = sweep["failures"]
    assert len(failures) == 3 and all(p < failure for p in failures), sweep
    print(f"scenario sweep: {failures}")

    report = s.request("analyze", model=model_id)
    assert report["errors"] == 0 and report["summary"] == "clean", report
    print("static analysis of the paper model: clean")

    # Admission gate: a cohort whose members intern different class
    # universes is refused at load, and the wire error code is the
    # analyzer's stable HM030 diagnostic code.
    rejected = s.request_raw(
        "load_cohort",
        members=[
            {"name": "r1", "weight": 1, "classes": PAPER_CLASSES},
            {
                "name": "r2",
                "weight": 1,
                "classes": {
                    "alien": {
                        "p_mf": 0.1,
                        "p_hf_given_ms": 0.2,
                        "p_hf_given_mf": 0.3,
                    }
                },
            },
        ],
    )
    assert rejected.get("ok") is False, rejected
    assert rejected["error"]["code"] == "HM030", rejected
    print(f"malformed cohort rejected: [{rejected['error']['code']}]")

    # Force one shed with an already-expired deadline: it must come back
    # as the `deadline_exceeded` wire error, land in the flight recorder,
    # and (the server runs with --trace-dump) write the dump file.
    expired = s.request_raw(
        "evaluate", model=model_id, profile=FIELD_PROFILE, deadline_ms=0
    )
    assert expired.get("ok") is False, expired
    assert expired["error"]["code"] == "deadline_exceeded", expired
    print("expired-deadline shed captured")

    # Drain the flight recorder: the correlated evaluate must be there
    # with its per-stage breakdown, and the report is the CI artifact.
    report = s.request("trace")
    records = report["records"]
    correlated = [r for r in records if r["trace_id"] == CORRELATION_ID]
    assert len(correlated) == 1, records
    record = correlated[0]
    assert record["verb"] == "evaluate" and record["outcome"] == "ok", record
    for stage in ("read", "parse", "queue", "batch", "eval", "serialize", "write"):
        assert stage in record["stages"], record
    assert any(r["outcome"] == "deadline_exceeded" for r in records), records
    with open(trace_out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {trace_out} ({len(records)} records)")

    metrics = s.request("metrics")
    prometheus = metrics["prometheus"]
    assert "hmdiv_serve_verb_evaluate" in prometheus, prometheus
    # The stage histograms feed percentile gauges into the exposition.
    assert "hmdiv_serve_stage_eval_seconds_p99" in prometheus, prometheus
    assert "serve.batch_size" in metrics["histograms"], metrics
    # The event-loop satellites: live-connection gauge (this session is
    # the one open socket) and the poller pool's wakeup counter.
    assert metrics["connections"] == 1.0, metrics
    assert metrics["pollers"] >= 1.0, metrics
    assert "hmdiv_serve_connections" in prometheus, prometheus
    assert "hmdiv_serve_poll_wakeups" in prometheus, prometheus
    with open(metrics_out, "w", encoding="utf-8") as f:
        f.write(prometheus)
    print(f"wrote {metrics_out} ({len(prometheus)} bytes)")

    if snapshot_out is not None:
        # Persist the registry to the server's snapshot dir and record
        # what the restarted server must reproduce exactly.
        saved = s.request("save")
        assert model_id in saved["ids"], saved
        with open(snapshot_out, "w", encoding="utf-8") as f:
            json.dump(
                {"ids": saved["ids"], "model_id": model_id, "failure": failure}, f
            )
        print(f"saved {saved['saved']} artifact(s) to {saved['dir']}")

    assert s.request("shutdown").get("draining") is True
    print("serve smoke OK")


if __name__ == "__main__":
    main()
