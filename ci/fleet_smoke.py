#!/usr/bin/env python3
"""CI smoke test for the hmdiv-fleet replicated serving tier.

Drives the whole failover story against three externally-started
`repro serve` replicas fronted by a `repro route` router:

1. (no flag)     — load the paper model through the router (a broadcast),
                   assert every replica admitted it under the same
                   content id with byte-identical manifests, and that
                   routed evaluations reproduce the paper's field
                   estimate exactly; record the baseline to STATE_OUT.
2. --degraded    — after CI killed one replica: routed evaluations keep
                   answering with exactly the baseline bits (requests
                   that race the ejection window may fail, but only with
                   the typed `backend_unavailable` code), and the
                   router's metrics verb reports the ejection.
3. --recovered   — after CI restarted the replica (empty registry): wait
                   for the sync-gated re-admission, then assert all
                   three replicas' manifests are byte-identical again
                   and the revived replica serves the exact baseline.
4. --shutdown    — one shutdown through the router drains the fleet.

Usage: fleet_smoke.py            HOST ROUTER_PORT STATE_OUT R1 R2 R3
       fleet_smoke.py --degraded HOST ROUTER_PORT STATE_OUT
       fleet_smoke.py --recovered HOST ROUTER_PORT STATE_OUT R1 R2 R3
       fleet_smoke.py --shutdown HOST ROUTER_PORT

R1..R3 are the replica ports (for direct manifest comparison).
"""

import json
import socket
import sys
import time

PAPER_CLASSES = {
    "easy": {"p_mf": 0.07, "p_hf_given_ms": 0.14, "p_hf_given_mf": 0.18},
    "difficult": {"p_mf": 0.41, "p_hf_given_ms": 0.40, "p_hf_given_mf": 0.90},
}
FIELD_PROFILE = {"easy": 0.9, "difficult": 0.1}
FIELD_FAILURE = 0.18902


class Session:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buf = b""
        self.next_id = 1

    def request_raw(self, verb, **fields):
        req = {"id": self.next_id, "verb": verb, **fields}
        self.next_id += 1
        self.sock.sendall(json.dumps(req).encode() + b"\n")
        return json.loads(self.read_line())

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("connection closed mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line

    def request(self, verb, **fields):
        response = self.request_raw(verb, **fields)
        if not response.get("ok"):
            raise RuntimeError(f"{verb} failed: {response.get('error')}")
        return response["result"]


def raw_manifest_line(host, port):
    """The byte-for-byte single-line manifest reply from one replica."""
    sock = socket.create_connection((host, port), timeout=30)
    sock.sendall(b'{"id":1,"verb":"manifest"}\n')
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("replica closed before replying")
        buf += chunk
    sock.close()
    return buf.split(b"\n", 1)[0]


def routed_evaluate(host, port, model_id):
    """One evaluate on a FRESH connection (fresh ring key), returning
    either ("ok", failure) or ("unavailable", None)."""
    s = Session(host, port)
    response = s.request_raw("evaluate", model=model_id, profile=FIELD_PROFILE)
    if response.get("ok"):
        return "ok", response["result"]["failure"]
    code = response["error"]["code"]
    assert code == "backend_unavailable", response
    return "unavailable", None


def fleet_members(host, port):
    s = Session(host, port)
    return s.request("metrics")["fleet"]["members"]


def baseline(host, port, state_out, replica_ports):
    s = Session(host, port)
    receipt = s.request("load", classes=PAPER_CLASSES)
    model_id = receipt["model_id"]
    assert model_id.startswith("m"), receipt

    manifests = [raw_manifest_line(host, p) for p in replica_ports]
    assert manifests[0] == manifests[1] == manifests[2], manifests
    assert model_id.encode() in manifests[0], manifests[0]
    print(f"broadcast load converged 3 replicas on {model_id}")

    failures = set()
    for _ in range(12):
        outcome, failure = routed_evaluate(host, port, model_id)
        assert outcome == "ok", "healthy fleet must serve every request"
        failures.add(failure)
    assert len(failures) == 1, failures
    failure = failures.pop()
    assert abs(failure - FIELD_FAILURE) < 1e-9, failure
    print(f"12 routed evaluations bit-identical: {failure}")

    with open(state_out, "w", encoding="utf-8") as f:
        json.dump({"model_id": model_id, "failure": failure}, f)
    print("fleet baseline OK")


def degraded(host, port, state_out):
    with open(state_out, encoding="utf-8") as f:
        state = json.load(f)
    served = unavailable = 0
    for _ in range(24):
        outcome, failure = routed_evaluate(host, port, state["model_id"])
        if outcome == "ok":
            assert failure == state["failure"], (failure, state)
            served += 1
        else:
            unavailable += 1
    assert served > 0, "survivors must keep serving"
    print(f"degraded fleet: {served} served bit-identically, "
          f"{unavailable} typed backend_unavailable during ejection window")

    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        members = fleet_members(host, port)
        down = [m for m in members if not m["healthy"]]
        if len(down) == 1:
            break
        time.sleep(0.2)
    else:
        raise RuntimeError(f"router never ejected the killed replica: {members}")
    assert down[0]["ejections"] >= 1, down
    print(f"router ejected {down[0]['addr']} (ejections={down[0]['ejections']})")

    # Post-ejection, every fresh connection re-hashes to the survivors.
    for _ in range(12):
        outcome, failure = routed_evaluate(host, port, state["model_id"])
        assert outcome == "ok" and failure == state["failure"], (outcome, failure)
    print("post-ejection requests re-hash to survivors, bits unchanged")


def recovered(host, port, state_out, replica_ports):
    with open(state_out, encoding="utf-8") as f:
        state = json.load(f)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        members = fleet_members(host, port)
        if all(m["healthy"] for m in members):
            break
        time.sleep(0.2)
    else:
        raise RuntimeError(f"revived replica was never re-admitted: {members}")
    print("revived replica re-admitted after registry sync")

    manifests = [raw_manifest_line(host, p) for p in replica_ports]
    assert manifests[0] == manifests[1] == manifests[2], manifests
    assert state["model_id"].encode() in manifests[0], manifests[0]
    print("all 3 manifests byte-identical after sync-back")

    for _ in range(12):
        outcome, failure = routed_evaluate(host, port, state["model_id"])
        assert outcome == "ok" and failure == state["failure"], (outcome, failure)
    print("recovered fleet serves bit-identically; fleet smoke OK")


def shutdown(host, port):
    s = Session(host, port)
    assert s.request("shutdown").get("draining") is True
    print("fleet drained through one router shutdown")


def main():
    if sys.argv[1] == "--degraded":
        degraded(sys.argv[2], int(sys.argv[3]), sys.argv[4])
    elif sys.argv[1] == "--recovered":
        recovered(
            sys.argv[2],
            int(sys.argv[3]),
            sys.argv[4],
            [int(p) for p in sys.argv[5:8]],
        )
    elif sys.argv[1] == "--shutdown":
        shutdown(sys.argv[2], int(sys.argv[3]))
    else:
        baseline(
            sys.argv[1],
            int(sys.argv[2]),
            sys.argv[3],
            [int(p) for p in sys.argv[4:7]],
        )


if __name__ == "__main__":
    main()
