//! `hmdiv-fleet`: a replicated, sharded serving tier over `hmdiv-serve`.
//!
//! One `hmdiv-serve` replica is a single point of failure for long
//! cohort sweeps. This crate turns N replicas into one service without
//! adding any external dependency, in three pieces that lean on the
//! serve core's existing guarantees:
//!
//! * **Registry sync** ([`sync`]) — replicas expose their
//!   content-hash-addressed registries over two new verbs: `manifest`
//!   (every artifact's id and kind) and `fetch` (the original
//!   load-verb wire shape for one id). Because ids are content hashes,
//!   a diff by id is a complete diff: the reconciler ships each missing
//!   artifact and the receiver replays it through its own load path, so
//!   every transfer is re-hashed (the recomputed id must match the
//!   advertised one) and re-gated through the `hmdiv-analyze` admission
//!   check. A corrupt transfer cannot be admitted.
//!
//! * **Consistent-hash routing** ([`ring`], [`router`]) — a thin
//!   nonblocking front [`Router`] spreads client connections across the
//!   replicas on a vnode hash ring, so membership changes move only
//!   ~1/N of the keys. Stateless verbs follow the ring; the
//!   registry-mutating verbs (`load`, `load_cohort`, `save`, `restore`)
//!   broadcast so replicas stay converged. Request and reply lines are
//!   forwarded *verbatim* — the fleet preserves the serve core's
//!   bit-identical evaluation guarantee.
//!
//! * **Failover** ([`health`]) — a prober pings each replica on a
//!   cadence, ejects after consecutive failures, and re-admits only
//!   after recovery probes *plus* a registry sync from a healthy peer.
//!   Requests in flight on a lost replica are answered with the typed
//!   `backend_unavailable` wire error; later requests re-hash to the
//!   survivors.
//!
//! The fleet is wired into the `repro` binary as `repro serve --fleet
//! N` (N replica child processes plus the router in-process) and the
//! standalone `repro route` subcommand for externally-managed replicas.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod health;
pub mod process;
pub mod ring;
pub mod router;
pub mod sync;
mod wire;

pub use health::{BackendHealth, BackendSnapshot, FleetState, HealthPolicy, ProbeVerdict};
pub use process::ReplicaSet;
pub use ring::{mix64, HashRing};
pub use router::{Router, RouterConfig};
pub use sync::{diff_manifests, manifest_rows, reconcile, ManifestRow, SyncReport};
