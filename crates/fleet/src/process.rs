//! Replica child-process management for `repro serve --fleet N`.
//!
//! Spawns N `repro serve` children on ephemeral ports, harvests each
//! child's listen address from its `listening on` stdout line, and
//! shuts the set down gracefully (a `shutdown` verb per replica, then a
//! bounded wait, then a kill). Dropping a [`ReplicaSet`] kills any
//! children still running, so a panicking driver never leaks replica
//! processes.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hmdiv_serve::{Client, ServeError};

/// One spawned replica child.
#[derive(Debug)]
struct Replica {
    child: Child,
    addr: SocketAddr,
}

/// A set of replica server processes.
#[derive(Debug)]
pub struct ReplicaSet {
    replicas: Vec<Replica>,
}

impl ReplicaSet {
    /// Spawns `count` replicas of `exe serve --addr 127.0.0.1:0
    /// <extra_args>` and waits for each to report its listen address.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when a child cannot be spawned or never
    /// reports a listen address (the already-spawned children are
    /// killed by the partial set's `Drop`).
    pub fn spawn(
        exe: &Path,
        count: usize,
        extra_args: &[String],
    ) -> Result<ReplicaSet, ServeError> {
        let mut set = ReplicaSet {
            replicas: Vec::with_capacity(count),
        };
        for i in 0..count {
            let mut child = Command::new(exe)
                .arg("serve")
                .arg("--addr")
                .arg("127.0.0.1:0")
                .args(extra_args)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| ServeError::Io {
                    detail: format!("spawning replica {i} ({}): {e}", exe.display()),
                })?;
            let stdout = child.stdout.take().ok_or_else(|| ServeError::Io {
                detail: format!("replica {i}: no stdout pipe"),
            })?;
            let mut lines = BufReader::new(stdout).lines();
            let addr = loop {
                let line = match lines.next() {
                    Some(Ok(line)) => line,
                    Some(Err(e)) => {
                        drop(child.kill());
                        return Err(ServeError::Io {
                            detail: format!("replica {i} stdout: {e}"),
                        });
                    }
                    None => {
                        drop(child.kill());
                        return Err(ServeError::Io {
                            detail: format!("replica {i} exited before reporting its address"),
                        });
                    }
                };
                if let Some(idx) = line.find("listening on ") {
                    let addr = line[idx + "listening on ".len()..].trim();
                    match addr.parse::<SocketAddr>() {
                        Ok(addr) => break addr,
                        Err(e) => {
                            drop(child.kill());
                            return Err(ServeError::Io {
                                detail: format!("replica {i}: bad listen address `{addr}`: {e}"),
                            });
                        }
                    }
                }
            };
            // Keep the child's remaining stdout drained so it can never
            // block on a full pipe.
            std::thread::spawn(move || for _line in lines {});
            set.replicas.push(Replica { child, addr });
        }
        Ok(set)
    }

    /// The replicas' listen addresses, in spawn order.
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|r| r.addr).collect()
    }

    /// Gracefully shuts every replica down: a `shutdown` verb per
    /// replica (best effort — an already-dead replica is fine), then a
    /// bounded wait, then a kill for stragglers.
    pub fn shutdown(mut self) {
        for r in &self.replicas {
            if let Ok(mut client) = Client::connect(r.addr) {
                drop(client.request("shutdown", Vec::new()));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        for r in &mut self.replicas {
            loop {
                match r.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        drop(r.child.kill());
                        drop(r.child.wait());
                        break;
                    }
                }
            }
        }
        self.replicas.clear();
    }
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        for r in &mut self.replicas {
            drop(r.child.kill());
            drop(r.child.wait());
        }
    }
}
