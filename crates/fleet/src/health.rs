//! Per-backend health tracking: the ejection / re-admission state
//! machine and the shared fleet view the router and the prober both
//! consult.
//!
//! The state machine per backend:
//!
//! ```text
//!            consecutive failures == eject_after
//!  Healthy ────────────────────────────────────────▶ Ejected
//!     ▲                                                 │
//!     │    readmit() — called only after `readmit_after`│
//!     │    consecutive probe successes AND a registry   │
//!     │    sync from a healthy peer completed           │
//!     └─────────────────────────────────────────────────┘
//! ```
//!
//! Failures are *consecutive*: any success while healthy resets the
//! count, so a transient hiccup under load does not accumulate toward
//! ejection. Re-admission is deliberately two-gated — probes prove the
//! process answers, the sync proves its registry converged — because a
//! replica that serves before it syncs would answer `unknown_model` for
//! artifacts its peers hold.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Thresholds for the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that eject a healthy backend.
    pub eject_after: u32,
    /// Consecutive probe successes that make an ejected backend
    /// eligible for re-admission (the sync gate still applies).
    pub readmit_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            eject_after: 3,
            readmit_after: 2,
        }
    }
}

/// Mutable counters behind the per-backend lock.
#[derive(Debug, Default)]
struct Counters {
    consecutive_failures: u32,
    recovery_successes: u32,
    ejections: u64,
}

/// One backend's health record.
#[derive(Debug)]
pub struct BackendHealth {
    /// The backend's address (immutable, lock-free).
    addr: SocketAddr,
    /// Healthy flag, readable without the lock on every routed request.
    healthy: AtomicBool,
    counters: Mutex<Counters>,
}

/// What a recorded probe success means for an ejected backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// The backend is healthy (or still short of the readmit
    /// threshold); nothing to do.
    NoChange,
    /// The readmit threshold is met: sync the backend's registry from a
    /// healthy peer, then call [`FleetState::readmit`].
    ReadyToReadmit,
}

impl BackendHealth {
    fn new(addr: SocketAddr) -> BackendHealth {
        BackendHealth {
            addr,
            healthy: AtomicBool::new(true),
            counters: Mutex::new(Counters::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The shared health view over every backend in the fleet.
///
/// Indexed by backend number (the same index the hash ring uses).
/// Updates mirror into `hmdiv-obs`: the `fleet.backends` gauge, the
/// per-backend `fleet.backend.<i>.healthy` gauges, and the
/// `fleet.backend_ejections` / `fleet.health_probe_failures` counters.
#[derive(Debug)]
pub struct FleetState {
    backends: Vec<BackendHealth>,
    policy: HealthPolicy,
}

impl FleetState {
    /// A fleet where every backend starts healthy.
    #[must_use]
    pub fn new(addrs: &[SocketAddr], policy: HealthPolicy) -> FleetState {
        #[allow(clippy::cast_precision_loss)]
        hmdiv_obs::gauge_set("fleet.backends", addrs.len() as f64);
        for i in 0..addrs.len() {
            hmdiv_obs::gauge_set(&format!("fleet.backend.{i}.healthy"), 1.0);
        }
        FleetState {
            backends: addrs.iter().copied().map(BackendHealth::new).collect(),
            policy,
        }
    }

    /// Number of backends (healthy or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the fleet has no backends at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The backend's address.
    #[must_use]
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.backends[index].addr
    }

    /// Lock-free healthy check (the per-request hot path).
    #[must_use]
    pub fn is_healthy(&self, index: usize) -> bool {
        self.backends[index].healthy.load(Ordering::Acquire)
    }

    /// Healthy backends, lowest index first.
    #[must_use]
    pub fn healthy_indices(&self) -> Vec<usize> {
        (0..self.backends.len())
            .filter(|&i| self.is_healthy(i))
            .collect()
    }

    /// Records a request- or probe-level failure against `index`.
    /// Returns `true` when this failure crossed the threshold and
    /// ejected the backend (the caller should then fail its in-flight
    /// requests and tear down its connections).
    pub fn record_failure(&self, index: usize) -> bool {
        let backend = &self.backends[index];
        let mut c = backend.lock();
        c.recovery_successes = 0;
        if !backend.healthy.load(Ordering::Acquire) {
            return false;
        }
        c.consecutive_failures += 1;
        if c.consecutive_failures < self.policy.eject_after {
            return false;
        }
        backend.healthy.store(false, Ordering::Release);
        c.ejections += 1;
        hmdiv_obs::counter_add("fleet.backend_ejections", 1);
        hmdiv_obs::gauge_set(&format!("fleet.backend.{index}.healthy"), 0.0);
        true
    }

    /// Records a failed health probe: bumps the probe-failure counter,
    /// then counts like any other failure.
    pub fn record_probe_failure(&self, index: usize) -> bool {
        hmdiv_obs::counter_add("fleet.health_probe_failures", 1);
        self.record_failure(index)
    }

    /// Records a successful probe (or served request). For a healthy
    /// backend this clears the failure streak; for an ejected one it
    /// advances the recovery streak and reports when the readmit
    /// threshold is met.
    pub fn record_success(&self, index: usize) -> ProbeVerdict {
        let backend = &self.backends[index];
        let mut c = backend.lock();
        if backend.healthy.load(Ordering::Acquire) {
            c.consecutive_failures = 0;
            return ProbeVerdict::NoChange;
        }
        c.recovery_successes += 1;
        if c.recovery_successes >= self.policy.readmit_after {
            ProbeVerdict::ReadyToReadmit
        } else {
            ProbeVerdict::NoChange
        }
    }

    /// Returns an ejected backend to service. Call only after the
    /// recovery gate ([`ProbeVerdict::ReadyToReadmit`]) *and* a
    /// successful registry sync.
    pub fn readmit(&self, index: usize) {
        let backend = &self.backends[index];
        let mut c = backend.lock();
        c.consecutive_failures = 0;
        c.recovery_successes = 0;
        backend.healthy.store(true, Ordering::Release);
        hmdiv_obs::gauge_set(&format!("fleet.backend.{index}.healthy"), 1.0);
    }

    /// Resets the recovery streak of an ejected backend — called when
    /// the pre-readmission sync failed, so the backend must prove
    /// itself again from scratch.
    pub fn recovery_setback(&self, index: usize) {
        self.backends[index].lock().recovery_successes = 0;
    }

    /// A plain-data snapshot of one backend for the metrics verb.
    #[must_use]
    pub fn snapshot(&self, index: usize) -> BackendSnapshot {
        let backend = &self.backends[index];
        let c = backend.lock();
        BackendSnapshot {
            addr: backend.addr,
            healthy: backend.healthy.load(Ordering::Acquire),
            consecutive_failures: c.consecutive_failures,
            ejections: c.ejections,
        }
    }
}

/// One backend's health, frozen for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSnapshot {
    /// The backend's address.
    pub addr: SocketAddr,
    /// Whether it is currently in the routing set.
    pub healthy: bool,
    /// Failures since the last success (healthy backends only).
    pub consecutive_failures: u32,
    /// Times this backend has been ejected over the fleet's lifetime.
    pub ejections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize, policy: HealthPolicy) -> FleetState {
        let addrs: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().expect("literal"))
            .collect();
        FleetState::new(&addrs, policy)
    }

    #[test]
    fn ejection_needs_consecutive_failures() {
        let f = fleet(
            2,
            HealthPolicy {
                eject_after: 3,
                readmit_after: 2,
            },
        );
        assert!(!f.record_failure(0));
        assert!(!f.record_failure(0));
        // A success in between resets the streak.
        assert_eq!(f.record_success(0), ProbeVerdict::NoChange);
        assert!(!f.record_failure(0));
        assert!(!f.record_failure(0));
        assert!(f.record_failure(0), "third consecutive failure ejects");
        assert!(!f.is_healthy(0));
        assert!(f.is_healthy(1), "other backends are untouched");
        // Further failures on an ejected backend change nothing.
        assert!(!f.record_failure(0));
        assert_eq!(f.snapshot(0).ejections, 1);
    }

    #[test]
    fn readmission_is_gated_on_probe_streak_and_explicit_readmit() {
        let f = fleet(
            1,
            HealthPolicy {
                eject_after: 1,
                readmit_after: 2,
            },
        );
        assert!(f.record_probe_failure(0));
        assert!(!f.is_healthy(0));
        assert_eq!(f.record_success(0), ProbeVerdict::NoChange);
        // A failure mid-recovery resets the streak.
        assert!(!f.record_failure(0));
        assert_eq!(f.record_success(0), ProbeVerdict::NoChange);
        assert_eq!(f.record_success(0), ProbeVerdict::ReadyToReadmit);
        // The verdict alone does not readmit — the sync gate decides.
        assert!(!f.is_healthy(0));
        f.recovery_setback(0);
        assert_eq!(
            f.record_success(0),
            ProbeVerdict::NoChange,
            "setback restarts the streak"
        );
        assert_eq!(f.record_success(0), ProbeVerdict::ReadyToReadmit);
        f.readmit(0);
        assert!(f.is_healthy(0));
        assert_eq!(f.healthy_indices(), [0]);
        assert_eq!(f.snapshot(0).consecutive_failures, 0);
    }

    #[test]
    fn snapshots_report_addresses_and_state() {
        let f = fleet(3, HealthPolicy::default());
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.healthy_indices(), [0, 1, 2]);
        let snap = f.snapshot(1);
        assert_eq!(snap.addr, f.addr(1));
        assert!(snap.healthy);
        assert_eq!(snap.ejections, 0);
    }
}
