//! The fleet front router: a thin nonblocking proxy over the replica
//! set.
//!
//! One event-loop thread multiplexes every client connection and every
//! backend connection as nonblocking state machines with resumable
//! [`LineReader`] framing — the same technique the serve core's poller
//! and the loadgen driver use. Request lines are *forwarded verbatim*
//! (replies too), so the fleet preserves the serve core's bit-identity
//! guarantee: the router adds routing, never re-serialization. Only a
//! shallow scan (`wire::peek`) looks at each request, extracting the
//! verb and the raw `id` slice.
//!
//! Routing:
//!
//! * **stateless verbs** (`evaluate`, `scenarios`, `ping`, …, and
//!   anything unrecognized) hash the client connection onto the
//!   consistent ring and follow it to the first *healthy* backend;
//! * **registry-mutating verbs** (`load`, `load_cohort`, `save`,
//!   `restore`) broadcast to every healthy backend so replicas stay
//!   converged; the reply is the lowest-indexed backend's success (or
//!   its error when none succeeded);
//! * **`metrics`** is answered by the router itself with the fleet
//!   topology — per-backend health, ejection counts, and the
//!   router-side Prometheus exposition;
//! * **`shutdown`** broadcasts to the replicas *and* latches the
//!   router's own drain signal.
//!
//! Failover: when a backend's connection dies (or the prober ejects
//! it), every in-flight request owed to it is answered with the typed
//! `backend_unavailable` wire error — the client knows exactly which
//! requests are in doubt — and subsequent requests re-hash to the
//! survivors. A separate prober thread pings each backend on a fixed
//! cadence, ejects after consecutive failures, and re-admits a
//! recovered backend only after its registry is synced from a healthy
//! peer ([`crate::sync::reconcile`]).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use hmdiv_serve::json::{self, Json};
use hmdiv_serve::protocol::{err_line, LineEvent, LineReader};
use hmdiv_serve::shutdown::ShutdownSignal;
use hmdiv_serve::{Client, ServeError};

use crate::health::{FleetState, HealthPolicy, ProbeVerdict};
use crate::ring::{mix64, HashRing};
use crate::sync;
use crate::wire;

/// Verbs that must reach every healthy replica to keep their registries
/// converged.
const BROADCAST_VERBS: [&str; 4] = ["load", "load_cohort", "save", "restore"];

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Replica backend addresses, in ring-index order.
    pub backends: Vec<SocketAddr>,
    /// Ring points per backend.
    pub vnodes: usize,
    /// Per-line size limit (mirrors the replicas' limit).
    pub max_line_bytes: usize,
    /// Cadence of the health prober.
    pub probe_interval: Duration,
    /// Per-probe connect/read deadline.
    pub probe_timeout: Duration,
    /// Consecutive failures that eject a backend.
    pub eject_after: u32,
    /// Consecutive successful probes that qualify an ejected backend
    /// for re-admission (after a registry sync).
    pub readmit_after: u32,
    /// Deadline for lazily opening a backend connection.
    pub connect_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            vnodes: 64,
            max_line_bytes: 1 << 20,
            probe_interval: Duration::from_millis(150),
            probe_timeout: Duration::from_millis(1000),
            eject_after: 3,
            readmit_after: 2,
            connect_timeout: Duration::from_millis(250),
        }
    }
}

/// One reply owed to a client, in request order.
enum Pending {
    /// The reply line is ready to flush.
    Done(String),
    /// Waiting on one backend reply.
    Await {
        token: u64,
        /// Raw id slice for synthesizing a failover error.
        id_raw: String,
    },
    /// Waiting on every healthy backend (registry-mutating verbs).
    Broadcast { slots: Vec<BroadcastSlot> },
}

/// One backend's leg of a broadcast.
struct BroadcastSlot {
    token: u64,
    reply: Option<String>,
}

/// One client connection's state machine.
struct ClientConn {
    stream: TcpStream,
    reader: LineReader,
    out: Vec<u8>,
    cursor: usize,
    pending: VecDeque<Pending>,
    /// Consistent-hash key: all of this connection's stateless requests
    /// follow it to the same backend while that backend stays healthy.
    ring_key: u64,
    /// Client sent EOF; close once the pending replies flush.
    half_closed: bool,
    dead: bool,
}

/// One backend connection's state machine.
struct BackendConn {
    stream: TcpStream,
    reader: LineReader,
    out: Vec<u8>,
    cursor: usize,
    /// Tokens for requests written to this backend, in reply order (the
    /// serve core answers each connection strictly in request order).
    inflight: VecDeque<u64>,
}

/// The running router.
#[derive(Debug)]
pub struct Router {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    fleet: Arc<FleetState>,
    event_thread: Option<std::thread::JoinHandle<()>>,
    probe_thread: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds the listen socket and starts the event loop and prober.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when no backends are configured;
    /// [`ServeError::Io`] when the listen socket cannot bind.
    pub fn start(config: RouterConfig) -> Result<Router, ServeError> {
        if config.backends.is_empty() {
            return Err(ServeError::BadRequest {
                detail: "router needs at least one backend".to_owned(),
            });
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(ShutdownSignal::new());
        let fleet = Arc::new(FleetState::new(
            &config.backends,
            HealthPolicy {
                eject_after: config.eject_after,
                readmit_after: config.readmit_after,
            },
        ));
        let ring = HashRing::new(config.backends.len(), config.vnodes);
        let event_thread = {
            let signal = Arc::clone(&signal);
            let fleet = Arc::clone(&fleet);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fleet-router".to_owned())
                .spawn(move || EventLoop::new(listener, config, ring, fleet, signal).run())
                .map_err(|e| ServeError::Io {
                    detail: format!("spawning router event loop: {e}"),
                })?
        };
        let probe_thread = {
            let signal = Arc::clone(&signal);
            let fleet = Arc::clone(&fleet);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fleet-prober".to_owned())
                .spawn(move || probe_loop(&config, &fleet, &signal))
                .map_err(|e| ServeError::Io {
                    detail: format!("spawning router prober: {e}"),
                })?
        };
        Ok(Router {
            addr,
            signal,
            fleet,
            event_thread: Some(event_thread),
            probe_thread: Some(probe_thread),
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared fleet health view (for tests and reporting).
    #[must_use]
    pub fn fleet(&self) -> &FleetState {
        &self.fleet
    }

    /// Requests drain-and-stop without blocking.
    pub fn request_shutdown(&self) {
        self.signal.request();
    }

    /// Blocks until the router has drained and stopped.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// [`Router::request_shutdown`] then [`Router::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }

    fn join_threads(&mut self) {
        for handle in [self.event_thread.take(), self.probe_thread.take()]
            .into_iter()
            .flatten()
        {
            drop(handle.join());
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.signal.request();
        self.join_threads();
    }
}

/// Synthesizes the typed failover error reply for a lost request.
fn unavailable_line(id_raw: &str, backend: SocketAddr) -> String {
    let id = json::parse(id_raw).unwrap_or(Json::Null);
    err_line(
        &id,
        None,
        &ServeError::BackendUnavailable {
            backend: backend.to_string(),
        },
    )
}

/// The router's single-threaded event loop.
struct EventLoop {
    listener: TcpListener,
    config: RouterConfig,
    ring: HashRing,
    fleet: Arc<FleetState>,
    signal: Arc<ShutdownSignal>,
    clients: Vec<Option<ClientConn>>,
    backends: Vec<Option<BackendConn>>,
    next_token: u64,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        config: RouterConfig,
        ring: HashRing,
        fleet: Arc<FleetState>,
        signal: Arc<ShutdownSignal>,
    ) -> EventLoop {
        let backend_count = config.backends.len();
        EventLoop {
            listener,
            config,
            ring,
            fleet,
            signal,
            clients: Vec::new(),
            backends: (0..backend_count).map(|_| None).collect(),
            next_token: 1,
        }
    }

    fn run(mut self) {
        let mut idle_backoff = Duration::from_micros(100);
        loop {
            let draining = self.signal.is_requested();
            let mut progressed = false;
            if !draining {
                progressed |= self.accept_new();
            }
            self.enforce_ejections();
            progressed |= self.sweep_backends();
            progressed |= self.sweep_clients();
            self.reap_clients(draining);
            if draining && self.clients.iter().all(Option::is_none) {
                break;
            }
            if progressed {
                idle_backoff = Duration::from_micros(100);
            } else {
                std::thread::sleep(idle_backoff);
                idle_backoff = (idle_backoff * 2).min(Duration::from_millis(2));
            }
        }
    }

    /// Accepts every waiting connection; returns whether any arrived.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    any = true;
                    // Hash the peer address (ip + port) onto the ring so
                    // distinct connections spread across backends while
                    // one connection stays put.
                    let mut key = match peer.ip() {
                        std::net::IpAddr::V4(ip) => u64::from(u32::from(ip)),
                        std::net::IpAddr::V6(ip) => {
                            let o = ip.octets();
                            u64::from_le_bytes([o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7]])
                        }
                    };
                    key = mix64(key ^ (u64::from(peer.port()) << 48));
                    let conn = ClientConn {
                        stream,
                        reader: LineReader::new(self.config.max_line_bytes),
                        out: Vec::new(),
                        cursor: 0,
                        pending: VecDeque::new(),
                        ring_key: key,
                        half_closed: false,
                        dead: false,
                    };
                    if let Some(slot) = self.clients.iter_mut().find(|s| s.is_none()) {
                        *slot = Some(conn);
                    } else {
                        self.clients.push(Some(conn));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        any
    }

    /// Tears down connections to backends the prober has ejected, so
    /// their in-flight requests fail over promptly.
    fn enforce_ejections(&mut self) {
        for b in 0..self.backends.len() {
            if self.backends[b].is_some() && !self.fleet.is_healthy(b) {
                self.fail_backend(b);
            }
        }
    }

    /// Kills backend `b`'s connection and answers everything in flight
    /// on it with `backend_unavailable`.
    fn fail_backend(&mut self, b: usize) {
        let Some(conn) = self.backends[b].take() else {
            return;
        };
        let addr = self.fleet.addr(b);
        for token in conn.inflight {
            self.resolve_token(token, None, addr);
        }
    }

    /// Fills the pending slot waiting on `token`. `reply` is the
    /// forwarded backend line (newline included), or `None` to
    /// synthesize a `backend_unavailable` error from `addr`.
    fn resolve_token(&mut self, token: u64, reply: Option<String>, addr: SocketAddr) {
        for client in self.clients.iter_mut().flatten() {
            for pending in &mut client.pending {
                match pending {
                    Pending::Await { token: t, id_raw } if *t == token => {
                        let line = reply.unwrap_or_else(|| unavailable_line(id_raw, addr));
                        *pending = Pending::Done(line);
                        return;
                    }
                    Pending::Broadcast { slots } => {
                        if let Some(slot) = slots
                            .iter_mut()
                            .find(|s| s.token == token && s.reply.is_none())
                        {
                            slot.reply =
                                Some(reply.unwrap_or_else(|| unavailable_line("null", addr)));
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
        // No owner: the client hung up before its reply arrived.
    }

    /// Sweeps every backend connection: flush writes, read replies,
    /// detect death. Returns whether any byte moved.
    fn sweep_backends(&mut self) -> bool {
        let mut progressed = false;
        for b in 0..self.backends.len() {
            let mut failed = false;
            let mut resolved: Vec<(u64, String)> = Vec::new();
            if let Some(conn) = self.backends[b].as_mut() {
                // Writes.
                while conn.cursor < conn.out.len() {
                    match conn.stream.write(&conn.out[conn.cursor..]) {
                        Ok(0) => {
                            failed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.cursor += n;
                            progressed = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if conn.cursor == conn.out.len() && !conn.out.is_empty() {
                    conn.out.clear();
                    conn.cursor = 0;
                }
                // Reads.
                if !failed {
                    let mut chunk = [0_u8; 64 * 1024];
                    loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => {
                                failed = true;
                                break;
                            }
                            Ok(n) => {
                                progressed = true;
                                conn.reader.push(&chunk[..n]);
                                while let Some(event) = conn.reader.next_event() {
                                    let Some(token) = conn.inflight.pop_front() else {
                                        // A reply with nothing in
                                        // flight: protocol breach, drop
                                        // the connection.
                                        failed = true;
                                        break;
                                    };
                                    match event {
                                        LineEvent::Line(mut line) => {
                                            line.push('\n');
                                            resolved.push((token, line));
                                        }
                                        // An oversized or non-UTF-8
                                        // reply cannot be forwarded;
                                        // the requests it answered are
                                        // lost with the connection.
                                        LineEvent::TooLong { .. } | LineEvent::InvalidUtf8 => {
                                            failed = true;
                                            break;
                                        }
                                    }
                                }
                                if failed {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                }
            }
            let addr = self.fleet.addr(b);
            for (token, line) in resolved {
                self.resolve_token(token, Some(line), addr);
            }
            if failed {
                progressed = true;
                self.fail_backend(b);
                // A dead connection counts toward ejection; the prober
                // owns re-admission.
                self.fleet.record_failure(b);
            }
        }
        progressed
    }

    /// Sweeps every client connection: read and route new requests,
    /// flush ready replies. Returns whether any byte moved.
    fn sweep_clients(&mut self) -> bool {
        let mut progressed = false;
        for c in 0..self.clients.len() {
            let mut lines: Vec<Result<String, ServeError>> = Vec::new();
            let mut half_closed = false;
            let mut dead = false;
            if let Some(conn) = self.clients[c].as_mut() {
                if conn.dead {
                    continue;
                }
                if !conn.half_closed {
                    let mut chunk = [0_u8; 64 * 1024];
                    loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => {
                                half_closed = true;
                                break;
                            }
                            Ok(n) => {
                                progressed = true;
                                conn.reader.push(&chunk[..n]);
                                while let Some(event) = conn.reader.next_event() {
                                    match event {
                                        LineEvent::Line(line) => lines.push(Ok(line)),
                                        LineEvent::TooLong { limit } => {
                                            lines.push(Err(ServeError::LineTooLong { limit }));
                                        }
                                        LineEvent::InvalidUtf8 => {
                                            lines.push(Err(ServeError::Parse {
                                                detail: "request line is not valid UTF-8"
                                                    .to_owned(),
                                            }));
                                        }
                                    }
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }
            } else {
                continue;
            }
            for line in lines {
                progressed = true;
                match line {
                    Ok(line) => self.route_request(c, &line),
                    Err(e) => {
                        if let Some(conn) = self.clients[c].as_mut() {
                            conn.pending
                                .push_back(Pending::Done(err_line(&Json::Null, None, &e)));
                        }
                    }
                }
            }
            if let Some(conn) = self.clients[c].as_mut() {
                if dead {
                    conn.dead = true;
                }
                if half_closed {
                    conn.half_closed = true;
                }
                progressed |= flush_client(conn);
            }
        }
        progressed
    }

    /// Routes one complete request line from client `c`.
    fn route_request(&mut self, c: usize, line: &str) {
        let peeked = wire::peek(line);
        match peeked.verb {
            Some("metrics") => {
                let reply = self.metrics_line(peeked.id_raw);
                if let Some(conn) = self.clients[c].as_mut() {
                    conn.pending.push_back(Pending::Done(reply));
                }
            }
            Some("shutdown") => {
                // Drain the router too; the broadcast tells every
                // replica to drain as well.
                self.broadcast(c, line);
                self.signal.request();
            }
            Some(verb) if BROADCAST_VERBS.contains(&verb) => self.broadcast(c, line),
            _ => self.route_stateless(c, line, &peeked),
        }
    }

    /// Sends `line` to the first healthy backend on the client's ring
    /// walk, lazily connecting. Synthesizes `backend_unavailable` when
    /// no backend is reachable.
    fn route_stateless(&mut self, c: usize, line: &str, peeked: &wire::Peek<'_>) {
        let Some(ring_key) = self.clients[c].as_ref().map(|conn| conn.ring_key) else {
            return;
        };
        let id_raw = peeked.id_raw.to_owned();
        // Walk the ring: the owner first, then the failover order. Each
        // reachable-check may eject an unreachable backend, so re-filter
        // through `is_healthy` on every step.
        loop {
            let fleet = Arc::clone(&self.fleet);
            let Some(b) = self
                .ring
                .route_filtered(ring_key, |b| fleet.is_healthy(b as usize))
            else {
                // Whole fleet down.
                let addr = self.fleet.addr(0);
                if let Some(conn) = self.clients[c].as_mut() {
                    conn.pending
                        .push_back(Pending::Done(unavailable_line(&id_raw, addr)));
                }
                return;
            };
            let b = b as usize;
            if let Some(token) = self.send_to_backend(b, line) {
                if let Some(conn) = self.clients[c].as_mut() {
                    conn.pending.push_back(Pending::Await { token, id_raw });
                }
                return;
            }
            // Connect failed: counts toward ejection; if the backend is
            // now ejected the ring walk moves on, otherwise give up on
            // this request (transient refusals stay rare).
            if !self.fleet.record_failure(b) && self.fleet.is_healthy(b) {
                let addr = self.fleet.addr(b);
                if let Some(conn) = self.clients[c].as_mut() {
                    conn.pending
                        .push_back(Pending::Done(unavailable_line(&id_raw, addr)));
                }
                return;
            }
        }
    }

    /// Sends `line` to every healthy backend; the pending entry
    /// resolves once all legs answer (or die).
    fn broadcast(&mut self, c: usize, line: &str) {
        let healthy = self.fleet.healthy_indices();
        let mut slots = Vec::new();
        for b in healthy {
            if let Some(token) = self.send_to_backend(b, line) {
                slots.push(BroadcastSlot { token, reply: None });
            } else {
                self.fleet.record_failure(b);
            }
        }
        let pending = if slots.is_empty() {
            // No backend reachable at all.
            let peeked = wire::peek(line);
            Pending::Done(unavailable_line(peeked.id_raw, self.fleet.addr(0)))
        } else {
            Pending::Broadcast { slots }
        };
        if let Some(conn) = self.clients[c].as_mut() {
            conn.pending.push_back(pending);
        }
    }

    /// Queues `line` on backend `b`'s connection (opening it lazily),
    /// returning the in-flight token, or `None` when the backend is
    /// unreachable.
    fn send_to_backend(&mut self, b: usize, line: &str) -> Option<u64> {
        if self.backends[b].is_none() {
            let addr = self.fleet.addr(b);
            let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout).ok()?;
            stream.set_nodelay(true).ok()?;
            stream.set_nonblocking(true).ok()?;
            self.backends[b] = Some(BackendConn {
                stream,
                reader: LineReader::new(self.config.max_line_bytes),
                out: Vec::new(),
                cursor: 0,
                inflight: VecDeque::new(),
            });
        }
        let conn = self.backends[b].as_mut()?;
        let token = self.next_token;
        self.next_token += 1;
        conn.out.extend_from_slice(line.as_bytes());
        conn.out.push(b'\n');
        conn.inflight.push_back(token);
        Some(token)
    }

    /// The router-local `metrics` reply: fleet topology plus the
    /// process-wide Prometheus exposition.
    fn metrics_line(&self, id_raw: &str) -> String {
        let snapshot = hmdiv_obs::snapshot();
        let backends: Vec<Json> = (0..self.fleet.len())
            .map(|b| {
                let s = self.fleet.snapshot(b);
                Json::Obj(vec![
                    ("addr".to_owned(), Json::str(s.addr.to_string())),
                    ("healthy".to_owned(), Json::Bool(s.healthy)),
                    (
                        "consecutive_failures".to_owned(),
                        Json::Num(f64::from(s.consecutive_failures)),
                    ),
                    #[allow(clippy::cast_precision_loss)]
                    ("ejections".to_owned(), Json::Num(s.ejections as f64)),
                ])
            })
            .collect();
        #[allow(clippy::cast_precision_loss)]
        let result = Json::Obj(vec![
            (
                "prometheus".to_owned(),
                Json::str(hmdiv_obs::export::to_prometheus(&snapshot)),
            ),
            (
                "fleet".to_owned(),
                Json::Obj(vec![
                    ("backends".to_owned(), Json::Num(self.fleet.len() as f64)),
                    (
                        "healthy".to_owned(),
                        Json::Num(self.fleet.healthy_indices().len() as f64),
                    ),
                    ("members".to_owned(), Json::Arr(backends)),
                ]),
            ),
        ]);
        let id = json::parse(id_raw).unwrap_or(Json::Null);
        hmdiv_serve::protocol::ok_line(&id, None, result)
    }

    /// Drops finished/dead client connections. While draining, an idle
    /// connection (every owed reply flushed) is closed rather than held
    /// open — otherwise a client that simply stays connected would stall
    /// the drain forever.
    fn reap_clients(&mut self, draining: bool) {
        for slot in &mut self.clients {
            let close = match slot {
                Some(conn) => {
                    conn.dead
                        || ((conn.half_closed || draining)
                            && conn.pending.is_empty()
                            && conn.out.is_empty())
                }
                None => false,
            };
            if close {
                *slot = None;
            }
        }
    }
}

/// Flushes resolved head-of-queue replies into the socket, preserving
/// request order per connection. Returns whether any byte moved.
fn flush_client(conn: &mut ClientConn) -> bool {
    // Resolve fully-answered broadcasts at the head.
    loop {
        match conn.pending.front_mut() {
            Some(Pending::Broadcast { slots }) if slots.iter().all(|s| s.reply.is_some()) => {
                let line = pick_broadcast_reply(slots);
                *conn.pending.front_mut().expect("front exists") = Pending::Done(line);
            }
            _ => {}
        }
        match conn.pending.front() {
            Some(Pending::Done(_)) => {
                let Some(Pending::Done(line)) = conn.pending.pop_front() else {
                    unreachable!("front was just matched as Done");
                };
                conn.out.extend_from_slice(line.as_bytes());
            }
            _ => break,
        }
    }
    let mut progressed = false;
    while conn.cursor < conn.out.len() {
        match conn.stream.write(&conn.out[conn.cursor..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.cursor += n;
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.cursor == conn.out.len() && !conn.out.is_empty() {
        conn.out.clear();
        conn.cursor = 0;
    }
    progressed
}

/// The broadcast reply the client sees: the lowest-indexed backend's
/// success, or (when every leg failed) the lowest-indexed reply.
fn pick_broadcast_reply(slots: &[BroadcastSlot]) -> String {
    let lines: Vec<&String> = slots.iter().filter_map(|s| s.reply.as_ref()).collect();
    lines
        .iter()
        .find(|line| {
            json::parse(line)
                .ok()
                .and_then(|r| r.get("ok").and_then(Json::as_bool))
                == Some(true)
        })
        .or_else(|| lines.first())
        .map_or_else(String::new, |line| (*line).clone())
}

/// The health prober: pings every backend each interval, ejects after
/// consecutive failures, re-admits after recovery probes plus a
/// registry sync from a healthy peer.
fn probe_loop(config: &RouterConfig, fleet: &FleetState, signal: &ShutdownSignal) {
    while !signal.wait_timeout(config.probe_interval) {
        for b in 0..fleet.len() {
            let addr = fleet.addr(b);
            if !probe_once(addr, config.probe_timeout) {
                fleet.record_probe_failure(b);
                continue;
            }
            if fleet.record_success(b) == ProbeVerdict::ReadyToReadmit {
                // Two-gate re-admission: the probes proved the process
                // answers; now converge its registry from the
                // lowest-indexed healthy peer before routing to it.
                match sync_from_peer(fleet, b) {
                    Ok(()) => fleet.readmit(b),
                    Err(_) => fleet.recovery_setback(b),
                }
            }
        }
    }
}

/// One health probe: fresh connection, `ping` verb, bounded read.
fn probe_once(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return false;
    }
    let mut stream = stream;
    if stream.write_all(b"{\"id\":0,\"verb\":\"ping\"}\n").is_err() {
        return false;
    }
    let mut buf = Vec::new();
    let mut chunk = [0_u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.contains(&b'\n') {
                    let line = String::from_utf8_lossy(&buf);
                    return json::parse(line.lines().next().unwrap_or(""))
                        .ok()
                        .and_then(|r| r.get("ok").and_then(Json::as_bool))
                        == Some(true);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Reconciles backend `b`'s registry from the lowest-indexed healthy
/// peer. A fleet with no healthy peer left has nothing to converge
/// from, which counts as success (the returning backend *is* the
/// fleet).
fn sync_from_peer(fleet: &FleetState, b: usize) -> Result<(), ServeError> {
    let Some(peer) = fleet.healthy_indices().into_iter().find(|&p| p != b) else {
        return Ok(());
    };
    let mut source = Client::connect(fleet.addr(peer))?;
    let mut dest = Client::connect(fleet.addr(b))?;
    sync::reconcile(&mut source, &mut dest).map(drop)
}
