//! Registry reconciliation between replicas over the `manifest` /
//! `fetch` verbs.
//!
//! Because the registry is content-hash addressed, two replicas can
//! never hold *different* artifacts under the same id — a replica is
//! only ever missing some. Reconciliation is therefore a one-way diff:
//! list both manifests, ship every artifact the destination lacks, and
//! let the destination's own load path re-hash and re-gate each one.
//! The recomputed content id must equal the id the source advertised
//! ([`ServeError::Snapshot`] otherwise), and the `hmdiv-analyze`
//! admission gate runs exactly as it does for a fresh `load` — a
//! corrupt or tampered transfer cannot be admitted, mirroring the
//! snapshot-restore invariant.

use hmdiv_serve::{Client, Json, ServeError};

/// One manifest row: the artifact's content id and kind tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRow {
    /// The content-addressed artifact id.
    pub id: String,
    /// The kind tag (`sequential`, `detection`, `cohort`).
    pub kind: String,
}

/// What a reconciliation did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Ids shipped to (and verified by) the destination, in id order.
    pub shipped: Vec<String>,
    /// Source artifacts the destination already held.
    pub already_present: usize,
    /// Total artifacts on the source.
    pub source_total: usize,
}

/// Fetches a replica's manifest rows (id order, as the server lists).
///
/// # Errors
///
/// Transport errors and malformed manifests surface as [`ServeError`].
pub fn manifest_rows(client: &mut Client) -> Result<Vec<ManifestRow>, ServeError> {
    let result = client.request("manifest", Vec::new())?;
    let rows = result
        .get("artifacts")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "manifest reply without `artifacts` array".to_owned(),
        })?;
    rows.iter()
        .map(|row| {
            let field = |key: &str| {
                row.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: format!("manifest row without string `{key}`"),
                    })
            };
            Ok(ManifestRow {
                id: field("id")?,
                kind: field("kind")?,
            })
        })
        .collect()
}

/// The rows present on `source` but absent from `dest`, by content id.
/// Content addressing makes the id comparison sufficient: equal ids
/// imply bit-identical artifacts.
#[must_use]
pub fn diff_manifests(source: &[ManifestRow], dest: &[ManifestRow]) -> Vec<ManifestRow> {
    let held: std::collections::BTreeSet<&str> = dest.iter().map(|r| r.id.as_str()).collect();
    source
        .iter()
        .filter(|r| !held.contains(r.id.as_str()))
        .cloned()
        .collect()
}

/// Ships every artifact `dest` lacks from `source`, verifying each
/// transfer: the destination replays the fetched wire shape through its
/// own load verb (re-hash plus the `hmdiv-analyze` admission gate) and
/// the receipt's content id must equal the id the source advertised.
/// Bumps the `fleet.sync_artifacts_shipped` counter per artifact.
///
/// # Errors
///
/// [`ServeError::Snapshot`] on a content-id mismatch; transport and
/// admission errors surface verbatim.
pub fn reconcile(source: &mut Client, dest: &mut Client) -> Result<SyncReport, ServeError> {
    let source_rows = manifest_rows(source)?;
    let dest_rows = manifest_rows(dest)?;
    let missing = diff_manifests(&source_rows, &dest_rows);
    let mut report = SyncReport {
        shipped: Vec::with_capacity(missing.len()),
        already_present: source_rows.len() - missing.len(),
        source_total: source_rows.len(),
    };
    for row in missing {
        let fetched = source.request(
            "fetch",
            vec![("model".to_owned(), Json::str(row.id.as_str()))],
        )?;
        let Json::Obj(members) = fetched else {
            return Err(ServeError::BadRequest {
                detail: format!("fetch of `{}` did not return an object", row.id),
            });
        };
        // The transfer payload is the load-verb wire shape plus the
        // advertised id; strip the id and replay the rest.
        let fields: Vec<(String, Json)> = members.into_iter().filter(|(k, _)| k != "id").collect();
        let verb = if row.kind == "cohort" {
            "load_cohort"
        } else {
            "load"
        };
        let receipt = dest.request(verb, fields)?;
        let got = receipt
            .get("model_id")
            .and_then(Json::as_str)
            .unwrap_or_default();
        if got != row.id {
            return Err(ServeError::Snapshot {
                detail: format!(
                    "sync transfer of `{}` re-hashed to `{got}` on the destination; \
                     refusing the divergent artifact",
                    row.id
                ),
            });
        }
        hmdiv_obs::counter_add("fleet.sync_artifacts_shipped", 1);
        report.shipped.push(row.id);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str, kind: &str) -> ManifestRow {
        ManifestRow {
            id: id.to_owned(),
            kind: kind.to_owned(),
        }
    }

    #[test]
    fn diff_of_empty_registries_is_empty() {
        assert_eq!(diff_manifests(&[], &[]), Vec::<ManifestRow>::new());
        // An empty source needs nothing shipped regardless of dest.
        assert_eq!(
            diff_manifests(&[], &[row("m01", "sequential")]),
            Vec::<ManifestRow>::new()
        );
    }

    #[test]
    fn diff_of_disjoint_registries_ships_the_whole_source() {
        let source = [row("m01", "sequential"), row("c02", "cohort")];
        let dest = [row("m03", "detection")];
        assert_eq!(diff_manifests(&source, &dest), source.to_vec());
    }

    #[test]
    fn diff_of_a_subset_ships_only_the_gap() {
        let source = [
            row("c01", "cohort"),
            row("m02", "sequential"),
            row("m03", "detection"),
        ];
        let dest = [row("c01", "cohort"), row("m03", "detection")];
        assert_eq!(
            diff_manifests(&source, &dest),
            vec![row("m02", "sequential")]
        );
        // The reverse direction ships nothing: dest is a subset.
        assert_eq!(diff_manifests(&dest, &source), Vec::<ManifestRow>::new());
    }

    #[test]
    fn diff_of_identical_registries_is_empty() {
        let rows = [row("m01", "sequential"), row("c02", "cohort")];
        assert_eq!(diff_manifests(&rows, &rows), Vec::<ManifestRow>::new());
    }
}
