//! Consistent-hash ring over replica backends.
//!
//! Each backend owns `vnodes` points on a `u64` ring; a key routes to
//! the owner of the first point clockwise from its hash. Every point is
//! derived only from its backend's index and vnode number, so adding or
//! removing one backend adds or removes only *that backend's* points:
//! roughly `1/n` of the keyspace moves, the rest keeps its owner. The
//! same property gives failover for free — skipping a dead backend's
//! points during the clockwise walk reassigns exactly its keys to the
//! survivors and nothing else.

/// The SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation
/// (the same mixer the vendored `rand` stub uses for seed expansion).
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring: sorted `(point, backend)` pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by position.
    points: Vec<(u64, u32)>,
    backends: u32,
}

impl HashRing {
    /// A ring over `backends` replicas with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// When `backends` or `vnodes` is zero, or `backends` exceeds
    /// `u32::MAX` — a fleet has a small, fixed backend count.
    #[must_use]
    pub fn new(backends: usize, vnodes: usize) -> HashRing {
        assert!(backends > 0, "a ring needs at least one backend");
        assert!(vnodes > 0, "a ring needs at least one vnode per backend");
        let backends = u32::try_from(backends).expect("backend count fits u32");
        let mut points = Vec::with_capacity(backends as usize * vnodes);
        for b in 0..backends {
            for v in 0..vnodes {
                // Point position depends only on (backend, vnode):
                // ring membership changes never move other backends'
                // points.
                let point = mix64((u64::from(b) << 32) | v as u64);
                points.push((point, b));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// Number of backends the ring was built over.
    #[must_use]
    pub fn backends(&self) -> u32 {
        self.backends
    }

    /// The backend owning `key`, ignoring health.
    #[must_use]
    pub fn route(&self, key: u64) -> u32 {
        // `alive` accepts everything, so the walk terminates at the
        // first point.
        self.route_filtered(key, |_| true)
            .expect("some backend is always alive when all are")
    }

    /// The first backend clockwise from `key` for which `alive` holds,
    /// or `None` when every backend is dead. Dead backends' points are
    /// skipped in place, so only their keys are reassigned.
    pub fn route_filtered(&self, key: u64, alive: impl Fn(u32) -> bool) -> Option<u32> {
        let hashed = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < hashed);
        let n = self.points.len();
        let mut seen = 0_u64;
        for i in 0..n {
            let (_, backend) = self.points[(start + i) % n];
            if alive(backend) {
                return Some(backend);
            }
            // Bound the walk: after passing every distinct point once,
            // nothing new appears.
            seen += 1;
            if seen >= n as u64 {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const VNODES: usize = 64;

    fn owners(ring: &HashRing, keys: u64) -> Vec<u32> {
        (0..keys).map(|k| ring.route(k)).collect()
    }

    #[test]
    fn distribution_covers_every_backend_roughly_evenly() {
        let ring = HashRing::new(4, VNODES);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for k in 0..4000_u64 {
            *counts.entry(ring.route(k)).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every backend owns some keys");
        for (&b, &c) in &counts {
            // Perfectly even would be 1000; vnode variance allows a wide
            // band but no starvation or monopoly.
            assert!((300..=2200).contains(&c), "backend {b} owns {c}/4000");
        }
    }

    #[test]
    fn adding_a_backend_moves_about_one_in_n_keys() {
        let keys = 8000_u64;
        let before = owners(&HashRing::new(4, VNODES), keys);
        let after = owners(&HashRing::new(5, VNODES), keys);
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count() as f64 / keys as f64;
        // Expected ~ 1/5 = 0.20; a naive `hash % n` would move ~ 4/5.
        assert!(
            (0.05..=0.35).contains(&moved),
            "moved fraction {moved} out of the consistent-hash band"
        );
        // Every moved key moved *to* the new backend, never between
        // survivors.
        for (a, b) in before.iter().zip(&after) {
            if a != b {
                assert_eq!(*b, 4, "key moved between surviving backends");
            }
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let keys = 8000_u64;
        let full = HashRing::new(4, VNODES);
        let before = owners(&full, keys);
        // "Removal" via the health filter: backend 2 is dead.
        let after: Vec<u32> = (0..keys)
            .map(|k| full.route_filtered(k, |b| b != 2).expect("survivors exist"))
            .collect();
        for (k, (a, b)) in before.iter().zip(&after).enumerate() {
            if a != b {
                assert_eq!(*a, 2, "key {k} moved although its owner survived");
            }
            assert_ne!(*b, 2, "key {k} routed to the dead backend");
        }
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count() as f64 / keys as f64;
        assert!(
            (0.05..=0.45).contains(&moved),
            "moved fraction {moved} out of the failover band"
        );
    }

    #[test]
    fn all_dead_routes_nowhere_and_revival_restores_owners() {
        let ring = HashRing::new(3, VNODES);
        assert_eq!(ring.route_filtered(42, |_| false), None);
        let original = ring.route(42);
        assert_eq!(ring.route_filtered(42, |_| true), Some(original));
    }

    #[test]
    fn routing_is_deterministic() {
        let a = HashRing::new(4, VNODES);
        let b = HashRing::new(4, VNODES);
        for k in 0..256 {
            assert_eq!(a.route(k), b.route(k));
        }
    }
}
