//! Shallow request-line inspection for the router.
//!
//! The router needs exactly two facts about a request line — the verb
//! (routing class) and the raw `id` slice (to synthesize a
//! `backend_unavailable` error if the owning backend dies mid-flight).
//! Parsing the full JSON would roughly double the per-request CPU for
//! bulk `scenarios` sweeps whose bodies the router never looks at, so
//! this scanner walks only the *top-level* members of the object,
//! skipping nested values by bracket counting with string/escape
//! awareness, and copies nothing.
//!
//! The scanner is deliberately forgiving: on any malformed input it
//! reports what it found so far (possibly nothing). A line with no
//! recognizable verb still gets forwarded to the hashed backend, whose
//! real parser produces the authoritative `parse_error` reply — the
//! router never rejects what a replica would accept.

/// What a shallow scan of a request line found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Peek<'a> {
    /// The `verb` member's string value, if present and well-formed.
    pub verb: Option<&'a str>,
    /// The raw `id` member slice, verbatim (defaults to `null` — the
    /// same id the server echoes for id-less requests).
    pub id_raw: &'a str,
}

/// Skips whitespace from `i`, returning the next index.
fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
        i += 1;
    }
    i
}

/// Skips a string literal whose opening quote is at `i`; returns the
/// index just past the closing quote, or `None` when unterminated.
fn skip_string(bytes: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(bytes[i], b'"');
    let mut i = i + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Skips one JSON value starting at `i` (string, object, array, or
/// scalar token); returns the index just past it.
fn skip_value(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i)? {
        b'"' => skip_string(bytes, i),
        b'{' | b'[' => {
            let mut depth = 0_usize;
            let mut j = i;
            while j < bytes.len() {
                match bytes[j] {
                    b'"' => {
                        j = skip_string(bytes, j)?;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => {
            // Scalar token: runs to the next structural character.
            let mut j = i;
            while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b']' | b' ' | b'\t') {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// Scans the top-level members of a JSON object line for `verb` and
/// `id`.
pub(crate) fn peek(line: &str) -> Peek<'_> {
    let mut found = Peek {
        verb: None,
        id_raw: "null",
    };
    let bytes = line.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return found;
    }
    i = skip_ws(bytes, i + 1);
    while i < bytes.len() && bytes[i] != b'}' {
        // Member key.
        if bytes[i] != b'"' {
            return found;
        }
        let key_start = i + 1;
        let Some(after_key) = skip_string(bytes, i) else {
            return found;
        };
        let key = &line[key_start..after_key - 1];
        i = skip_ws(bytes, after_key);
        if bytes.get(i) != Some(&b':') {
            return found;
        }
        i = skip_ws(bytes, i + 1);
        let value_start = i;
        let Some(after_value) = skip_value(bytes, i) else {
            return found;
        };
        match key {
            "verb" if bytes[value_start] == b'"' => {
                found.verb = Some(&line[value_start + 1..after_value - 1]);
            }
            "id" => found.id_raw = line[value_start..after_value].trim_end(),
            _ => {}
        }
        if found.verb.is_some() && found.id_raw != "null" {
            // Both facts in hand; the rest of the line is opaque.
            return found;
        }
        i = skip_ws(bytes, after_value);
        if bytes.get(i) == Some(&b',') {
            i = skip_ws(bytes, i + 1);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_verb_and_raw_id_in_any_member_order() {
        let p = peek(r#"{"id":7,"verb":"evaluate","model":"m01"}"#);
        assert_eq!(p.verb, Some("evaluate"));
        assert_eq!(p.id_raw, "7");
        let p = peek(r#"{"model":"m01","verb":"ping","id":"abc"}"#);
        assert_eq!(p.verb, Some("ping"));
        assert_eq!(p.id_raw, r#""abc""#);
    }

    #[test]
    fn id_may_be_any_json_value_and_is_kept_verbatim() {
        assert_eq!(
            peek(r#"{"id":[1,{"k":"}"}],"verb":"x"}"#).id_raw,
            r#"[1,{"k":"}"}]"#
        );
        assert_eq!(
            peek(r#"{"id":{"a":[1,2]},"verb":"x"}"#).id_raw,
            r#"{"a":[1,2]}"#
        );
        assert_eq!(peek(r#"{"id":-12.5e3,"verb":"x"}"#).id_raw, "-12.5e3");
        assert_eq!(peek(r#"{"id":true}"#).id_raw, "true");
        assert_eq!(peek(r#"{"verb":"x"}"#).id_raw, "null");
    }

    #[test]
    fn nested_verb_like_members_are_not_mistaken_for_the_verb() {
        let p = peek(r#"{"body":{"verb":"inner","id":99},"verb":"outer","id":1}"#);
        assert_eq!(p.verb, Some("outer"));
        assert_eq!(p.id_raw, "1");
    }

    #[test]
    fn strings_with_braces_and_escapes_do_not_derail_the_scan() {
        let p = peek(r#"{"note":"a \" b } { ] [","verb":"ping","id":3}"#);
        assert_eq!(p.verb, Some("ping"));
        assert_eq!(p.id_raw, "3");
    }

    #[test]
    fn malformed_lines_degrade_to_no_verb_and_null_id() {
        for line in ["", "not json", "[1,2,3]", r#"{"verb""#, r#"{"verb":}"#, "{"] {
            let p = peek(line);
            assert_eq!(p.verb, None, "{line:?}");
            assert_eq!(p.id_raw, "null", "{line:?}");
        }
        // A truncated object still yields what was scanned before the
        // damage.
        let p = peek(r#"{"verb":"evaluate","model"#);
        assert_eq!(p.verb, Some("evaluate"));
    }

    #[test]
    fn whitespace_tolerant() {
        let p = peek("  { \"id\" : 42 , \"verb\" : \"metrics\" }  ");
        assert_eq!(p.verb, Some("metrics"));
        assert_eq!(p.id_raw, "42");
    }
}
