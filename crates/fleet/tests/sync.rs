//! Two-replica registry reconciliation over real loopback sockets:
//! artifacts of every kind ship across, each transfer is re-hashed and
//! re-gated on the receiver, and a converged pair has *byte-identical*
//! manifests.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use hmdiv_fleet::sync;
use hmdiv_serve::{json, Client, Json, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("server start")
}

fn load_paper_model(client: &mut Client) -> String {
    let classes = (
        "classes".to_owned(),
        json::parse(
            r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
        )
        .expect("static JSON"),
    );
    let receipt = client.request("load", vec![classes]).expect("load");
    receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned()
}

fn load_cohort(client: &mut Client) -> String {
    let members = (
        "members".to_owned(),
        json::parse(
            r#"[{"name":"r1","weight":2,
                 "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                            "difficult":{"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}},
                {"name":"r2","weight":1,
                 "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.10,"p_hf_given_mf":0.12},
                            "difficult":{"p_mf":0.41,"p_hf_given_ms":0.30,"p_hf_given_mf":0.55}}}]"#,
        )
        .expect("static JSON"),
    );
    let receipt = client
        .request("load_cohort", vec![members])
        .expect("load_cohort");
    receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned()
}

/// The raw single-line `manifest` reply, byte for byte.
fn raw_manifest_line(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"id\":1,\"verb\":\"manifest\"}\n")
        .expect("write");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read");
    line
}

#[test]
fn reconcile_converges_two_replicas_and_manifests_match_byte_for_byte() {
    let source_server = start();
    let dest_server = start();
    let mut source = Client::connect(source_server.addr()).expect("connect source");
    let mut dest = Client::connect(dest_server.addr()).expect("connect dest");

    let model_id = load_paper_model(&mut source);
    let cohort_id = load_cohort(&mut source);

    // First reconciliation ships everything the destination lacks.
    let report = sync::reconcile(&mut source, &mut dest).expect("reconcile");
    assert_eq!(report.source_total, 2);
    assert_eq!(report.already_present, 0);
    {
        let mut shipped = report.shipped.clone();
        shipped.sort();
        let mut expected = vec![model_id.clone(), cohort_id.clone()];
        expected.sort();
        assert_eq!(shipped, expected);
    }

    // Converged: the parsed manifests agree...
    let source_rows = sync::manifest_rows(&mut source).expect("source manifest");
    let dest_rows = sync::manifest_rows(&mut dest).expect("dest manifest");
    assert_eq!(source_rows, dest_rows);
    assert!(sync::diff_manifests(&source_rows, &dest_rows).is_empty());

    // ...and the raw wire replies are byte-identical, which only holds
    // because ids are content hashes and the listing is id-ordered.
    assert_eq!(
        raw_manifest_line(source_server.addr()),
        raw_manifest_line(dest_server.addr())
    );

    // A second reconciliation is a no-op: content addressing makes the
    // transfer idempotent.
    let again = sync::reconcile(&mut source, &mut dest).expect("reconcile again");
    assert!(again.shipped.is_empty());
    assert_eq!(again.already_present, 2);
    assert_eq!(again.source_total, 2);

    // The shipped model evaluates on the destination under the same id —
    // the artifact really landed, not just the listing.
    let result = dest
        .request(
            "evaluate",
            vec![
                ("model".to_owned(), Json::str(model_id)),
                (
                    "profile".to_owned(),
                    json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
                ),
            ],
        )
        .expect("evaluate on destination");
    let failure = result
        .get("failure")
        .and_then(Json::as_f64)
        .expect("failure field");
    assert!((failure - 0.18902).abs() < 1e-9);

    source_server.shutdown();
    dest_server.shutdown();
}
