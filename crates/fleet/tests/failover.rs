//! The fleet's headline guarantee, end to end over real sockets: kill
//! one of three replicas mid-pipeline and the survivors keep answering
//! **bit-identically**; revive the replica and it is re-admitted only
//! after its registry syncs back, leaving all three manifests
//! byte-identical.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hmdiv_fleet::{Router, RouterConfig};
use hmdiv_serve::{json, Client, Json, ServeError, Server, ServerConfig};

/// Replica config: single-threaded, ephemeral port unless pinned.
fn replica_config(addr: &str) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        threads: 1,
        poller_threads: 1,
        ..ServerConfig::default()
    }
}

/// Router config tuned for test time: fast probes, quick ejection.
fn router_config(backends: Vec<SocketAddr>) -> RouterConfig {
    RouterConfig {
        backends,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        eject_after: 2,
        readmit_after: 1,
        ..RouterConfig::default()
    }
}

fn field_profile() -> (String, Json) {
    (
        "profile".to_owned(),
        json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
    )
}

fn evaluate_failure(client: &mut Client, model_id: &str) -> Result<f64, ServeError> {
    let result = client.request(
        "evaluate",
        vec![("model".to_owned(), Json::str(model_id)), field_profile()],
    )?;
    result
        .get("failure")
        .and_then(Json::as_f64)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "evaluate reply without failure field".to_owned(),
        })
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The raw single-line `manifest` reply from a replica, byte for byte.
fn raw_manifest_line(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"id\":1,\"verb\":\"manifest\"}\n")
        .expect("write");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read");
    line
}

#[test]
fn killing_one_of_three_replicas_keeps_answers_bit_identical() {
    // The paper's model evaluated directly in process: the reference
    // bits every fleet answer must reproduce exactly.
    let model = hmdiv_core::paper::example_model().expect("paper model");
    let field = hmdiv_core::paper::field_profile().expect("paper profile");
    let expected = model
        .system_failure(&field)
        .expect("direct evaluation")
        .value();

    let mut replicas: Vec<Option<Server>> = (0..3)
        .map(|_| Some(Server::start(replica_config("127.0.0.1:0")).expect("replica start")))
        .collect();
    let backends: Vec<SocketAddr> = replicas
        .iter()
        .map(|r| r.as_ref().expect("just started").addr())
        .collect();
    let router = Router::start(router_config(backends.clone())).expect("router start");

    // Load the paper model through the router: the verb broadcasts, so
    // every replica admits it under the same content id.
    let mut loader = Client::connect(router.addr()).expect("connect router");
    let receipt = loader
        .request(
            "load",
            vec![(
                "classes".to_owned(),
                json::parse(
                    r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                        "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
                )
                .expect("static JSON"),
            )],
        )
        .expect("broadcast load");
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned();
    for &addr in &backends {
        let mut direct = Client::connect(addr).expect("connect replica");
        let got = evaluate_failure(&mut direct, &model_id).expect("replica evaluates");
        assert_eq!(got.to_bits(), expected.to_bits(), "replica {addr} diverged");
    }

    // Baseline through the router: fresh connections land on different
    // ring keys, so this exercises more than one backend.
    for _ in 0..12 {
        let mut client = Client::connect(router.addr()).expect("connect router");
        let got = evaluate_failure(&mut client, &model_id).expect("routed evaluate");
        assert_eq!(got.to_bits(), expected.to_bits());
    }

    // Kill replica 1 mid-pipeline. Until the prober ejects it, a fresh
    // connection that hashes onto it gets the *typed* failover error —
    // never a hang, never a garbled reply; everything that succeeds is
    // still bit-identical.
    let killed_addr = backends[1];
    replicas[1].take().expect("replica 1 running").shutdown();
    let mut unavailable = 0_u32;
    for _ in 0..30 {
        let mut client = Client::connect(router.addr()).expect("connect router");
        match evaluate_failure(&mut client, &model_id) {
            Ok(got) => assert_eq!(got.to_bits(), expected.to_bits()),
            Err(ServeError::Remote { code, .. }) => {
                assert_eq!(code, "backend_unavailable");
                unavailable += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // The error is transitional: once ejected, the dead replica leaves
    // the ring and every request re-hashes to the survivors.
    wait_for("ejection of replica 1", Duration::from_secs(10), || {
        !router.fleet().is_healthy(1)
    });
    assert!(router.fleet().is_healthy(0));
    assert!(router.fleet().is_healthy(2));
    for _ in 0..12 {
        let mut client = Client::connect(router.addr()).expect("connect router");
        let got = evaluate_failure(&mut client, &model_id).expect("survivor evaluate");
        assert_eq!(got.to_bits(), expected.to_bits());
    }
    // (Whether any request raced into the kill window is timing-luck;
    // the assertion above is that *if* one did, it failed typed.)
    let _ = unavailable;

    // Revive the replica on its old address with an EMPTY registry. The
    // prober re-admits it only after syncing the registry back from a
    // healthy peer, so once it is healthy it must already hold the model.
    let revived = Server::start(replica_config(&killed_addr.to_string())).expect("revive");
    assert_eq!(revived.addr(), killed_addr);
    replicas[1] = Some(revived);
    wait_for("re-admission of replica 1", Duration::from_secs(10), || {
        router.fleet().is_healthy(1)
    });

    // The synced-back replica's manifest is byte-identical to its peers'.
    let reference = raw_manifest_line(backends[0]);
    assert!(reference.contains(&model_id));
    for &addr in &backends[1..] {
        assert_eq!(raw_manifest_line(addr), reference, "manifest of {addr}");
    }

    // And the revived replica answers with the same bits as everyone.
    let mut direct = Client::connect(killed_addr).expect("connect revived");
    let got = evaluate_failure(&mut direct, &model_id).expect("revived evaluates");
    assert_eq!(got.to_bits(), expected.to_bits());
    for _ in 0..12 {
        let mut client = Client::connect(router.addr()).expect("connect router");
        let got = evaluate_failure(&mut client, &model_id).expect("routed evaluate");
        assert_eq!(got.to_bits(), expected.to_bits());
    }

    router.shutdown();
    for server in replicas.into_iter().flatten() {
        server.shutdown();
    }
}

#[test]
fn shutdown_verb_through_the_router_drains_the_whole_fleet() {
    let replicas: Vec<Server> = (0..2)
        .map(|_| Server::start(replica_config("127.0.0.1:0")).expect("replica start"))
        .collect();
    let backends: Vec<SocketAddr> = replicas.iter().map(Server::addr).collect();
    let router = Router::start(router_config(backends)).expect("router start");

    let mut client = Client::connect(router.addr()).expect("connect router");
    let reply = client.request("shutdown", Vec::new()).expect("shutdown");
    assert_eq!(reply.get("draining").and_then(Json::as_bool), Some(true));

    // Both replicas and the router drain without being asked again.
    for server in replicas {
        server.join();
    }
    router.join();
}
