//! Request-lifecycle tracing: trace ids, per-stage span timings with
//! parent links, and a fixed-capacity **flight recorder** of completed
//! request records.
//!
//! The paper's assessment argument attributes outcomes to stages of a
//! human–machine pipeline; this module gives the serving stack the same
//! per-case attribution. A request is minted a [`TraceId`] at admission
//! (or carries a client-supplied one on the wire), every pipeline stage
//! stamps its start offset and duration into a shared [`StageSet`], and
//! the completed [`RequestRecord`] — verb, model id, batch size, queue
//! depth at admission, per-stage nanoseconds, and outcome — lands in a
//! [`FlightRecorder`]: a bounded ring that keeps the most recent records
//! for postmortem drains (the serve `trace` verb) and automatic dumps on
//! shed events.
//!
//! **Recording never blocks recording.** Each ring slot is guarded by a
//! `try_lock`; a writer that loses the race drops its record and bumps a
//! `contended` counter instead of waiting. Writers therefore never stall
//! the request path, and the ring's memory is fixed at construction.
//!
//! Tracing is a *pure observer*: it reads the monotonic clock and writes
//! side records, but never touches evaluation inputs — traced and
//! untraced runs produce bit-identical results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A process-unique request trace id.
///
/// Ids mint from a process-local counter starting at 1 (0 is reserved as
/// "absent"); clients may instead supply their own on the wire, carried
/// verbatim. Rendered as 16-digit hex, same convention as content hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// The mint counter behind [`TraceId::mint`].
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// Mints the next process-unique id.
    #[must_use]
    pub fn mint() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Renders as the wire form: 16 hex digits.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form (any valid hex u64, not only zero-padded).
    #[must_use]
    pub fn parse(text: &str) -> Option<TraceId> {
        u64::from_str_radix(text, 16).ok().map(TraceId)
    }
}

/// The canonical request-pipeline stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Socket bytes arriving until the request line framed.
    Read = 0,
    /// Envelope + body parsing and verb routing.
    Parse = 1,
    /// Waiting in the bounded executor queue.
    Queue = 2,
    /// Batch formation: grouping the flush into dense calls.
    Batch = 3,
    /// The dense evaluation (or inline verb work).
    Eval = 4,
    /// Rendering the response line.
    Serialize = 5,
    /// Writing and flushing the socket.
    Write = 6,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Read,
        Stage::Parse,
        Stage::Queue,
        Stage::Batch,
        Stage::Eval,
        Stage::Serialize,
        Stage::Write,
    ];

    /// The stage's stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Batch => "batch",
            Stage::Eval => "eval",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }
}

/// How a traced request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The request succeeded.
    Ok,
    /// Shed by the bounded queue (`overloaded` on the wire).
    Overloaded,
    /// The deadline expired before evaluation (`deadline_exceeded`).
    DeadlineExceeded,
    /// Refused by the static-analysis admission gate; carries the stable
    /// `HM0xx` diagnostic code.
    Rejected(String),
    /// Any other error, carrying its stable wire code.
    Error(String),
}

impl TraceOutcome {
    /// The outcome's stable label: `ok`, `overloaded`,
    /// `deadline_exceeded`, the `HM0xx` code, or the wire error code.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Overloaded => "overloaded",
            TraceOutcome::DeadlineExceeded => "deadline_exceeded",
            TraceOutcome::Rejected(code) | TraceOutcome::Error(code) => code,
        }
    }

    /// Whether this outcome is a shed or deadline event — the triggers
    /// for an automatic flight-recorder dump.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            TraceOutcome::Overloaded | TraceOutcome::DeadlineExceeded
        )
    }
}

/// Packed (start offset, duration) cell; `u64::MAX` start means "never
/// stamped". Offsets are nanoseconds from the request's receipt instant,
/// so every stamp shares one monotonic origin.
struct StageCell {
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

/// Shared per-request stage stamps, safe to fill from several threads
/// (the connection thread owns read/parse/serialize/write; the batch
/// executor fills queue/batch/eval).
pub struct StageSet {
    origin: Instant,
    cells: [StageCell; 7],
    batch_size: AtomicU64,
    queue_depth: AtomicU64,
}

impl std::fmt::Debug for StageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSet")
            .field("stages", &self.finish())
            .finish_non_exhaustive()
    }
}

/// Nanoseconds between two instants, saturating into `u64`.
fn ns_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

impl StageSet {
    /// A fresh set whose stage offsets are measured from `origin` (the
    /// instant the request was received).
    #[must_use]
    pub fn new(origin: Instant) -> StageSet {
        StageSet {
            origin,
            cells: std::array::from_fn(|_| StageCell {
                start_ns: AtomicU64::new(u64::MAX),
                dur_ns: AtomicU64::new(0),
            }),
            batch_size: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
        }
    }

    /// Stamps `stage` as spanning `start..end` on the shared monotonic
    /// origin. Last stamp wins.
    pub fn stamp(&self, stage: Stage, start: Instant, end: Instant) {
        let cell = &self.cells[stage as usize];
        cell.start_ns
            .store(ns_between(self.origin, start), Ordering::Relaxed);
        cell.dur_ns.store(ns_between(start, end), Ordering::Relaxed);
    }

    /// Stamps `stage` as spanning `start` until now.
    pub fn stamp_since(&self, stage: Stage, start: Instant) {
        self.stamp(stage, start, Instant::now());
    }

    /// Records the dense-batch size this request was evaluated in.
    pub fn set_batch_size(&self, size: u64) {
        self.batch_size.store(size, Ordering::Relaxed);
    }

    /// Records the executor queue depth observed at admission.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The request's receipt instant (the span origin).
    #[must_use]
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Reads the stamped spans out, in pipeline order. Unstamped stages
    /// yield `None`.
    #[must_use]
    pub fn finish(&self) -> [Option<StageSpan>; 7] {
        std::array::from_fn(|i| {
            let start_ns = self.cells[i].start_ns.load(Ordering::Relaxed);
            if start_ns == u64::MAX {
                return None;
            }
            Some(StageSpan {
                stage: Stage::ALL[i],
                start_ns,
                dur_ns: self.cells[i].dur_ns.load(Ordering::Relaxed),
            })
        })
    }

    /// The recorded batch size (0 until stamped).
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size.load(Ordering::Relaxed)
    }

    /// The recorded admission queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }
}

/// One stamped stage: its start offset from request receipt and its
/// duration, both in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage.
    pub stage: Stage,
    /// Nanoseconds from request receipt to stage start.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// A parented span row in a trace tree; see [`RequestRecord::spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span id within the trace (root is 0).
    pub id: u32,
    /// Parent span id; `None` for the root.
    pub parent: Option<u32>,
    /// The span name (verb for the root, stage name for children).
    pub name: String,
    /// Nanoseconds from request receipt to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One completed request, as the flight recorder keeps it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request's trace id (minted or client-supplied).
    pub trace_id: TraceId,
    /// The verb served.
    pub verb: String,
    /// The content-addressed model id the request named, if any.
    pub model: Option<String>,
    /// Dense-batch size the evaluation ran in (1 for inline work, 0 when
    /// the request never reached evaluation).
    pub batch_size: u64,
    /// Executor queue depth observed at admission.
    pub queue_depth: u64,
    /// Stamped stage spans, pipeline order; unstamped stages are `None`.
    pub stages: [Option<StageSpan>; 7],
    /// How the request ended.
    pub outcome: TraceOutcome,
}

impl RequestRecord {
    /// Total traced nanoseconds: the extent from receipt to the end of
    /// the last stamped stage.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stages
            .iter()
            .flatten()
            .map(|s| s.start_ns.saturating_add(s.dur_ns))
            .max()
            .unwrap_or(0)
    }

    /// The span tree: a root span named after the verb covering the whole
    /// request, with one child per stamped stage linked to it by parent
    /// id — the shape tracing UIs and the serve `trace` verb render.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanNode> {
        let mut out = Vec::with_capacity(8);
        out.push(SpanNode {
            id: 0,
            parent: None,
            name: self.verb.clone(),
            start_ns: 0,
            dur_ns: self.total_ns(),
        });
        for (next, span) in (1u32..).zip(self.stages.iter().flatten()) {
            out.push(SpanNode {
                id: next,
                parent: Some(0),
                name: span.stage.name().to_owned(),
                start_ns: span.start_ns,
                dur_ns: span.dur_ns,
            });
        }
        out
    }
}

/// A sequenced ring slot.
struct Slot {
    seq: u64,
    record: RequestRecord,
}

/// A fixed-capacity ring of the most recent [`RequestRecord`]s.
///
/// Writers claim a global sequence number with one `fetch_add` and write
/// into `seq % capacity` under a per-slot `try_lock`, so recording never
/// blocks: a writer that collides with a drain (or another writer on the
/// same slot) drops its record and bumps [`contended`](Self::contended)
/// instead of waiting. Memory is fixed at construction.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Slot>>>,
    cursor: AtomicU64,
    recorded: AtomicU64,
    contended: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent records
    /// (`capacity` is clamped to at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever accepted (including ones since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records dropped because their slot was contended at write time.
    #[must_use]
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest once the ring is full.
    /// Never blocks: a contended slot drops the record instead.
    pub fn record(&self, record: RequestRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let idx = (seq % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => {
                *slot = Some(Slot { seq, record });
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copies the current contents without consuming them, oldest first.
    #[must_use]
    pub fn peek(&self) -> Vec<RequestRecord> {
        self.collect(false)
    }

    /// Removes and returns the current contents, oldest first.
    pub fn drain(&self) -> Vec<RequestRecord> {
        self.collect(true)
    }

    fn collect(&self, take: bool) -> Vec<RequestRecord> {
        let mut rows: Vec<Slot> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let mut guard = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if take {
                if let Some(s) = guard.take() {
                    rows.push(s);
                }
            } else if let Some(s) = guard.as_ref() {
                rows.push(Slot {
                    seq: s.seq,
                    record: s.record.clone(),
                });
            }
        }
        rows.sort_by_key(|s| s.seq);
        rows.into_iter().map(|s| s.record).collect()
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .is_some()
            })
            .count()
    }

    /// Whether the ring holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record(n: u64) -> RequestRecord {
        RequestRecord {
            trace_id: TraceId(n),
            verb: "evaluate".into(),
            model: Some("m0".into()),
            batch_size: 1,
            queue_depth: 0,
            stages: [None; 7],
            outcome: TraceOutcome::Ok,
        }
    }

    #[test]
    fn trace_ids_mint_monotonically_and_round_trip_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert!(b.0 > a.0);
        assert_eq!(TraceId::parse(&a.to_hex()), Some(a));
        assert_eq!(a.to_hex().len(), 16);
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse("ff"), Some(TraceId(255)));
    }

    #[test]
    fn stage_set_stamps_offsets_from_one_origin() {
        let origin = Instant::now();
        let set = StageSet::new(origin);
        let start = origin + Duration::from_micros(5);
        let end = start + Duration::from_micros(10);
        set.stamp(Stage::Eval, start, end);
        set.set_batch_size(4);
        set.set_queue_depth(2);
        let spans = set.finish();
        assert!(spans[Stage::Read as usize].is_none());
        let eval = spans[Stage::Eval as usize].expect("stamped");
        assert_eq!(eval.stage, Stage::Eval);
        assert_eq!(eval.start_ns, 5_000);
        assert_eq!(eval.dur_ns, 10_000);
        assert_eq!(set.batch_size(), 4);
        assert_eq!(set.queue_depth(), 2);
        // Stamps from before the origin saturate to zero, not underflow.
        set.stamp(Stage::Read, origin - Duration::from_secs(1), origin);
        assert_eq!(set.finish()[0].unwrap().start_ns, 0);
    }

    #[test]
    fn span_tree_links_children_to_the_root() {
        let origin = Instant::now();
        let set = StageSet::new(origin);
        set.stamp(
            Stage::Parse,
            origin + Duration::from_nanos(100),
            origin + Duration::from_nanos(300),
        );
        set.stamp(
            Stage::Eval,
            origin + Duration::from_nanos(400),
            origin + Duration::from_nanos(900),
        );
        let rec = RequestRecord {
            stages: set.finish(),
            ..record(1)
        };
        assert_eq!(rec.total_ns(), 900);
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].id, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].name, "evaluate");
        assert_eq!(spans[0].dur_ns, 900);
        assert!(spans[1..].iter().all(|s| s.parent == Some(0)));
        assert_eq!(spans[1].name, "parse");
        assert_eq!(spans[2].name, "eval");
    }

    #[test]
    fn ring_keeps_the_most_recent_records_in_order() {
        let ring = FlightRecorder::with_capacity(4);
        assert!(ring.is_empty());
        for n in 0..10 {
            ring.record(record(n));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.recorded(), 10);
        let peeked: Vec<u64> = ring.peek().iter().map(|r| r.trace_id.0).collect();
        assert_eq!(peeked, [6, 7, 8, 9], "oldest first, newest kept");
        // Peek does not consume; drain does.
        let drained: Vec<u64> = ring.drain().iter().map(|r| r.trace_id.0).collect();
        assert_eq!(drained, [6, 7, 8, 9]);
        assert!(ring.is_empty());
        assert_eq!(ring.drain().len(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = FlightRecorder::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(record(1));
        ring.record(record(2));
        assert_eq!(ring.peek().len(), 1);
        assert_eq!(ring.peek()[0].trace_id, TraceId(2));
    }

    #[test]
    fn concurrent_recording_loses_nothing_uncontended() {
        let ring = std::sync::Arc::new(FlightRecorder::with_capacity(1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.record(record(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Capacity exceeds writes, so contention is the only loss source.
        assert_eq!(ring.recorded() + ring.contended(), 400);
        assert_eq!(ring.len() as u64, ring.recorded());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(TraceOutcome::Ok.label(), "ok");
        assert_eq!(TraceOutcome::Overloaded.label(), "overloaded");
        assert_eq!(TraceOutcome::DeadlineExceeded.label(), "deadline_exceeded");
        assert_eq!(TraceOutcome::Rejected("HM030".into()).label(), "HM030");
        assert_eq!(
            TraceOutcome::Error("bad_request".into()).label(),
            "bad_request"
        );
        assert!(TraceOutcome::Overloaded.is_shed());
        assert!(TraceOutcome::DeadlineExceeded.is_shed());
        assert!(!TraceOutcome::Ok.is_shed());
        assert!(!TraceOutcome::Rejected("HM030".into()).is_shed());
    }
}
