//! The thread-safe metric registry.
//!
//! Three metric families, all named by dotted strings (`sim.engine.cases`):
//!
//! * **counters** — monotonic `u64` sums ([`Registry::counter_add`]);
//! * **gauges** — last-written `f64` values ([`Registry::gauge_set`]);
//! * **histograms** — fixed-bucket duration histograms over nanoseconds
//!   ([`Registry::observe_ns`]), with exponential decade buckets from 1 µs
//!   to 10 s plus an implicit overflow bucket.
//!
//! The registration maps are guarded by an [`RwLock`] taken only to *find or
//! create* a metric cell; the cells themselves are atomics, so concurrent
//! recording to existing metrics takes the read lock and never blocks other
//! recorders. Reading a [`Snapshot`] is the only consumer-side operation and
//! tolerates being concurrent with writers (relaxed atomic reads — counts
//! may trail in-flight increments by a few, which is fine for telemetry).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Upper bucket bounds in nanoseconds for duration histograms: decades from
/// 1 µs to 10 s. Observations above the last bound land in the implicit
/// overflow bucket.
pub const DURATION_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket histogram cell.
struct Histogram {
    /// `DURATION_BOUNDS_NS.len() + 1` buckets; the last is the overflow.
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: (0..=DURATION_BOUNDS_NS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, nanos: u64) {
        let idx = DURATION_BOUNDS_NS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(DURATION_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A thread-safe collection of named counters, gauges and histograms.
///
/// [`crate::global`] holds the process-wide instance; tests and embedders
/// can construct private ones.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Finds or creates the cell for `name` in `map`.
    fn cell<T>(
        map: &RwLock<BTreeMap<String, Arc<T>>>,
        name: &str,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(cell) = map.read().expect("metric map poisoned").get(name) {
            return Arc::clone(cell);
        }
        let mut map = map.write().expect("metric map poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(make())),
        )
    }

    /// Adds `by` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, by: u64) {
        Self::cell(&self.counters, name, || AtomicU64::new(0)).fetch_add(by, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name, || AtomicU64::new(0))
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records one duration observation into the histogram `name`.
    pub fn observe_ns(&self, name: &str, nanos: u64) {
        Self::cell(&self.histograms, name, Histogram::new).observe(nanos);
    }

    /// An immutable, ordered snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds_ns: DURATION_BOUNDS_NS.to_vec(),
                        counts: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum_ns: h.sum_ns.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Removes every metric.
    pub fn reset(&self) {
        self.counters.write().expect("metric map poisoned").clear();
        self.gauges.write().expect("metric map poisoned").clear();
        self.histograms
            .write()
            .expect("metric map poisoned")
            .clear();
    }

    /// Whether no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters
            .read()
            .expect("metric map poisoned")
            .is_empty()
            && self.gauges.read().expect("metric map poisoned").is_empty()
            && self
                .histograms
                .read()
                .expect("metric map poisoned")
                .is_empty()
    }
}

/// A point-in-time copy of a [`Registry`]'s contents, with deterministic
/// (sorted) iteration order — the input to the exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        Snapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds in nanoseconds (`counts` has one extra overflow
    /// entry).
    pub bounds_ns: Vec<u64>,
    /// Per-bucket observation counts, overflow last.
    pub counts: Vec<u64>,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    /// Total number of observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::new();
        reg.counter_add("b.second", 2);
        reg.counter_add("a.first", 1);
        reg.counter_add("b.second", 3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(snap.counters["b.second"], 5);
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = Registry::new();
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", -2.25);
        assert_eq!(reg.snapshot().gauges["g"], -2.25);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let reg = Registry::new();
        reg.observe_ns("h", 500); // <= 1µs bucket
        reg.observe_ns("h", 5_000_000); // <= 10ms bucket
        reg.observe_ns("h", 100_000_000_000); // overflow
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 500 + 5_000_000 + 100_000_000_000);
        assert_eq!(h.counts.len(), DURATION_BOUNDS_NS.len() + 1);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    fn boundary_observation_lands_in_lower_bucket() {
        let reg = Registry::new();
        reg.observe_ns("h", 1_000);
        assert_eq!(reg.snapshot().histograms["h"].counts[0], 1);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 1.0);
        reg.observe_ns("h", 1);
        assert!(!reg.is_empty());
        reg.reset();
        assert!(reg.is_empty());
        assert_eq!(reg.snapshot(), Snapshot::empty());
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.counter_add("shared", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counters["shared"], 4000);
    }
}
