//! The thread-safe metric registry.
//!
//! Three metric families, all named by dotted strings (`sim.engine.cases`):
//!
//! * **counters** — monotonic `u64` sums ([`Registry::counter_add`]);
//! * **gauges** — last-written `f64` values ([`Registry::gauge_set`]);
//! * **histograms** — fixed-bucket histograms: duration histograms over
//!   nanoseconds ([`Registry::observe_ns`]) with exponential decade buckets
//!   from 1 µs to 10 s plus an implicit overflow bucket, and count
//!   histograms ([`Registry::observe_count`]) with power-of-two buckets
//!   for sizes (batch sizes, queue depths). Snapshots estimate
//!   p50/p95/p99 by linear interpolation inside the landing bucket
//!   ([`HistogramSnapshot::quantile`]).
//!
//! The registration maps are guarded by an [`RwLock`] taken only to *find or
//! create* a metric cell; the cells themselves are atomics, so concurrent
//! recording to existing metrics takes the read lock and never blocks other
//! recorders. Reading a [`Snapshot`] is the only consumer-side operation and
//! tolerates being concurrent with writers (relaxed atomic reads — counts
//! may trail in-flight increments by a few, which is fine for telemetry).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Upper bucket bounds in nanoseconds for duration histograms: decades from
/// 1 µs to 10 s. Observations above the last bound land in the implicit
/// overflow bucket.
pub const DURATION_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Upper bucket bounds for count histograms (batch sizes, queue depths):
/// powers of two from 1 to 8192, plus the implicit overflow bucket.
pub const COUNT_BOUNDS: [u64; 14] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
];

/// What a histogram's observations measure — which fixed bucket ladder it
/// uses and how exporters label it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramUnit {
    /// Nanosecond durations on [`DURATION_BOUNDS_NS`].
    Nanos,
    /// Dimensionless counts on [`COUNT_BOUNDS`].
    Count,
}

impl HistogramUnit {
    /// The unit's stable label, as the JSON exporter renders it.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HistogramUnit::Nanos => "ns",
            HistogramUnit::Count => "count",
        }
    }

    /// The bucket ladder this unit observes on.
    #[must_use]
    pub fn bounds(self) -> &'static [u64] {
        match self {
            HistogramUnit::Nanos => &DURATION_BOUNDS_NS,
            HistogramUnit::Count => &COUNT_BOUNDS,
        }
    }
}

/// A fixed-bucket histogram cell.
struct Histogram {
    /// Which bucket ladder (fixed at creation by the first observer).
    unit: HistogramUnit,
    /// `unit.bounds().len() + 1` buckets; the last is the overflow.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(unit: HistogramUnit) -> Self {
        Histogram {
            unit,
            buckets: (0..=unit.bounds().len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let bounds = self.unit.bounds();
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A thread-safe collection of named counters, gauges and histograms.
///
/// [`crate::global`] holds the process-wide instance; tests and embedders
/// can construct private ones.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Finds or creates the cell for `name` in `map`.
    fn cell<T>(
        map: &RwLock<BTreeMap<String, Arc<T>>>,
        name: &str,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(cell) = map.read().expect("metric map poisoned").get(name) {
            return Arc::clone(cell);
        }
        let mut map = map.write().expect("metric map poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(make())),
        )
    }

    /// Adds `by` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, by: u64) {
        Self::cell(&self.counters, name, || AtomicU64::new(0)).fetch_add(by, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name, || AtomicU64::new(0))
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records one duration observation into the histogram `name`.
    pub fn observe_ns(&self, name: &str, nanos: u64) {
        Self::cell(&self.histograms, name, || {
            Histogram::new(HistogramUnit::Nanos)
        })
        .observe(nanos);
    }

    /// Records one count observation (a batch size, a queue depth) into
    /// the histogram `name`, on the power-of-two [`COUNT_BOUNDS`] ladder.
    pub fn observe_count(&self, name: &str, value: u64) {
        Self::cell(&self.histograms, name, || {
            Histogram::new(HistogramUnit::Count)
        })
        .observe(value);
    }

    /// An immutable, ordered snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metric map poisoned")
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        unit: h.unit,
                        bounds: h.unit.bounds().to_vec(),
                        counts: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Removes every metric.
    pub fn reset(&self) {
        self.counters.write().expect("metric map poisoned").clear();
        self.gauges.write().expect("metric map poisoned").clear();
        self.histograms
            .write()
            .expect("metric map poisoned")
            .clear();
    }

    /// Whether no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters
            .read()
            .expect("metric map poisoned")
            .is_empty()
            && self.gauges.read().expect("metric map poisoned").is_empty()
            && self
                .histograms
                .read()
                .expect("metric map poisoned")
                .is_empty()
    }
}

/// A point-in-time copy of a [`Registry`]'s contents, with deterministic
/// (sorted) iteration order — the input to the exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        Snapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// What the observations measure (fixes the bucket ladder and the
    /// exporters' labelling).
    pub unit: HistogramUnit,
    /// Upper bucket bounds in the histogram's unit (`counts` has one
    /// extra overflow entry).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts, overflow last.
    pub counts: Vec<u64>,
    /// Sum of all observations in the histogram's unit.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts
    /// by linear interpolation inside the landing bucket, the standard
    /// fixed-bucket estimator (what Prometheus' `histogram_quantile`
    /// computes server-side). Observations in the overflow bucket clamp
    /// to the highest finite bound; an empty histogram yields 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            let below = cumulative;
            cumulative += bucket_count;
            #[allow(clippy::cast_precision_loss)]
            if bucket_count > 0 && cumulative as f64 >= rank {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: no finite upper edge to
                    // interpolate against; clamp to the last bound.
                    return *self.bounds.last().expect("bounds nonempty") as f64;
                };
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                #[allow(clippy::cast_precision_loss)]
                let fraction = ((rank - below as f64) / bucket_count as f64).clamp(0.0, 1.0);
                return lower as f64 + fraction * (upper - lower) as f64;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let last = *self.bounds.last().expect("bounds nonempty") as f64;
        last
    }

    /// The estimated median.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The estimated 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The estimated 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::new();
        reg.counter_add("b.second", 2);
        reg.counter_add("a.first", 1);
        reg.counter_add("b.second", 3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(snap.counters["b.second"], 5);
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = Registry::new();
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", -2.25);
        assert_eq!(reg.snapshot().gauges["g"], -2.25);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let reg = Registry::new();
        reg.observe_ns("h", 500); // <= 1µs bucket
        reg.observe_ns("h", 5_000_000); // <= 10ms bucket
        reg.observe_ns("h", 100_000_000_000); // overflow
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.unit, HistogramUnit::Nanos);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 500 + 5_000_000 + 100_000_000_000);
        assert_eq!(h.counts.len(), DURATION_BOUNDS_NS.len() + 1);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    fn boundary_observation_lands_in_lower_bucket() {
        let reg = Registry::new();
        reg.observe_ns("h", 1_000);
        assert_eq!(reg.snapshot().histograms["h"].counts[0], 1);
    }

    #[test]
    fn count_histograms_use_the_power_of_two_ladder() {
        let reg = Registry::new();
        reg.observe_count("batch", 1);
        reg.observe_count("batch", 7);
        reg.observe_count("batch", 9_000);
        let snap = reg.snapshot();
        let h = &snap.histograms["batch"];
        assert_eq!(h.unit, HistogramUnit::Count);
        assert_eq!(h.bounds, COUNT_BOUNDS.to_vec());
        assert_eq!(h.counts.len(), COUNT_BOUNDS.len() + 1);
        assert_eq!(h.counts[0], 1); // <= 1
        assert_eq!(h.counts[3], 1); // <= 8
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.sum, 1 + 7 + 9_000);
    }

    #[test]
    fn quantiles_interpolate_within_the_landing_bucket() {
        let reg = Registry::new();
        // 100 observations spread evenly in the (1µs, 10µs] bucket.
        for _ in 0..100 {
            reg.observe_ns("h", 5_000);
        }
        let h = reg.snapshot().histograms["h"].clone();
        // All mass in bucket (1000, 10000]: p50 interpolates to halfway.
        assert_eq!(h.p50(), 1_000.0 + 0.5 * 9_000.0);
        assert_eq!(h.p99(), 1_000.0 + 0.99 * 9_000.0);
        // Two-bucket split: 50 fast, 50 slow — p50 is the fast bucket's
        // upper edge, p95 interpolates 90% into the slow bucket.
        let reg = Registry::new();
        for _ in 0..50 {
            reg.observe_ns("h", 500);
        }
        for _ in 0..50 {
            reg.observe_ns("h", 500_000);
        }
        let h = reg.snapshot().histograms["h"].clone();
        assert_eq!(h.p50(), 1_000.0);
        assert_eq!(h.quantile(0.75), 100_000.0 + 0.5 * 900_000.0);
        // Overflow observations clamp to the highest finite bound.
        let reg = Registry::new();
        reg.observe_ns("h", u64::MAX / 2);
        assert_eq!(
            reg.snapshot().histograms["h"].p50(),
            *DURATION_BOUNDS_NS.last().unwrap() as f64
        );
        // Empty histogram: zero, not NaN.
        let empty = HistogramSnapshot {
            unit: HistogramUnit::Nanos,
            bounds: DURATION_BOUNDS_NS.to_vec(),
            counts: vec![0; DURATION_BOUNDS_NS.len() + 1],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 1.0);
        reg.observe_ns("h", 1);
        assert!(!reg.is_empty());
        reg.reset();
        assert!(reg.is_empty());
        assert_eq!(reg.snapshot(), Snapshot::empty());
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.counter_add("shared", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counters["shared"], 4000);
    }
}
