//! Exporters: Prometheus text exposition and a JSON snapshot.
//!
//! Both render an immutable [`Snapshot`], whose `BTreeMap`s make the output
//! deterministic — golden tests pin the exact bytes. Neither pulls in a
//! serialisation dependency: the JSON writer escapes strings itself and the
//! Prometheus writer follows the text exposition format (counters and
//! gauges verbatim, histograms with cumulative `le` buckets in seconds).

use std::fmt::Write as _;

use crate::registry::{HistogramUnit, Snapshot};

/// Renders a snapshot as a JSON object:
///
/// ```json
/// {
///   "counters": {"name": 1},
///   "gauges": {"name": 1.5},
///   "histograms": {"name": {"unit": "ns", "bounds": [...], "counts": [...],
///                           "sum": 0, "count": 0, "p50": 0, "p95": 0, "p99": 0}}
/// }
/// ```
///
/// The `p50`/`p95`/`p99` members are the bucket-interpolated percentile
/// estimates ([`crate::HistogramSnapshot::quantile`]), in the histogram's
/// own unit. Non-finite gauge values serialise as `null` (JSON has no
/// NaN/Inf).
#[must_use]
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}: {value}", json_string(name));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {}: {}",
            json_string(name),
            json_number(*value)
        );
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {}: {{\"unit\": {}, \"bounds\": {}, \"counts\": {}, \
             \"sum\": {}, \"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_string(name),
            json_string(h.unit.label()),
            json_u64_array(&h.bounds),
            json_u64_array(&h.counts),
            h.sum,
            h.count,
            json_number(h.p50()),
            json_number(h.p95()),
            json_number(h.p99()),
        );
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Renders a snapshot in the Prometheus text exposition format. Metric
/// names are prefixed `hmdiv_` and sanitised to `[a-zA-Z0-9_]`; duration
/// histograms are exported in seconds with cumulative `le` buckets, count
/// histograms in their raw unit, and each histogram is followed by three
/// `_p50`/`_p95`/`_p99` gauges carrying the bucket-interpolated
/// percentile estimates.
#[must_use]
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_number(*value));
    }
    for (name, h) in &snapshot.histograms {
        // Durations follow the Prometheus convention of base-unit
        // seconds; count histograms keep their dimensionless values.
        // Dividing by 1e9 (exactly representable) keeps the rendered
        // decimals clean where multiplying by 1e-9 would not.
        let (name, divisor) = match h.unit {
            HistogramUnit::Nanos => (format!("{}_seconds", metric_name(name)), 1e9),
            HistogramUnit::Count => (metric_name(name), 1.0),
        };
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = match h.bounds.get(i) {
                Some(&bound) => prom_number(bound as f64 / divisor),
                None => "+Inf".to_owned(),
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}", prom_number(h.sum as f64 / divisor));
        let _ = writeln!(out, "{name}_count {}", h.count);
        for (suffix, q) in [("p50", h.p50()), ("p95", h.p95()), ("p99", h.p99())] {
            let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
            let _ = writeln!(out, "{name}_{suffix} {}", prom_number(q / divisor));
        }
    }
    out
}

/// Quotes and escapes a JSON string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number, or `null` when non-finite.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Formats an `f64` for Prometheus (which accepts `NaN`/`+Inf`/`-Inf`).
fn prom_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

/// `[1, 2, 3]`
fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Sanitises a dotted metric name into a Prometheus identifier.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("hmdiv_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers_avoid_non_finite_literals() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(metric_name("sim.engine.cases"), "hmdiv_sim_engine_cases");
        assert_eq!(metric_name("a-b c"), "hmdiv_a_b_c");
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = to_json(&Snapshot::empty());
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
        assert_eq!(to_prometheus(&Snapshot::empty()), "");
    }
}
