//! RAII span timers over the monotonic clock.
//!
//! A [`Span`] notes [`std::time::Instant::now`] when created and records the
//! elapsed nanoseconds into a duration histogram when dropped, so timing a
//! region is one line:
//!
//! ```
//! hmdiv_obs::set_enabled(true);
//! {
//!     let _span = hmdiv_obs::span("doc.region");
//!     // ... timed work ...
//! }
//! assert_eq!(hmdiv_obs::snapshot().histograms["doc.region"].count, 1);
//! ```
//!
//! While observability is disabled (or the name is filtered out by
//! `HMDIV_OBS`), [`span`] returns an inert guard without ever reading the
//! clock.

use std::borrow::Cow;
use std::time::Instant;

use crate::registry::Registry;

/// An RAII timer; see the module docs. Created by [`span`] (global registry)
/// or [`Span::enter`] (explicit registry).
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    armed: Option<SpanInner>,
}

struct SpanInner {
    name: Cow<'static, str>,
    start: Instant,
    registry: &'static Registry,
}

/// Starts a span recording into the global registry under `name`, or an
/// inert guard while observability is disabled for `name`.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    let name = name.into();
    if crate::enabled_for(&name) {
        Span::enter(name, crate::global())
    } else {
        Span::disabled()
    }
}

impl Span {
    /// Starts a span against an explicit registry, unconditionally.
    pub fn enter(name: impl Into<Cow<'static, str>>, registry: &'static Registry) -> Span {
        Span {
            armed: Some(SpanInner {
                name: name.into(),
                start: Instant::now(),
                registry,
            }),
        }
    }

    /// An inert guard that records nothing.
    pub fn disabled() -> Span {
        Span { armed: None }
    }

    /// Whether this span will record on drop.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// Elapsed nanoseconds so far, saturating at `u64::MAX`; `None` for an
    /// inert guard.
    #[must_use]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.armed
            .as_ref()
            .map(|s| u64::try_from(s.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.armed.take() {
            let nanos = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.registry.observe_ns(&inner.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled();
        assert!(!s.is_armed());
        assert_eq!(s.elapsed_ns(), None);
    }

    #[test]
    fn armed_span_records_one_observation_on_drop() {
        // A leaked registry gives the 'static lifetime Span::enter needs
        // without touching process-global state from a unit test.
        let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
        {
            let s = Span::enter("test.span", registry);
            assert!(s.is_armed());
            assert!(s.elapsed_ns().is_some());
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["test.span"].count, 1);
        assert_eq!(snap.histograms["test.span"].counts.iter().sum::<u64>(), 1);
    }
}
