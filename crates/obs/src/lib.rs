//! Zero-dependency observability for the `hmdiv` workspace.
//!
//! The dependability literature this workspace reproduces is explicit that
//! claims need *measured*, per-class evidence; this crate makes the runtime
//! practice what the models preach. It provides, using only `std`:
//!
//! * [`registry`] — a thread-safe registry of named metrics: monotonic
//!   counters, last-value gauges, and fixed-bucket duration histograms, all
//!   backed by atomics so recording never blocks recording.
//! * [`span`] — RAII timers over the monotonic clock
//!   ([`std::time::Instant`]); dropping a [`Span`] records its elapsed time
//!   into a duration histogram.
//! * [`sink`] — [`MetricSink`], a plain-data per-worker accumulator designed
//!   to ride the deterministic parallel fold of `hmdiv_prob::par`
//!   (`hmdiv-prob` implements its `Merge` trait for [`MetricSink`], since
//!   this crate sits *below* `hmdiv-prob` in the dependency graph). Workers
//!   tally into private sinks; the in-order merge concatenates per-worker
//!   stats and sums counters, so instrumentation adds no shared mutable
//!   state and cannot perturb `(seed, task-id)` RNG streams.
//! * [`export`] — Prometheus text exposition and a JSON snapshot, both
//!   rendered from an immutable [`Snapshot`] with deterministic key order,
//!   including p50/p95/p99 summaries estimated from the fixed buckets.
//! * [`trace`] — request-lifecycle tracing: [`TraceId`]s minted per
//!   request, per-stage span stamps with parent links ([`StageSet`]), and
//!   the [`FlightRecorder`] ring buffer of completed-request records that
//!   the serving layer drains for postmortems.
//!
//! # Enabling
//!
//! Metrics are **off by default**: every recording entry point first checks
//! a single relaxed atomic ([`enabled`]), so the disabled path costs one
//! load and a branch *per batch operation* (never per sample). Enable with:
//!
//! * the `HMDIV_OBS` environment variable — `1`/`on`/`true`/`all` enables
//!   everything, a comma-separated list (`HMDIV_OBS=sim,rbd.mc`) enables
//!   only metrics whose dotted name starts with one of the prefixes, and
//!   `0`/`off`/`false` (or unset) disables; or
//! * programmatically via [`set_enabled`] (used by `repro --metrics`).
//!
//! # Example
//!
//! ```
//! hmdiv_obs::set_enabled(true);
//! hmdiv_obs::counter_add("demo.cases", 120);
//! hmdiv_obs::gauge_set("demo.cases_per_sec", 4.0e6);
//! {
//!     let _span = hmdiv_obs::span("demo.phase");
//!     // ... timed work ...
//! }
//! let snap = hmdiv_obs::snapshot();
//! assert_eq!(snap.counters["demo.cases"], 120);
//! assert_eq!(snap.histograms["demo.phase"].count, 1);
//! println!("{}", hmdiv_obs::export::to_json(&snap));
//! ```

pub mod export;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub use registry::{HistogramSnapshot, HistogramUnit, Registry, Snapshot};
pub use sink::{MetricSink, WorkerStat};
pub use span::{span, Span};
pub use trace::{FlightRecorder, RequestRecord, Stage, StageSet, TraceId, TraceOutcome};

/// Tri-state enable flag: 0 = uninitialised (consult `HMDIV_OBS` on first
/// use), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Prefix filter parsed from `HMDIV_OBS` (empty = no filtering).
static FILTER: OnceLock<Vec<String>> = OnceLock::new();

/// The process-wide default registry.
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default [`Registry`] that the convenience functions and
/// the instrumented library paths record into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Parses an `HMDIV_OBS` value into (enabled, prefix filter).
fn parse_env(value: Option<&str>) -> (bool, Vec<String>) {
    match value.map(str::trim) {
        None | Some("") | Some("0") | Some("off") | Some("false") => (false, Vec::new()),
        Some("1") | Some("on") | Some("true") | Some("all") => (true, Vec::new()),
        Some(list) => (
            true,
            list.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_owned)
                .collect(),
        ),
    }
}

fn init_from_env() -> bool {
    let env = std::env::var("HMDIV_OBS").ok();
    let (on, filter) = parse_env(env.as_deref());
    let _ = FILTER.set(filter);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether observability is globally enabled. The first call consults the
/// `HMDIV_OBS` environment variable; later calls are a single relaxed load.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

/// Enables or disables observability programmatically, overriding the
/// environment default. Any `HMDIV_OBS` prefix filter stays in force.
pub fn set_enabled(on: bool) {
    if ENABLED.load(Ordering::Relaxed) == 0 {
        // Latch the env filter first so a later `enabled()` cannot clobber
        // this explicit choice.
        init_from_env();
    }
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether a metric with this dotted `name` should be recorded: requires
/// [`enabled`] and, when `HMDIV_OBS` named prefixes, a matching prefix.
pub fn enabled_for(name: &str) -> bool {
    if !enabled() {
        return false;
    }
    let filter = FILTER.get_or_init(Vec::new);
    filter.is_empty() || filter.iter().any(|p| name.starts_with(p.as_str()))
}

/// Adds `by` to the global counter `name` (no-op while disabled).
pub fn counter_add(name: &str, by: u64) {
    if enabled_for(name) {
        global().counter_add(name, by);
    }
}

/// Sets the global gauge `name` (no-op while disabled).
pub fn gauge_set(name: &str, value: f64) {
    if enabled_for(name) {
        global().gauge_set(name, value);
    }
}

/// Records a duration observation into the global histogram `name` (no-op
/// while disabled).
pub fn observe_ns(name: &str, nanos: u64) {
    if enabled_for(name) {
        global().observe_ns(name, nanos);
    }
}

/// Records a count observation (batch size, queue depth) into the global
/// histogram `name` on the power-of-two ladder (no-op while disabled).
pub fn observe_count(name: &str, value: u64) {
    if enabled_for(name) {
        global().observe_count(name, value);
    }
}

/// Records the elapsed time since `start` into the duration histogram
/// `name` (no-op while disabled). Complements [`span`] when a timed region
/// begins and ends on different threads — e.g. a request stamped on a
/// connection thread and completed by a batch executor — where an RAII
/// guard has no single owning scope.
pub fn observe_since(name: &str, start: std::time::Instant) {
    if enabled_for(name) {
        global().observe_ns(
            name,
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Snapshots the global registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears every metric in the global registry (counters back to zero,
/// gauges and histograms removed). `repro --metrics` resets between
/// process-level concerns; tests use it for isolation.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_recognises_switch_values() {
        for off in [None, Some(""), Some("0"), Some("off"), Some("false")] {
            let (on, filter) = parse_env(off);
            assert!(!on, "{off:?}");
            assert!(filter.is_empty());
        }
        for all in ["1", "on", "true", "all"] {
            let (on, filter) = parse_env(Some(all));
            assert!(on, "{all}");
            assert!(filter.is_empty());
        }
    }

    #[test]
    fn parse_env_builds_prefix_filters() {
        let (on, filter) = parse_env(Some("sim, rbd.mc ,,par"));
        assert!(on);
        assert_eq!(filter, ["sim", "rbd.mc", "par"]);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        set_enabled(false);
        counter_add("test.lib.off", 5);
        assert!(!snapshot().counters.contains_key("test.lib.off"));
        set_enabled(true);
        counter_add("test.lib.on", 5);
        assert_eq!(snapshot().counters["test.lib.on"], 5);
        set_enabled(false);
    }
}
