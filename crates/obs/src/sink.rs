//! Per-worker metric accumulators for deterministic parallel folds.
//!
//! The workspace's parallel engine (`hmdiv_prob::par::run_tasks`) gets its
//! thread-count invariance from accumulators whose merge is associative
//! with an identity. [`MetricSink`] is an accumulator built to those rules
//! so *instrumentation itself* can ride the fold: each worker tallies into
//! a private sink (no shared mutable state, no extra RNG draws), and the
//! in-order merge sums named counters and concatenates per-worker stats —
//! worker `i`'s entry ends up at position `i` because partials merge in
//! task order.
//!
//! `hmdiv-prob` provides `impl Merge for MetricSink` (the trait lives
//! there; this crate sits below it), delegating to [`MetricSink::absorb`].
//! The `Merge` laws are pinned by property tests in `hmdiv-prob`:
//! [`MetricSink::new`] is the identity and `absorb` is associative, both by
//! construction — `u64` addition and `Vec` concatenation are associative,
//! and absorbing an empty sink changes nothing.

use std::collections::BTreeMap;

use crate::registry::Registry;

/// What one worker did during a parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Tasks the worker executed.
    pub tasks: u64,
    /// Wall-clock time the worker spent executing its block, in
    /// nanoseconds.
    pub busy_ns: u64,
}

/// A plain-data accumulator of named counters plus per-worker stats; see
/// the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSink {
    counters: BTreeMap<String, u64>,
    workers: Vec<WorkerStat>,
}

impl MetricSink {
    /// The empty sink — the identity for [`MetricSink::absorb`].
    #[must_use]
    pub fn new() -> Self {
        MetricSink::default()
    }

    /// Adds `by` to the named counter.
    pub fn inc(&mut self, name: impl Into<String>, by: u64) {
        *self.counters.entry(name.into()).or_insert(0) += by;
    }

    /// Appends one worker's stats.
    pub fn push_worker(&mut self, stat: WorkerStat) {
        self.workers.push(stat);
    }

    /// Folds `later` into `self`: counters add, worker stats append after
    /// this sink's (preserving worker order under in-order merging).
    /// Associative, with [`MetricSink::new`] as identity — the `Merge`
    /// contract `hmdiv_prob::par` requires.
    pub fn absorb(&mut self, later: MetricSink) {
        for (name, by) in later.counters {
            *self.counters.entry(name).or_insert(0) += by;
        }
        self.workers.extend(later.workers);
    }

    /// The named counters.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Per-worker stats in worker (task-block) order.
    #[must_use]
    pub fn workers(&self) -> &[WorkerStat] {
        &self.workers
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.workers.is_empty()
    }

    /// Total busy time across workers, in nanoseconds.
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Load-balance quality: the busiest worker's time divided by the mean
    /// worker time (1.0 = perfectly even). `None` without worker stats or
    /// with all-zero times.
    #[must_use]
    pub fn imbalance_ratio(&self) -> Option<f64> {
        let total = self.total_busy_ns();
        if self.workers.is_empty() || total == 0 {
            return None;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
        let mean = total as f64 / self.workers.len() as f64;
        Some(max as f64 / mean)
    }

    /// Publishes the sink into `registry` under the dotted `scope` prefix:
    /// each counter as `{scope}.{name}`, per-worker gauges
    /// `{scope}.worker{i}.busy_ns` / `.tasks`, the total as
    /// `{scope}.busy_ns`, and the imbalance ratio as `{scope}.imbalance`.
    pub fn flush(&self, scope: &str, registry: &Registry) {
        for (name, by) in &self.counters {
            registry.counter_add(&format!("{scope}.{name}"), *by);
        }
        for (i, w) in self.workers.iter().enumerate() {
            registry.gauge_set(&format!("{scope}.worker{i}.busy_ns"), w.busy_ns as f64);
            registry.gauge_set(&format!("{scope}.worker{i}.tasks"), w.tasks as f64);
        }
        if !self.workers.is_empty() {
            registry.counter_add(&format!("{scope}.busy_ns"), self.total_busy_ns());
            if let Some(ratio) = self.imbalance_ratio() {
                registry.gauge_set(&format!("{scope}.imbalance"), ratio);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(counter: (&str, u64), workers: &[(u64, u64)]) -> MetricSink {
        let mut s = MetricSink::new();
        s.inc(counter.0, counter.1);
        for &(tasks, busy_ns) in workers {
            s.push_worker(WorkerStat { tasks, busy_ns });
        }
        s
    }

    #[test]
    fn new_is_identity_for_absorb() {
        let reference = sink(("cases", 7), &[(3, 100), (4, 140)]);
        let mut left = MetricSink::new();
        left.absorb(reference.clone());
        assert_eq!(left, reference);
        let mut right = reference.clone();
        right.absorb(MetricSink::new());
        assert_eq!(right, reference);
    }

    #[test]
    fn absorb_is_associative_and_order_preserving() {
        let a = sink(("n", 1), &[(1, 10)]);
        let b = sink(("n", 2), &[(2, 20)]);
        let c = sink(("m", 4), &[(3, 30)]);
        let mut ab_c = a.clone();
        ab_c.absorb(b.clone());
        ab_c.absorb(c.clone());
        let mut bc = b;
        bc.absorb(c);
        let mut a_bc = a;
        a_bc.absorb(bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.counters()["n"], 3);
        assert_eq!(ab_c.counters()["m"], 4);
        let tasks: Vec<u64> = ab_c.workers().iter().map(|w| w.tasks).collect();
        assert_eq!(tasks, [1, 2, 3]);
    }

    #[test]
    fn imbalance_ratio_reflects_skew() {
        let even = sink(("n", 0), &[(1, 100), (1, 100)]);
        assert!((even.imbalance_ratio().unwrap() - 1.0).abs() < 1e-12);
        let skewed = sink(("n", 0), &[(1, 300), (1, 100)]);
        assert!((skewed.imbalance_ratio().unwrap() - 1.5).abs() < 1e-12);
        assert!(MetricSink::new().imbalance_ratio().is_none());
        let idle = sink(("n", 0), &[(1, 0)]);
        assert!(idle.imbalance_ratio().is_none());
    }

    #[test]
    fn flush_publishes_under_scope() {
        let reg = Registry::new();
        let s = sink(("cases", 9), &[(5, 200), (4, 100)]);
        s.flush("test.scope", &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["test.scope.cases"], 9);
        assert_eq!(snap.counters["test.scope.busy_ns"], 300);
        assert_eq!(snap.gauges["test.scope.worker0.busy_ns"], 200.0);
        assert_eq!(snap.gauges["test.scope.worker1.tasks"], 4.0);
        assert!((snap.gauges["test.scope.imbalance"] - 200.0 / 150.0).abs() < 1e-12);
    }
}
