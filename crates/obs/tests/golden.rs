//! Golden-output tests for the exporters.
//!
//! Both exporters render from a [`Registry`] snapshot whose `BTreeMap`s fix
//! the key order, so the exact bytes are deterministic and can be pinned.
//! These tests use a local registry (not the process-global one) so they
//! cannot race with other tests toggling `hmdiv_obs::set_enabled`.

use hmdiv_obs::export::{to_json, to_prometheus};
use hmdiv_obs::Registry;

/// Builds a registry with one metric of each kind, with values chosen to
/// land in known histogram buckets.
fn sample_registry() -> Registry {
    let registry = Registry::new();
    registry.counter_add("sim.engine.cases", 450_000);
    registry.counter_add("rbd.mc.samples", 8_192);
    registry.gauge_set("sim.engine.cases_per_sec", 2.5e6);
    registry.gauge_set("sim.engine.imbalance", 1.25);
    // 5 µs and 2 ms land in the 10 µs and 10 ms decade buckets.
    registry.observe_ns("sim.engine.run", 5_000);
    registry.observe_ns("sim.engine.run", 2_000_000);
    // 3 and 100 land in the ≤4 and ≤128 power-of-two buckets.
    registry.observe_count("serve.batch_size", 3);
    registry.observe_count("serve.batch_size", 100);
    registry
}

#[test]
fn json_export_matches_golden() {
    let json = to_json(&sample_registry().snapshot());
    let expected = concat!(
        "{\n",
        "  \"counters\": {\n",
        "    \"rbd.mc.samples\": 8192,\n",
        "    \"sim.engine.cases\": 450000\n",
        "  },\n",
        "  \"gauges\": {\n",
        "    \"sim.engine.cases_per_sec\": 2500000,\n",
        "    \"sim.engine.imbalance\": 1.25\n",
        "  },\n",
        "  \"histograms\": {\n",
        "    \"serve.batch_size\": {\"unit\": \"count\", \
         \"bounds\": [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192], \
         \"counts\": [0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0], \
         \"sum\": 103, \"count\": 2, \"p50\": 4, \"p95\": 121.6, \"p99\": 126.72},\n",
        "    \"sim.engine.run\": {\"unit\": \"ns\", \
         \"bounds\": [1000, 10000, 100000, 1000000, \
         10000000, 100000000, 1000000000, 10000000000], \
         \"counts\": [0, 1, 0, 0, 1, 0, 0, 0, 0], \"sum\": 2005000, \"count\": 2, \
         \"p50\": 10000, \"p95\": 9100000, \"p99\": 9820000}\n",
        "  }\n",
        "}\n",
    );
    assert_eq!(json, expected);
}

#[test]
fn prometheus_export_matches_golden() {
    let text = to_prometheus(&sample_registry().snapshot());
    let expected = concat!(
        "# TYPE hmdiv_rbd_mc_samples counter\n",
        "hmdiv_rbd_mc_samples 8192\n",
        "# TYPE hmdiv_sim_engine_cases counter\n",
        "hmdiv_sim_engine_cases 450000\n",
        "# TYPE hmdiv_sim_engine_cases_per_sec gauge\n",
        "hmdiv_sim_engine_cases_per_sec 2500000\n",
        "# TYPE hmdiv_sim_engine_imbalance gauge\n",
        "hmdiv_sim_engine_imbalance 1.25\n",
        "# TYPE hmdiv_serve_batch_size histogram\n",
        "hmdiv_serve_batch_size_bucket{le=\"1\"} 0\n",
        "hmdiv_serve_batch_size_bucket{le=\"2\"} 0\n",
        "hmdiv_serve_batch_size_bucket{le=\"4\"} 1\n",
        "hmdiv_serve_batch_size_bucket{le=\"8\"} 1\n",
        "hmdiv_serve_batch_size_bucket{le=\"16\"} 1\n",
        "hmdiv_serve_batch_size_bucket{le=\"32\"} 1\n",
        "hmdiv_serve_batch_size_bucket{le=\"64\"} 1\n",
        "hmdiv_serve_batch_size_bucket{le=\"128\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"256\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"512\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"1024\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"2048\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"4096\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"8192\"} 2\n",
        "hmdiv_serve_batch_size_bucket{le=\"+Inf\"} 2\n",
        "hmdiv_serve_batch_size_sum 103\n",
        "hmdiv_serve_batch_size_count 2\n",
        "# TYPE hmdiv_serve_batch_size_p50 gauge\n",
        "hmdiv_serve_batch_size_p50 4\n",
        "# TYPE hmdiv_serve_batch_size_p95 gauge\n",
        "hmdiv_serve_batch_size_p95 121.6\n",
        "# TYPE hmdiv_serve_batch_size_p99 gauge\n",
        "hmdiv_serve_batch_size_p99 126.72\n",
        "# TYPE hmdiv_sim_engine_run_seconds histogram\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.000001\"} 0\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.00001\"} 1\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.0001\"} 1\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.001\"} 1\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.01\"} 2\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"0.1\"} 2\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"1\"} 2\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"10\"} 2\n",
        "hmdiv_sim_engine_run_seconds_bucket{le=\"+Inf\"} 2\n",
        "hmdiv_sim_engine_run_seconds_sum 0.002005\n",
        "hmdiv_sim_engine_run_seconds_count 2\n",
        "# TYPE hmdiv_sim_engine_run_seconds_p50 gauge\n",
        "hmdiv_sim_engine_run_seconds_p50 0.00001\n",
        "# TYPE hmdiv_sim_engine_run_seconds_p95 gauge\n",
        "hmdiv_sim_engine_run_seconds_p95 0.0091\n",
        "# TYPE hmdiv_sim_engine_run_seconds_p99 gauge\n",
        "hmdiv_sim_engine_run_seconds_p99 0.00982\n",
    );
    assert_eq!(text, expected);
}

#[test]
fn json_roundtrips_through_a_parser_shape_check() {
    // No JSON parser is available in this workspace, so approximate a
    // validity check structurally: balanced braces/brackets outside strings
    // and no trailing comma before a closing brace.
    let json = to_json(&sample_registry().snapshot());
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    let mut last_significant = ' ';
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                assert_ne!(last_significant, ',', "trailing comma before {c}");
                depth -= 1;
            }
            _ => {}
        }
        if !c.is_whitespace() {
            last_significant = c;
        }
    }
    assert_eq!(depth, 0, "unbalanced braces");
    assert!(!in_string, "unterminated string");
}
