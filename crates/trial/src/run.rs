//! Trial execution.

use hmdiv_sim::engine::{SimConfig, Simulation, SimulationReport, World};

use crate::design::TrialDesign;
use crate::TrialError;

/// The raw product of a trial: the design it followed and the stratified
/// outcome tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialData {
    /// The design that was executed.
    pub design: TrialDesign,
    /// The collected outcome tables.
    pub report: SimulationReport,
}

/// Runs a controlled trial of `world`'s team on an *enriched* version of
/// `world`'s population, per the design.
///
/// # Errors
///
/// Propagates simulation errors ([`TrialError::Sim`]).
pub fn run_trial(world: &World, design: &TrialDesign) -> Result<TrialData, TrialError> {
    let _span = hmdiv_obs::span("trial.run");
    let mut population = world
        .population
        .with_prevalence(design.enriched_prevalence());
    if !design.oversample().is_empty() {
        population = population
            .with_cancer_mix_reweighted(|spec, w| {
                let factor = design
                    .oversample()
                    .iter()
                    .filter(|(name, _)| name == spec.class.name())
                    .map(|(_, f)| f)
                    .product::<f64>();
                w.value() * factor
            })
            .map_err(TrialError::from)?;
    }
    let enriched = World {
        population,
        team: world.team.clone(),
    };
    let report = Simulation::new(
        enriched,
        SimConfig {
            cases: design.cases(),
            seed: design.seed(),
            threads: design.threads(),
        },
    )
    .run()
    .map_err(TrialError::from)?;
    hmdiv_obs::counter_add("trial.run.trials", 1);
    hmdiv_obs::counter_add("trial.run.cases", report.total_cases());
    Ok(TrialData {
        design: design.clone(),
        report,
    })
}

/// Runs the team on the *field* population directly (ground truth for
/// validating extrapolation; infeasible in reality, cheap in simulation).
///
/// # Errors
///
/// Propagates simulation errors ([`TrialError::Sim`]).
pub fn run_field_study(
    world: &World,
    cases: u64,
    seed: u64,
    threads: usize,
) -> Result<SimulationReport, TrialError> {
    let _span = hmdiv_obs::span("trial.field_study");
    let report = Simulation::new(
        world.clone(),
        SimConfig {
            cases,
            seed,
            threads,
        },
    )
    .run()
    .map_err(TrialError::from)?;
    hmdiv_obs::counter_add("trial.field_study.cases", report.total_cases());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_sim::scenario;

    #[test]
    fn trial_enriches_prevalence() {
        let world = scenario::default_world().unwrap();
        let design = TrialDesign::new("t", 6000, 0.5, 3).unwrap();
        let data = run_trial(&world, &design).unwrap();
        let frac = data.report.cancer_cases() as f64 / data.report.total_cases() as f64;
        assert!((frac - 0.5).abs() < 0.03, "{frac}");
        assert_eq!(data.design.name(), "t");
    }

    #[test]
    fn field_study_keeps_field_prevalence() {
        let world = scenario::default_world().unwrap();
        let report = run_field_study(&world, 40_000, 4, 4).unwrap();
        let frac = report.cancer_cases() as f64 / report.total_cases() as f64;
        assert!(frac < 0.02, "{frac}");
    }

    #[test]
    fn oversampling_distorts_the_class_mix() {
        let world = scenario::default_world().unwrap();
        let plain = TrialDesign::new("plain", 20_000, 0.5, 6).unwrap();
        let skewed = TrialDesign::new("skewed", 20_000, 0.5, 6)
            .unwrap()
            .with_oversample("difficult", 4.0)
            .unwrap();
        let share = |data: &TrialData| {
            let total = data.report.cancer_counts().pooled().total() as f64;
            data.report
                .cancer_counts()
                .stratum(&hmdiv_core::ClassId::new("difficult"))
                .map(|t| t.total() as f64 / total)
                .unwrap_or(0.0)
        };
        let plain_share = share(&run_trial(&world, &plain).unwrap());
        let skewed_share = share(&run_trial(&world, &skewed).unwrap());
        assert!(
            skewed_share > plain_share + 0.2,
            "{plain_share} vs {skewed_share}"
        );
    }

    #[test]
    fn trials_are_reproducible() {
        let world = scenario::default_world().unwrap();
        let design = TrialDesign::new("r", 2000, 0.5, 9).unwrap();
        let a = run_trial(&world, &design).unwrap();
        let b = run_trial(&world, &design).unwrap();
        assert_eq!(a.report, b.report);
    }
}
