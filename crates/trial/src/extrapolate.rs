//! End-to-end validation of trial→field extrapolation.
//!
//! The paper argues (§5) that per-class parameters measured in an enriched
//! trial, reweighted by the field demand profile, predict field
//! dependability. In reality this can only be argued; against the simulator
//! it can be *tested*: run the enriched trial, estimate, predict the field
//! false-negative rate, then simulate the field directly and compare.
//!
//! The comparison also quantifies the error of the *naive* alternative —
//! carrying the trial's raw failure rate to the field — which is exactly the
//! mistake the clear-box model exists to prevent.

use hmdiv_core::DemandProfile;
use hmdiv_prob::estimate::CiMethod;
use hmdiv_prob::Probability;
use hmdiv_sim::engine::World;

use crate::design::TrialDesign;
use crate::estimate::{estimate_trial, EstimatedParams};
use crate::run::{run_field_study, run_trial};
use crate::TrialError;

/// The outcome of one extrapolation validation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Parameters estimated from the trial.
    pub estimates: EstimatedParams,
    /// The field demand profile used for the prediction (estimated from the
    /// field study's own class frequencies).
    pub field_profile: DemandProfile,
    /// The model-based prediction of the field false-negative rate.
    pub predicted: Probability,
    /// The field false-negative rate observed by direct simulation.
    pub observed: Probability,
    /// The trial's raw false-negative rate (the naive prediction).
    pub trial_rate: Probability,
}

impl ValidationReport {
    /// Absolute error of the model-based prediction.
    #[must_use]
    pub fn model_error(&self) -> f64 {
        (self.predicted.value() - self.observed.value()).abs()
    }

    /// Absolute error of the naive (raw trial rate) prediction.
    #[must_use]
    pub fn naive_error(&self) -> f64 {
        (self.trial_rate.value() - self.observed.value()).abs()
    }

    /// Whether the clear-box extrapolation beat the naive carry-over.
    #[must_use]
    pub fn model_beats_naive(&self) -> bool {
        self.model_error() < self.naive_error()
    }
}

/// Runs the full loop: enriched trial → estimate → field prediction →
/// direct field simulation → comparison.
///
/// `field_cases` should be large enough for the field FN rate to be stable
/// (cancers are rare in the field, so tens of thousands of cases at least).
///
/// # Errors
///
/// Propagates trial, estimation, and simulation errors.
pub fn validate_extrapolation(
    world: &World,
    design: &TrialDesign,
    field_cases: u64,
    field_seed: u64,
) -> Result<ValidationReport, TrialError> {
    let trial_data = run_trial(world, design)?;
    let estimates = estimate_trial(&trial_data, CiMethod::Wilson, 0.95, true)?;
    let model = estimates.point_model()?;

    let field_report = run_field_study(world, field_cases, field_seed, design.threads())?;
    // Field demand profile over cancer classes, observed in the field study.
    let pairs: Vec<(hmdiv_core::ClassId, f64)> = field_report
        .cancer_counts()
        .iter()
        .map(|(c, t)| (c.clone(), t.total() as f64))
        .collect();
    let field_profile = DemandProfile::from_weights(pairs).map_err(TrialError::from)?;

    // Predict only over classes in the model's interned universe;
    // re-normalise if the field saw a class the (possibly sparse) trial
    // could not estimate.
    let universe = model.compiled().universe().clone();
    let known: Vec<_> = field_profile
        .iter()
        .filter(|(c, _)| universe.contains(c.name()))
        .map(|(c, w)| (c.clone(), w.value()))
        .collect();
    let usable_profile = DemandProfile::from_weights(known).map_err(TrialError::from)?;
    let predicted = model
        .system_failure(&usable_profile)
        .map_err(TrialError::from)?;

    let observed =
        field_report
            .fn_rate()
            .ok_or(TrialError::Sim(hmdiv_sim::SimError::EmptyRun {
                context: "field cancer cases",
            }))?;
    let trial_rate =
        trial_data
            .report
            .fn_rate()
            .ok_or(TrialError::Sim(hmdiv_sim::SimError::EmptyRun {
                context: "trial cancer cases",
            }))?;
    Ok(ValidationReport {
        estimates,
        field_profile,
        predicted,
        observed,
        trial_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_sim::scenario;

    #[test]
    fn extrapolation_closes_the_loop() {
        let world = scenario::default_world().unwrap();
        // The trial oversamples difficult cases 3×, so its raw FN rate is a
        // biased guide to the field — the reweighting must undo it.
        let design = TrialDesign::new("validate", 60_000, 0.5, 31)
            .unwrap()
            .with_oversample("difficult", 3.0)
            .unwrap();
        let report = validate_extrapolation(&world, &design, 3_000_000, 32).unwrap();
        // The model-based prediction should land near the observed field
        // rate (Monte-Carlo noise + estimation error allow a small gap).
        assert!(
            report.model_error() < 0.03,
            "predicted {} vs observed {}",
            report.predicted.value(),
            report.observed.value()
        );
    }

    #[test]
    fn reweighting_beats_naive_carry_over_under_mix_distortion() {
        // With the trial oversampling difficult cases 4×, the naive
        // carry-over of the trial FN rate is clearly biased upward, while
        // the clear-box reweighting lands near the truth — the paper's §5
        // argument, demonstrated end to end.
        let world = scenario::default_world().unwrap();
        let design = TrialDesign::new("naive", 60_000, 0.5, 33)
            .unwrap()
            .with_oversample("difficult", 4.0)
            .unwrap();
        let report = validate_extrapolation(&world, &design, 3_000_000, 34).unwrap();
        assert!(
            report.trial_rate > report.observed,
            "oversampling inflates the trial rate"
        );
        assert!(
            report.model_beats_naive(),
            "model {} vs naive {} (observed {})",
            report.model_error(),
            report.naive_error(),
            report.observed.value()
        );
    }
}
