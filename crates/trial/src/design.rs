//! Trial specifications.

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::TrialError;

/// A controlled-trial specification.
///
/// The defining compromise (paper §1): a trial of practical size must be
/// *enriched* — its cancer prevalence is far above the field's — which is
/// exactly why the per-class parameters must be carried to the field via the
/// model rather than the trial's raw failure rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialDesign {
    name: String,
    cases: u64,
    enriched_prevalence: Probability,
    seed: u64,
    threads: usize,
    oversample: Vec<(String, f64)>,
}

impl TrialDesign {
    /// Creates a design.
    ///
    /// # Errors
    ///
    /// [`TrialError::InvalidDesign`] if `cases == 0` or the prevalence is
    /// not a valid probability in `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        cases: u64,
        enriched_prevalence: f64,
        seed: u64,
    ) -> Result<Self, TrialError> {
        if cases == 0 {
            return Err(TrialError::InvalidDesign {
                value: 0.0,
                context: "case count",
            });
        }
        if enriched_prevalence.is_nan() || enriched_prevalence <= 0.0 || enriched_prevalence > 1.0 {
            return Err(TrialError::InvalidDesign {
                value: enriched_prevalence,
                context: "enriched prevalence",
            });
        }
        Ok(TrialDesign {
            name: name.into(),
            cases,
            enriched_prevalence: Probability::new(enriched_prevalence).map_err(TrialError::from)?,
            seed,
            threads: 4,
            oversample: Vec::new(),
        })
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cases read in the trial.
    #[must_use]
    pub fn cases(&self) -> u64 {
        self.cases
    }

    /// The enriched cancer prevalence of the trial case set.
    #[must_use]
    pub fn enriched_prevalence(&self) -> Probability {
        self.enriched_prevalence
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads used to run the trial.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A copy with a different thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Oversamples a cancer class by `factor` in the trial case set —
    /// trials deliberately include "interesting" (difficult) cases beyond
    /// their field share, distorting the demand profile the paper's
    /// reweighting must undo.
    ///
    /// # Errors
    ///
    /// [`TrialError::InvalidDesign`] if `factor` is not strictly positive
    /// and finite.
    pub fn with_oversample(
        mut self,
        class: impl Into<String>,
        factor: f64,
    ) -> Result<Self, TrialError> {
        if factor.is_nan() || factor <= 0.0 || factor.is_infinite() {
            return Err(TrialError::InvalidDesign {
                value: factor,
                context: "oversample factor",
            });
        }
        self.oversample.push((class.into(), factor));
        Ok(self)
    }

    /// The configured per-class oversampling factors.
    #[must_use]
    pub fn oversample(&self) -> &[(String, f64)] {
        &self.oversample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_design() {
        let d = TrialDesign::new("pilot", 1000, 0.5, 1).unwrap();
        assert_eq!(d.name(), "pilot");
        assert_eq!(d.cases(), 1000);
        assert_eq!(d.enriched_prevalence().value(), 0.5);
        assert_eq!(d.with_threads(0).threads(), 1);
    }

    #[test]
    fn invalid_designs_rejected() {
        assert!(TrialDesign::new("x", 0, 0.5, 1).is_err());
        assert!(TrialDesign::new("x", 10, 0.0, 1).is_err());
        assert!(TrialDesign::new("x", 10, 1.5, 1).is_err());
        assert!(TrialDesign::new("x", 10, -0.5, 1).is_err());
        assert!(TrialDesign::new("x", 10, 1.0, 1).is_ok());
    }
}
