//! Trial sizing: how many cases does a trial need?
//!
//! The paper's §5 assumes "narrow enough confidence intervals can be
//! obtained for all parameters"; this module computes what that costs. The
//! binding constraint is always the *conditional* parameters of the *rare*
//! classes: to pin down `PHf|Mf` for the difficult class, the trial needs
//! enough difficult cases **on which the machine fails** — a double rarity
//! that enrichment and oversampling exist to fight.

use serde::{Deserialize, Serialize};

use hmdiv_core::{DemandProfile, SequentialModel};
use hmdiv_prob::special::normal_quantile;

use crate::TrialError;

/// Cases needed for a Wald-style interval of half-width `margin` on a
/// proportion near `p`, at confidence `level`:
/// `n = z² p(1−p) / margin²`.
///
/// Conservative for Wilson/Jeffreys intervals (they are narrower at the
/// same `n`), so plans made with it are safe.
///
/// # Errors
///
/// [`TrialError::InvalidDesign`] for a non-positive margin, `p` outside
/// `[0, 1]`, or `level` outside `(0, 1)`.
pub fn sample_size_for_proportion(p: f64, margin: f64, level: f64) -> Result<u64, TrialError> {
    if margin.is_nan() || margin <= 0.0 || margin >= 1.0 {
        return Err(TrialError::InvalidDesign {
            value: margin,
            context: "margin",
        });
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(TrialError::InvalidDesign {
            value: p,
            context: "anticipated proportion",
        });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(TrialError::InvalidDesign {
            value: level,
            context: "confidence level",
        });
    }
    let z = normal_quantile(1.0 - (1.0 - level) / 2.0);
    // p(1−p) maximised at ½ when the caller has no anticipation.
    let variance = (p * (1.0 - p)).max(f64::MIN_POSITIVE);
    Ok((z * z * variance / (margin * margin)).ceil() as u64)
}

/// The per-class case requirements of a planned trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRequirement {
    /// The class.
    pub class: hmdiv_core::ClassId,
    /// Cancer cases of this class needed to pin down `PMf(x)`.
    pub for_p_mf: u64,
    /// Cases needed so the *machine-success* subset pins down `PHf|Ms(x)`.
    pub for_p_hf_given_ms: u64,
    /// Cases needed so the *machine-failure* subset pins down `PHf|Mf(x)`.
    /// Usually the binding constraint.
    pub for_p_hf_given_mf: u64,
}

impl ClassRequirement {
    /// The binding (largest) requirement for this class.
    #[must_use]
    pub fn required_cases(&self) -> u64 {
        self.for_p_mf
            .max(self.for_p_hf_given_ms)
            .max(self.for_p_hf_given_mf)
    }
}

/// A full trial plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialPlan {
    /// Per-class requirements, in profile order.
    pub per_class: Vec<ClassRequirement>,
    /// Total *cancer* cases needed, accounting for the trial's class mix
    /// (the rarest class at its required count forces the others up).
    pub cancer_cases: u64,
    /// Total cases at the given enriched prevalence.
    pub total_cases: u64,
}

/// Plans a trial: cases needed for intervals of half-width `margin` at
/// confidence `level` on every parameter of every class, given anticipated
/// parameters (`model`), the trial's cancer-class mix (`trial_mix`), and
/// the enriched prevalence.
///
/// # Errors
///
/// * [`TrialError::Model`] if the mix mentions a class without parameters.
/// * [`TrialError::InvalidDesign`] for bad margin/level/prevalence.
pub fn plan_trial(
    model: &SequentialModel,
    trial_mix: &DemandProfile,
    enriched_prevalence: f64,
    margin: f64,
    level: f64,
) -> Result<TrialPlan, TrialError> {
    if !(enriched_prevalence > 0.0 && enriched_prevalence <= 1.0) {
        return Err(TrialError::InvalidDesign {
            value: enriched_prevalence,
            context: "enriched prevalence",
        });
    }
    let mut per_class = Vec::with_capacity(trial_mix.len());
    let mut cancer_cases: u64 = 0;
    for (class, weight) in trial_mix.iter() {
        let cp = model.params().class(class).map_err(TrialError::from)?;
        let n_mf = sample_size_for_proportion(cp.p_mf().value(), margin, level)?;
        // The conditional estimates see only the machine-success (resp.
        // -failure) subset: inflate by the inverse subset fraction.
        let n_ms_subset = sample_size_for_proportion(cp.p_hf_given_ms().value(), margin, level)?;
        let p_ms = cp.p_ms().value();
        let for_p_hf_given_ms = if p_ms > 0.0 {
            (n_ms_subset as f64 / p_ms).ceil() as u64
        } else {
            u64::MAX
        };
        let n_mf_subset = sample_size_for_proportion(cp.p_hf_given_mf().value(), margin, level)?;
        let p_mf = cp.p_mf().value();
        let for_p_hf_given_mf = if p_mf > 0.0 {
            (n_mf_subset as f64 / p_mf).ceil() as u64
        } else {
            u64::MAX
        };
        let req = ClassRequirement {
            class: class.clone(),
            for_p_mf: n_mf,
            for_p_hf_given_ms,
            for_p_hf_given_mf,
        };
        // This class receives `weight` of the cancer cases, so the whole
        // trial needs required/weight cancers for this class to fill up.
        let w = weight.value();
        let needed_total = if w > 0.0 {
            (req.required_cases() as f64 / w).ceil() as u64
        } else {
            u64::MAX
        };
        cancer_cases = cancer_cases.max(needed_total);
        per_class.push(req);
    }
    let total_cases = (cancer_cases as f64 / enriched_prevalence).ceil() as u64;
    Ok(TrialPlan {
        per_class,
        cancer_cases,
        total_cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    #[test]
    fn classic_sample_size_values() {
        // The textbook n = 384 for p=0.5, ±5%, 95%.
        let n = sample_size_for_proportion(0.5, 0.05, 0.95).unwrap();
        assert_eq!(n, 385); // ceil(384.14…)
                            // Smaller p needs fewer cases at the same absolute margin.
        let n_small = sample_size_for_proportion(0.07, 0.05, 0.95).unwrap();
        assert!(n_small < n);
        // Tighter margin, quadratically more cases.
        let n_tight = sample_size_for_proportion(0.5, 0.025, 0.95).unwrap();
        assert!(n_tight >= 4 * n - 4);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(sample_size_for_proportion(0.5, 0.0, 0.95).is_err());
        assert!(sample_size_for_proportion(0.5, 1.0, 0.95).is_err());
        assert!(sample_size_for_proportion(1.5, 0.05, 0.95).is_err());
        assert!(sample_size_for_proportion(0.5, 0.05, 0.0).is_err());
        assert!(sample_size_for_proportion(0.5, 0.05, 1.0).is_err());
    }

    #[test]
    fn conditional_on_rare_event_is_binding() {
        let model = paper::example_model().unwrap();
        let mix = paper::trial_profile().unwrap();
        let plan = plan_trial(&model, &mix, 0.5, 0.03, 0.95).unwrap();
        // For the easy class, PMf = 0.07: the PHf|Mf estimate needs ~14×
        // more cases than the PMf estimate itself.
        let easy = plan
            .per_class
            .iter()
            .find(|r| r.class.name() == "easy")
            .unwrap();
        assert!(easy.for_p_hf_given_mf > 5 * easy.for_p_mf, "{easy:?}");
        assert_eq!(easy.required_cases(), easy.for_p_hf_given_mf);
        // Total cases account for enrichment: at 50% prevalence the total is
        // twice the cancer count.
        assert_eq!(plan.total_cases, plan.cancer_cases * 2);
        assert!(plan.cancer_cases > 0);
    }

    #[test]
    fn rarer_class_forces_bigger_trials() {
        let model = paper::example_model().unwrap();
        let balanced = paper::trial_profile().unwrap(); // 80/20
        let skewed = hmdiv_core::DemandProfile::builder()
            .class("easy", 0.98)
            .class("difficult", 0.02)
            .build()
            .unwrap();
        let plan_balanced = plan_trial(&model, &balanced, 0.5, 0.03, 0.95).unwrap();
        let plan_skewed = plan_trial(&model, &skewed, 0.5, 0.03, 0.95).unwrap();
        assert!(plan_skewed.cancer_cases > plan_balanced.cancer_cases);
    }

    #[test]
    fn plan_validation() {
        let model = paper::example_model().unwrap();
        let mix = paper::trial_profile().unwrap();
        assert!(plan_trial(&model, &mix, 0.0, 0.03, 0.95).is_err());
        assert!(plan_trial(&model, &mix, 1.5, 0.03, 0.95).is_err());
        let ghost = hmdiv_core::DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(plan_trial(&model, &ghost, 0.5, 0.03, 0.95).is_err());
    }

    #[test]
    fn planned_trial_actually_achieves_the_margin() {
        // Close the loop: size a trial by the plan, simulate it with the
        // table-driven sampler, and check the achieved CI half-widths.
        use hmdiv_prob::estimate::CiMethod;
        use rand::SeedableRng;
        let model = paper::example_model().unwrap();
        let mix = paper::trial_profile().unwrap();
        let margin = 0.05;
        let plan = plan_trial(&model, &mix, 1.0, margin, 0.95).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(606);
        let counts =
            hmdiv_sim::table_driven::simulate(&model, &mix, plan.cancer_cases, &mut rng).unwrap();
        let est =
            crate::estimate::estimate_stratified(&counts, CiMethod::Wilson, 0.95, false).unwrap();
        for class in &est.classes {
            for (name, ci) in [
                ("PMf", &class.p_mf_ci),
                ("PHf|Ms", &class.p_hf_given_ms_ci),
                ("PHf|Mf", &class.p_hf_given_mf_ci),
            ] {
                assert!(
                    ci.width() / 2.0 <= margin * 1.15,
                    "{}/{name}: half-width {}",
                    class.class,
                    ci.width() / 2.0
                );
            }
        }
    }
}
