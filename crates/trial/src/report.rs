//! Paper-style table formatting.
//!
//! Renders parameter tables and prediction tables in the layout of the
//! paper's §5, for the `repro` binary and examples. Formatting only — no
//! statistics happen here.

use std::fmt::Write as _;

use hmdiv_core::{DemandProfile, ModelError, SequentialModel};

use crate::estimate::EstimatedParams;

/// Renders table 1 of the paper: demand profiles and model parameters per
/// class.
///
/// # Errors
///
/// [`ModelError::MissingClass`] if a profile class has no parameters.
pub fn render_table1(
    model: &SequentialModel,
    trial: &DemandProfile,
    field: &DemandProfile,
) -> Result<String, ModelError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "class", "p(trial)", "p(field)", "PMf", "PMs", "PHf|Mf", "PHf|Ms"
    );
    for (class, w_trial) in trial.iter() {
        let cp = model.params().class(class)?;
        let w_field = field.weight(class.name()).map(|p| p.value()).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2}",
            class.name(),
            w_trial.value(),
            w_field,
            cp.p_mf().value(),
            cp.p_ms().value(),
            cp.p_hf_given_mf().value(),
            cp.p_hf_given_ms().value(),
        );
    }
    // The universe manifest travels with every exported table so a foreign
    // consumer can verify index-space compatibility instead of re-interning.
    let manifest = hmdiv_core::UniverseManifest::of(model.compiled().universe());
    let _ = writeln!(
        out,
        "universe: {} classes, hash {:016x}",
        manifest.classes().len(),
        manifest.hash()
    );
    // Same verdict the serve admission gate computes, so an exported table
    // records whether its parameters carried diagnostics.
    let compiled = model.compiled();
    let mut report = hmdiv_analyze::analyze_model(compiled, None);
    for (profile, label) in [(trial, "trial profile: "), (field, "field profile: ")] {
        let bound = compiled.bind_profile(profile)?;
        report.merge_prefixed(
            hmdiv_analyze::params::check_profile(compiled.universe(), &bound),
            label,
        );
    }
    let _ = writeln!(out, "static analysis: {}", report.summary_line());
    for diagnostic in report.diagnostics() {
        if diagnostic.severity > hmdiv_analyze::Severity::Info {
            let _ = writeln!(out, "  {diagnostic}");
        }
    }
    Ok(out)
}

/// Renders table 2/3 of the paper: per-class and all-cases failure
/// probabilities under the trial and field profiles.
///
/// # Errors
///
/// [`ModelError::MissingClass`] if a profile class has no parameters.
pub fn render_failure_table(
    model: &SequentialModel,
    trial: &DemandProfile,
    field: &DemandProfile,
) -> Result<String, ModelError> {
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:>12}", "class", "P(failure)");
    for (class, _) in trial.iter() {
        let _ = writeln!(
            out,
            "{:<14} {:>12.3}",
            format!("{} cases", class.name()),
            model.class_failure(class)?.value()
        );
    }
    // Both profile evaluations go through one lane-blocked batch call
    // (bit-identical to two separate `system_failure` calls).
    let compiled = model.compiled();
    let bound = [compiled.bind_profile(trial)?, compiled.bind_profile(field)?];
    let failures = compiled.evaluate_profiles(&bound);
    let _ = writeln!(
        out,
        "{:<14} {:>12.3} (trial)  {:>8.3} (field)",
        "all cases",
        failures[0].value(),
        failures[1].value()
    );
    Ok(out)
}

/// Renders estimated parameters with confidence intervals.
#[must_use]
pub fn render_estimates(estimates: &EstimatedParams) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>22} {:>22} {:>22}",
        "class", "cases", "PMf", "PHf|Ms", "PHf|Mf"
    );
    for est in &estimates.classes {
        let fmt_ci = |point: f64, ci: &hmdiv_prob::estimate::ConfidenceInterval| {
            format!(
                "{:.3} [{:.3},{:.3}]",
                point,
                ci.lo().value(),
                ci.hi().value()
            )
        };
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>22} {:>22} {:>22}",
            est.class.name(),
            est.cases,
            fmt_ci(est.point.p_mf().value(), &est.p_mf_ci),
            fmt_ci(est.point.p_hf_given_ms().value(), &est.p_hf_given_ms_ci),
            fmt_ci(est.point.p_hf_given_mf().value(), &est.p_hf_given_mf_ci),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    #[test]
    fn table1_contains_paper_values() {
        let s = render_table1(
            &paper::example_model().unwrap(),
            &paper::trial_profile().unwrap(),
            &paper::field_profile().unwrap(),
        )
        .unwrap();
        assert!(s.contains("easy"), "{s}");
        assert!(s.contains("0.07"), "{s}");
        assert!(s.contains("0.41"), "{s}");
        assert!(s.contains("0.90"), "{s}");
        assert!(s.contains("static analysis: clean"), "{s}");
    }

    #[test]
    fn table1_footer_surfaces_warnings() {
        use hmdiv_core::{ClassParams, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        // PHf|Mf < PHf|Ms inverts the coherence index -> HM025 warning.
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("odd", ClassParams::new(p(0.3), p(0.4), p(0.1)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("odd", 1.0).build().unwrap();
        let s = render_table1(&model, &profile, &profile).unwrap();
        assert!(s.contains("HM025"), "{s}");
        assert!(!s.contains("clean"), "{s}");
    }

    #[test]
    fn failure_table_matches_paper_rounding() {
        let s = render_failure_table(
            &paper::example_model().unwrap(),
            &paper::trial_profile().unwrap(),
            &paper::field_profile().unwrap(),
        )
        .unwrap();
        assert!(s.contains("0.143"), "{s}");
        assert!(s.contains("0.605"), "{s}");
        assert!(s.contains("0.235"), "{s}");
        assert!(s.contains("0.189"), "{s}");
    }

    #[test]
    fn estimates_render_with_intervals() {
        use crate::estimate::estimate_stratified;
        use hmdiv_core::ClassId;
        use hmdiv_prob::counts::StratifiedCounts;
        use hmdiv_prob::estimate::CiMethod;
        let mut counts: StratifiedCounts<ClassId> = StratifiedCounts::new();
        for i in 0..200u32 {
            counts.record(ClassId::new("easy"), i % 10 == 0, i % 7 == 0);
        }
        let est = estimate_stratified(&counts, CiMethod::Wilson, 0.95, true).unwrap();
        let s = render_estimates(&est);
        assert!(s.contains("easy"), "{s}");
        assert!(s.contains('['), "intervals rendered: {s}");
        assert!(s.contains("200"), "case counts rendered: {s}");
    }

    #[test]
    fn missing_class_is_error() {
        let profile = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(render_table1(
            &paper::example_model().unwrap(),
            &profile,
            &paper::field_profile().unwrap()
        )
        .is_err());
    }
}
