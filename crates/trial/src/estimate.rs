//! Parameter estimation from trial tables.
//!
//! For each class of cancer cases the trial yields a 2×2 table of (machine,
//! human) outcomes; the estimators produce the sequential model's parameter
//! triple with confidence intervals, and optionally full Beta posteriors for
//! uncertainty propagation.

use serde::{Deserialize, Serialize};

use hmdiv_core::interval::{ClassParamBox, IntervalModel};
use hmdiv_core::uncertainty::{ClassPosterior, ModelPosterior};
use hmdiv_core::{
    ClassId, ClassParams, ClassUniverse, DemandProfile, ModelParams, SequentialModel,
};
use hmdiv_prob::counts::{JointCounts, StratifiedCounts};
use hmdiv_prob::estimate::{BinomialEstimate, CiMethod, ConfidenceInterval};

use crate::run::TrialData;
use crate::TrialError;

/// One class's estimated parameter triple with confidence intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassEstimate {
    /// The class.
    pub class: ClassId,
    /// Cases observed in this class.
    pub cases: u64,
    /// Point estimates as a [`ClassParams`].
    pub point: ClassParams,
    /// Interval for `PMf(x)`.
    pub p_mf_ci: ConfidenceInterval,
    /// Interval for `PHf|Ms(x)`.
    pub p_hf_given_ms_ci: ConfidenceInterval,
    /// Interval for `PHf|Mf(x)`.
    pub p_hf_given_mf_ci: ConfidenceInterval,
}

impl ClassEstimate {
    /// The estimated coherence index `t̂(x)` with a conservative interval
    /// obtained by differencing the component bounds.
    #[must_use]
    pub fn coherence_index(&self) -> (f64, f64, f64) {
        let point = self.point.coherence_index();
        let lo = self.p_hf_given_mf_ci.lo().value() - self.p_hf_given_ms_ci.hi().value();
        let hi = self.p_hf_given_mf_ci.hi().value() - self.p_hf_given_ms_ci.lo().value();
        (lo, point, hi)
    }

    /// This class's confidence intervals as a parameter box for
    /// interval-arithmetic propagation
    /// ([`hmdiv_core::interval::IntervalModel`]).
    #[must_use]
    pub fn param_box(&self) -> ClassParamBox {
        ClassParamBox {
            p_mf: (self.p_mf_ci.lo(), self.p_mf_ci.hi()),
            p_hf_given_ms: (self.p_hf_given_ms_ci.lo(), self.p_hf_given_ms_ci.hi()),
            p_hf_given_mf: (self.p_hf_given_mf_ci.lo(), self.p_hf_given_mf_ci.hi()),
        }
    }
}

/// Estimates one class's parameters from its 2×2 table.
///
/// # Errors
///
/// [`TrialError::Inestimable`] naming the parameter whose margin is empty.
pub fn estimate_class(
    class: &ClassId,
    table: &JointCounts,
    method: CiMethod,
    level: f64,
) -> Result<ClassEstimate, TrialError> {
    let inest = |parameter: &'static str| TrialError::Inestimable {
        class: class.name().to_owned(),
        parameter,
    };
    let p_mf: BinomialEstimate = table.p_machine_fails().map_err(|_| inest("PMf"))?;
    let hf_ms = table
        .p_human_fails_given_machine_succeeds()
        .map_err(|_| inest("PHf|Ms"))?;
    let hf_mf = table
        .p_human_fails_given_machine_fails()
        .map_err(|_| inest("PHf|Mf"))?;
    Ok(ClassEstimate {
        class: class.clone(),
        cases: table.total(),
        point: ClassParams::new(p_mf.point(), hf_ms.point(), hf_mf.point()),
        p_mf_ci: p_mf.interval(method, level).map_err(TrialError::from)?,
        p_hf_given_ms_ci: hf_ms.interval(method, level).map_err(TrialError::from)?,
        p_hf_given_mf_ci: hf_mf.interval(method, level).map_err(TrialError::from)?,
    })
}

/// The full estimation product of a trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedParams {
    /// Per-class estimates, in class order.
    pub classes: Vec<ClassEstimate>,
    /// The confidence level used.
    pub level: f64,
}

impl EstimatedParams {
    /// The point-estimate model.
    ///
    /// # Errors
    ///
    /// [`TrialError::Model`] if no classes were estimated.
    pub fn point_model(&self) -> Result<SequentialModel, TrialError> {
        let mut builder = ModelParams::builder();
        for est in &self.classes {
            builder = builder.class(est.class.clone(), est.point);
        }
        Ok(SequentialModel::new(
            builder.build().map_err(TrialError::from)?,
        ))
    }

    /// The estimate for a class, if present.
    #[must_use]
    pub fn class(&self, name: &str) -> Option<&ClassEstimate> {
        self.classes.iter().find(|e| e.class.name() == name)
    }

    /// The interned universe of the estimated classes. Identical to the
    /// universe of [`EstimatedParams::point_model`]'s compiled form, so
    /// downstream consumers can check coverage without building the model.
    #[must_use]
    pub fn universe(&self) -> ClassUniverse {
        ClassUniverse::from_names(self.classes.iter().map(|e| e.class.clone()))
    }

    /// The interval model built from every class's confidence intervals —
    /// input to guaranteed-bounds prediction via
    /// [`hmdiv_core::interval::IntervalModel::system_failure_bounds`].
    ///
    /// # Errors
    ///
    /// Propagates box-validation errors (never occur for well-formed CIs).
    pub fn interval_model(&self) -> Result<IntervalModel, TrialError> {
        let mut im = IntervalModel::new();
        for est in &self.classes {
            im = im
                .with_class(est.class.clone(), est.param_box())
                .map_err(TrialError::from)?;
        }
        Ok(im)
    }

    /// The *trial's* empirical demand profile over the estimated classes —
    /// usually **not** the field profile; that is the point of §5.
    ///
    /// # Errors
    ///
    /// [`TrialError::Model`] if no classes were estimated.
    pub fn trial_profile(&self) -> Result<DemandProfile, TrialError> {
        let pairs = self
            .classes
            .iter()
            .map(|e| (e.class.clone(), e.cases as f64))
            .collect::<Vec<_>>();
        DemandProfile::from_weights(pairs).map_err(TrialError::from)
    }
}

/// Estimates all cancer-side classes of a trial.
///
/// Classes whose tables leave a conditional inestimable are skipped when
/// `skip_inestimable` is true, and reported as errors otherwise.
///
/// # Errors
///
/// * [`TrialError::Inestimable`] (unless skipping) for sparse classes.
/// * [`TrialError::Model`] if nothing is estimable at all.
pub fn estimate_trial(
    data: &TrialData,
    method: CiMethod,
    level: f64,
    skip_inestimable: bool,
) -> Result<EstimatedParams, TrialError> {
    estimate_stratified(data.report.cancer_counts(), method, level, skip_inestimable)
}

/// As [`estimate_trial`], but over any stratified tables (e.g. the normal
/// side for false-positive modelling).
///
/// # Errors
///
/// As [`estimate_trial`].
pub fn estimate_stratified(
    counts: &StratifiedCounts<ClassId>,
    method: CiMethod,
    level: f64,
    skip_inestimable: bool,
) -> Result<EstimatedParams, TrialError> {
    let mut classes = Vec::new();
    for (class, table) in counts.iter() {
        match estimate_class(class, table, method, level) {
            Ok(est) => classes.push(est),
            Err(e @ TrialError::Inestimable { .. }) if skip_inestimable => {
                let _ = e; // deliberately skipped: not enough data for this class
            }
            Err(e) => return Err(e),
        }
    }
    if classes.is_empty() {
        return Err(TrialError::Model(hmdiv_core::ModelError::Empty {
            context: "estimable class set",
        }));
    }
    Ok(EstimatedParams { classes, level })
}

/// Builds Beta posteriors (Jeffreys prior) for every estimable class — the
/// input to [`hmdiv_core::uncertainty::propagate`].
///
/// # Errors
///
/// As [`estimate_trial`].
pub fn posterior_from_trial(data: &TrialData) -> Result<ModelPosterior, TrialError> {
    let mut posterior = ModelPosterior::new();
    for (class, table) in data.report.cancer_counts().iter() {
        let ms_total = table.ms_hs + table.ms_hf;
        let mf_total = table.mf_hs + table.mf_hf;
        if table.total() == 0 {
            continue;
        }
        let cp = ClassPosterior::from_counts(
            (table.machine_failures(), table.total()),
            (table.ms_hf, ms_total),
            (table.mf_hf, mf_total),
        )
        .map_err(TrialError::from)?;
        posterior = posterior.with_class(class.clone(), cp);
    }
    if posterior.is_empty() {
        return Err(TrialError::Model(hmdiv_core::ModelError::Empty {
            context: "posterior class set",
        }));
    }
    Ok(posterior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::TrialDesign;
    use crate::run::run_trial;
    use hmdiv_sim::scenario;

    fn trial_data(cases: u64, seed: u64) -> TrialData {
        let world = scenario::default_world().unwrap();
        let design = TrialDesign::new("est", cases, 0.5, seed).unwrap();
        run_trial(&world, &design).unwrap()
    }

    #[test]
    fn estimates_cover_known_structure() {
        let data = trial_data(40_000, 21);
        let est = estimate_trial(&data, CiMethod::Wilson, 0.95, true).unwrap();
        assert!(est.class("easy").is_some());
        assert!(est.class("difficult").is_some());
        let easy = est.class("easy").unwrap();
        let hard = est.class("difficult").unwrap();
        // The simulator's difficult class is harder for the machine…
        assert!(hard.point.p_mf() > easy.point.p_mf());
        // …and its coherence interval is informative.
        let (lo, point, hi) = hard.coherence_index();
        assert!(lo <= point && point <= hi);
    }

    #[test]
    fn point_model_predicts_trial_failure_rate() {
        let data = trial_data(60_000, 22);
        let est = estimate_trial(&data, CiMethod::Wilson, 0.95, true).unwrap();
        let model = est.point_model().unwrap();
        let profile = est.trial_profile().unwrap();
        let predicted = model.system_failure(&profile).unwrap();
        let observed = data.report.fn_rate().unwrap();
        // Same data both sides: should agree tightly.
        assert!(
            (predicted.value() - observed.value()).abs() < 0.01,
            "{} vs {}",
            predicted.value(),
            observed.value()
        );
    }

    #[test]
    fn small_trials_may_skip_sparse_classes() {
        let data = trial_data(60, 23);
        // With skipping, estimation still returns something (or a clean
        // error if literally nothing is estimable).
        match estimate_trial(&data, CiMethod::Wilson, 0.95, true) {
            Ok(est) => assert!(!est.classes.is_empty()),
            Err(TrialError::Model(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn strict_mode_reports_inestimable() {
        // Construct a table with no machine failures for some class.
        let mut counts: StratifiedCounts<ClassId> = StratifiedCounts::new();
        for _ in 0..50 {
            counts.record(ClassId::new("odd"), false, false);
        }
        let err = estimate_stratified(&counts, CiMethod::Wilson, 0.95, false).unwrap_err();
        assert!(
            matches!(
                err,
                TrialError::Inestimable {
                    parameter: "PHf|Mf",
                    ..
                }
            ),
            "{err}"
        );
        // Skipping yields the empty-set model error instead.
        assert!(matches!(
            estimate_stratified(&counts, CiMethod::Wilson, 0.95, true),
            Err(TrialError::Model(_))
        ));
    }

    #[test]
    fn interval_model_brackets_point_prediction() {
        let data = trial_data(30_000, 26);
        let est = estimate_trial(&data, CiMethod::Wilson, 0.95, true).unwrap();
        let im = est.interval_model().unwrap();
        let profile = est.trial_profile().unwrap();
        let point = est.point_model().unwrap().system_failure(&profile).unwrap();
        let (lo, hi) = im.system_failure_bounds(&profile).unwrap();
        assert!(
            lo <= point && point <= hi,
            "{} in [{}, {}]",
            point.value(),
            lo.value(),
            hi.value()
        );
        assert!(
            hi.value() - lo.value() < 0.2,
            "bounds informative at this size"
        );
        // More data narrows the guaranteed bounds.
        let big = trial_data(120_000, 27);
        let est_big = estimate_trial(&big, CiMethod::Wilson, 0.95, true).unwrap();
        let (lo2, hi2) = est_big
            .interval_model()
            .unwrap()
            .system_failure_bounds(&est_big.trial_profile().unwrap())
            .unwrap();
        assert!(hi2.value() - lo2.value() < hi.value() - lo.value());
    }

    #[test]
    fn posterior_construction() {
        let data = trial_data(20_000, 24);
        let posterior = posterior_from_trial(&data).unwrap();
        assert!(posterior.len() >= 2);
        let mean = posterior.mean_model().unwrap();
        assert!(mean.params().class_by_name("easy").is_ok());
    }

    #[test]
    fn universe_matches_point_model() {
        let data = trial_data(40_000, 28);
        let est = estimate_trial(&data, CiMethod::Wilson, 0.95, true).unwrap();
        let universe = est.universe();
        let model = est.point_model().unwrap();
        assert_eq!(model.compiled().universe().classes(), universe.classes());
        for e in &est.classes {
            assert!(universe.contains(e.class.name()));
        }
    }

    #[test]
    fn wider_level_wider_intervals() {
        let data = trial_data(20_000, 25);
        let e90 = estimate_trial(&data, CiMethod::Wilson, 0.90, true).unwrap();
        let e99 = estimate_trial(&data, CiMethod::Wilson, 0.99, true).unwrap();
        let w90 = e90.class("easy").unwrap().p_mf_ci.width();
        let w99 = e99.class("easy").unwrap().p_mf_ci.width();
        assert!(w99 > w90);
    }
}
