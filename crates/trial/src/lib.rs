//! Trial and evaluation harness for the `hmdiv` workspace.
//!
//! The paper's methodology runs in three steps: measure per-class
//! conditional probabilities in a *controlled trial* (necessarily enriched
//! in cancers), plug them into the clear-box model, and *extrapolate* to the
//! field demand profile. This crate automates that pipeline against the
//! simulator:
//!
//! * [`design`] — trial specifications (size, enrichment, seed).
//! * [`run`] — execute a trial of a simulated [`World`] and collect the
//!   stratified outcome tables.
//! * [`estimate`] — turn tables into per-class parameter estimates with
//!   confidence intervals (Wilson by default) and Bayesian posteriors.
//! * [`extrapolate`] — the end-to-end validation loop: trial → estimate →
//!   predict field dependability → compare against a direct field
//!   simulation. This is the experiment the paper could only argue for;
//!   the simulator lets us close the loop.
//! * [`report`] — paper-style table formatting.
//!
//! [`World`]: hmdiv_sim::engine::World
//!
//! # Example
//!
//! ```
//! use hmdiv_trial::{design::TrialDesign, run::run_trial};
//! use hmdiv_sim::scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let world = scenario::default_world()?;
//! let design = TrialDesign::new("smoke", 4_000, 0.5, 42)?;
//! let data = run_trial(&world, &design)?;
//! assert!(data.report.cancer_cases() > 1_000);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod coverage;
pub mod design;
mod error;
pub mod estimate;
pub mod extrapolate;
pub mod power;
pub mod report;
pub mod run;

pub use error::TrialError;
