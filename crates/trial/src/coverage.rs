//! Empirical coverage validation of the interval estimators.
//!
//! A confidence-interval method is only trustworthy if, over repeated
//! trials, it covers the true parameter at (at least) its nominal rate.
//! This module replays many simulated trials against a known ground-truth
//! model and tallies coverage per parameter — the calibration experiment a
//! real screening programme could never afford to run.

use rand::Rng;

use hmdiv_core::{DemandProfile, SequentialModel};
use hmdiv_prob::estimate::CiMethod;
use hmdiv_sim::table_driven;

use crate::estimate::estimate_stratified;
use crate::TrialError;

/// Coverage tallies for one parameter of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRecord {
    /// Class name.
    pub class: String,
    /// Parameter name (`"PMf"`, `"PHf|Ms"`, `"PHf|Mf"`).
    pub parameter: &'static str,
    /// Number of replications where the parameter was estimable.
    pub attempts: u64,
    /// Number of replications whose interval covered the truth.
    pub covered: u64,
}

impl CoverageRecord {
    /// The empirical coverage rate, or `None` with no attempts.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.covered as f64 / self.attempts as f64)
    }
}

/// Runs `replications` simulated trials of `cases_per_trial` cases each and
/// tallies how often the `method` intervals at `level` cover the true
/// parameters of `model`.
///
/// # Errors
///
/// * [`TrialError::InvalidDesign`] if `replications` or `cases_per_trial`
///   is zero.
/// * Simulation/estimation errors.
pub fn coverage_experiment<R: Rng + ?Sized>(
    model: &SequentialModel,
    profile: &DemandProfile,
    cases_per_trial: u64,
    replications: u64,
    method: CiMethod,
    level: f64,
    rng: &mut R,
) -> Result<Vec<CoverageRecord>, TrialError> {
    if replications == 0 {
        return Err(TrialError::InvalidDesign {
            value: 0.0,
            context: "replication count",
        });
    }
    if cases_per_trial == 0 {
        return Err(TrialError::InvalidDesign {
            value: 0.0,
            context: "cases per trial",
        });
    }
    let mut records: Vec<CoverageRecord> = Vec::new();
    let mut bump = |class: &str, parameter: &'static str, covered: bool| {
        if let Some(rec) = records
            .iter_mut()
            .find(|r| r.class == class && r.parameter == parameter)
        {
            rec.attempts += 1;
            rec.covered += u64::from(covered);
        } else {
            records.push(CoverageRecord {
                class: class.to_owned(),
                parameter,
                attempts: 1,
                covered: u64::from(covered),
            });
        }
    };
    for _ in 0..replications {
        let counts = table_driven::simulate(model, profile, cases_per_trial, rng)
            .map_err(TrialError::from)?;
        let Ok(estimates) = estimate_stratified(&counts, method, level, true) else {
            continue; // trial too sparse to estimate anything: skip
        };
        for est in &estimates.classes {
            let truth = model.params().class(&est.class).map_err(TrialError::from)?;
            bump(est.class.name(), "PMf", est.p_mf_ci.contains(truth.p_mf()));
            bump(
                est.class.name(),
                "PHf|Ms",
                est.p_hf_given_ms_ci.contains(truth.p_hf_given_ms()),
            );
            bump(
                est.class.name(),
                "PHf|Mf",
                est.p_hf_given_mf_ci.contains(truth.p_hf_given_mf()),
            );
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wilson_coverage_near_nominal() {
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(404);
        let records = coverage_experiment(
            &model,
            &profile,
            2_000,
            300,
            CiMethod::Wilson,
            0.95,
            &mut rng,
        )
        .unwrap();
        assert!(!records.is_empty());
        for rec in &records {
            let rate = rec.rate().unwrap();
            // 300 replications: 3σ of a 95% coverage estimate is ~0.038.
            assert!(
                rate > 0.90,
                "{}/{}: coverage {rate} over {} attempts",
                rec.class,
                rec.parameter,
                rec.attempts
            );
        }
    }

    #[test]
    fn clopper_pearson_is_conservative() {
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(405);
        let records = coverage_experiment(
            &model,
            &profile,
            1_000,
            200,
            CiMethod::ClopperPearson,
            0.90,
            &mut rng,
        )
        .unwrap();
        for rec in &records {
            // Exact intervals must cover at least nominally (minus MC noise).
            assert!(rec.rate().unwrap() > 0.86, "{rec:?}");
        }
    }

    #[test]
    fn wald_undercovers_on_sparse_conditionals() {
        // The comparison that justifies Wilson as the default: at small
        // machine-failure counts Wald's coverage of PHf|Mf dips visibly.
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(406);
        let wald = coverage_experiment(&model, &profile, 300, 300, CiMethod::Wald, 0.95, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(406);
        let wilson =
            coverage_experiment(&model, &profile, 300, 300, CiMethod::Wilson, 0.95, &mut rng)
                .unwrap();
        let rate = |recs: &[CoverageRecord], class: &str, param: &str| {
            recs.iter()
                .find(|r| r.class == class && r.parameter == param)
                .and_then(CoverageRecord::rate)
                .unwrap_or(0.0)
        };
        // Easy class has PMf = 0.07: at 300 trial cases only ~17 machine
        // failures per trial, where Wald misbehaves.
        let wald_rate = rate(&wald, "easy", "PHf|Mf");
        let wilson_rate = rate(&wilson, "easy", "PHf|Mf");
        assert!(
            wilson_rate >= wald_rate,
            "wilson {wilson_rate} should not undercover relative to wald {wald_rate}"
        );
        assert!(wilson_rate > 0.88, "{wilson_rate}");
    }

    #[test]
    fn validation_errors() {
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(
            coverage_experiment(&model, &profile, 0, 10, CiMethod::Wilson, 0.95, &mut rng).is_err()
        );
        assert!(
            coverage_experiment(&model, &profile, 10, 0, CiMethod::Wilson, 0.95, &mut rng).is_err()
        );
    }
}
