use std::error::Error;
use std::fmt;

use hmdiv_core::ModelError;
use hmdiv_prob::ProbError;
use hmdiv_sim::SimError;

/// Error type for the trial harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrialError {
    /// A design parameter was invalid.
    InvalidDesign {
        /// The offending value.
        value: f64,
        /// What it configures.
        context: &'static str,
    },
    /// A class had too little data to estimate a required conditional.
    Inestimable {
        /// The class name.
        class: String,
        /// Which parameter could not be estimated.
        parameter: &'static str,
    },
    /// An underlying simulation failed.
    Sim(SimError),
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying probability operation failed.
    Prob(ProbError),
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::InvalidDesign { value, context } => {
                write!(f, "invalid trial design {context}: {value}")
            }
            TrialError::Inestimable { class, parameter } => {
                write!(
                    f,
                    "class `{class}` has too little data to estimate {parameter}"
                )
            }
            TrialError::Sim(e) => write!(f, "simulation error: {e}"),
            TrialError::Model(e) => write!(f, "model error: {e}"),
            TrialError::Prob(e) => write!(f, "probability error: {e}"),
        }
    }
}

impl Error for TrialError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrialError::Sim(e) => Some(e),
            TrialError::Model(e) => Some(e),
            TrialError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for TrialError {
    fn from(e: SimError) -> Self {
        TrialError::Sim(e)
    }
}

impl From<ModelError> for TrialError {
    fn from(e: ModelError) -> Self {
        TrialError::Model(e)
    }
}

impl From<ProbError> for TrialError {
    fn from(e: ProbError) -> Self {
        TrialError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let errors: Vec<TrialError> = vec![
            TrialError::InvalidDesign {
                value: -1.0,
                context: "case count",
            },
            TrialError::Inestimable {
                class: "difficult".into(),
                parameter: "PHf|Mf",
            },
            TrialError::Sim(SimError::EmptyRun { context: "cases" }),
            TrialError::Model(ModelError::Empty { context: "profile" }),
            TrialError::Prob(ProbError::Empty { context: "weights" }),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(errors[2].source().is_some());
        assert!(errors[0].source().is_none());
    }
}
