//! Property-based tests of the trial harness over random ground truths:
//! the estimate → predict loop must be consistent for ANY generating model,
//! and the planner's guarantees must hold wherever they are claimed.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv_core::{ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::estimate::CiMethod;
use hmdiv_prob::Probability;
use hmdiv_trial::estimate::estimate_stratified;
use hmdiv_trial::power::sample_size_for_proportion;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

fn interior() -> impl Strategy<Value = f64> {
    0.05..=0.95f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn estimation_recovers_any_generating_model(
        mf_a in interior(), ms_a in interior(), mfc_a in interior(),
        mf_b in interior(), ms_b in interior(), mfc_b in interior(),
        w in 0.2..=0.8f64, seed in 0u64..500
    ) {
        let truth = SequentialModel::new(
            ModelParams::builder()
                .class("a", ClassParams::new(p(mf_a), p(ms_a), p(mfc_a)))
                .class("b", ClassParams::new(p(mf_b), p(ms_b), p(mfc_b)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("a", w).class("b", 1.0 - w).build().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts =
            hmdiv_sim::table_driven::simulate(&truth, &profile, 40_000, &mut rng).unwrap();
        let est = estimate_stratified(&counts, CiMethod::Wilson, 0.99, true).unwrap();
        // At the 99% level, individual interval misses still happen at ~1%
        // per interval — so assert coverage of the SET, not of each
        // interval. Allowing up to two of six misses keeps the per-case
        // false-alarm rate near C(6,3)·0.01³ ≈ 2e-5 (vs ~1.5e-3 for the
        // ≤1 bound, which flakes at ~3% over 24 cases), while still
        // catching any systematic under-coverage.
        let mut misses = 0;
        for ce in &est.classes {
            let t = truth.params().class(&ce.class).unwrap();
            misses += i32::from(!ce.p_mf_ci.contains(t.p_mf()));
            misses += i32::from(!ce.p_hf_given_ms_ci.contains(t.p_hf_given_ms()));
            misses += i32::from(!ce.p_hf_given_mf_ci.contains(t.p_hf_given_mf()));
            prop_assert!((ce.point.p_mf().value() - t.p_mf().value()).abs() < 0.05);
            prop_assert!(
                (ce.point.p_hf_given_ms().value() - t.p_hf_given_ms().value()).abs() < 0.07
            );
            prop_assert!(
                (ce.point.p_hf_given_mf().value() - t.p_hf_given_mf().value()).abs() < 0.07
            );
        }
        prop_assert!(misses <= 2, "{misses} of 6 intervals missed at the 99% level");
        // The point model's prediction of the generating profile's failure
        // rate lands near the truth's.
        let fitted = est.point_model().unwrap();
        let a = fitted.system_failure(&profile).unwrap().value();
        let b = truth.system_failure(&profile).unwrap().value();
        prop_assert!((a - b).abs() < 0.02, "{a} vs {b}");
        // Interval bounds bracket both.
        let (lo, hi) = est
            .interval_model()
            .unwrap()
            .system_failure_bounds(&profile)
            .unwrap();
        prop_assert!(lo.value() <= a + 1e-12 && a <= hi.value() + 1e-12);
    }

    #[test]
    fn sample_size_monotone_in_margin_and_level(
        prop_p in 0.01..=0.5f64, margin in 0.01..=0.2f64
    ) {
        let n = sample_size_for_proportion(prop_p, margin, 0.95).unwrap();
        let tighter = sample_size_for_proportion(prop_p, margin / 2.0, 0.95).unwrap();
        prop_assert!(tighter >= n, "halving the margin cannot shrink the trial");
        let surer = sample_size_for_proportion(prop_p, margin, 0.99).unwrap();
        prop_assert!(surer >= n, "raising the level cannot shrink the trial");
    }

    #[test]
    fn sample_size_delivers_wald_margin(prop_p in 0.05..=0.5f64, margin in 0.02..=0.1f64) {
        // At the planned n, the Wald half-width at the anticipated p is
        // within the margin.
        let n = sample_size_for_proportion(prop_p, margin, 0.95).unwrap();
        let half = 1.959_963_984_540_054
            * (prop_p * (1.0 - prop_p) / n as f64).sqrt();
        prop_assert!(half <= margin * (1.0 + 1e-9), "{half} > {margin}");
    }
}
