//! End-to-end tests for request-lifecycle tracing over a loopback socket:
//! trace-id round-trips, flight-recorder drain ordering, shed capture
//! (`overloaded` / `deadline_exceeded`) with automatic dump files, and —
//! the invariant everything else hangs off — bit-identity of trace-enabled
//! replies against direct in-process evaluation under concurrent load.

use std::path::PathBuf;
use std::sync::Arc;

use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{paper, ClassId};
use hmdiv_serve::{json, Client, Json, ServeError, Server, ServerConfig};

/// The paper's Table 2 parameter table, as a `load` request body member.
fn paper_classes() -> (String, Json) {
    (
        "classes".to_owned(),
        json::parse(
            r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
        )
        .expect("static JSON"),
    )
}

/// The paper's field demand profile as a wire object.
fn field_profile() -> (String, Json) {
    (
        "profile".to_owned(),
        json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
    )
}

fn start_traced(capacity: usize) -> Server {
    Server::start(ServerConfig {
        trace_capacity: capacity,
        ..ServerConfig::default()
    })
    .expect("server start")
}

fn load_paper_model(client: &mut Client) -> String {
    let receipt = client
        .request("load", vec![paper_classes()])
        .expect("load should succeed");
    receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned()
}

/// Drains the flight recorder with the `trace` verb and returns the
/// records array.
fn drain_records(client: &mut Client) -> Vec<Json> {
    let report = client.request("trace", vec![]).expect("trace verb");
    report
        .get("records")
        .and_then(Json::as_arr)
        .expect("records array")
        .to_vec()
}

#[test]
fn trace_verb_is_rejected_when_tracing_is_disabled() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.request("trace", vec![]).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "trace_disabled"
    ));
    server.shutdown();
}

#[test]
fn client_supplied_trace_ids_echo_even_without_tracing() {
    // With tracing off the server mints nothing, but a caller-supplied
    // correlation id still comes back on the response envelope.
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let responses = client
        .pipeline_traced(vec![
            (
                "ping".to_owned(),
                vec![("trace_id".to_owned(), Json::str("00000000000000ff"))],
            ),
            ("ping".to_owned(), vec![]),
        ])
        .unwrap();
    assert_eq!(responses[0].trace_id.as_deref(), Some("00000000000000ff"));
    assert!(responses[0].result.is_ok());
    assert_eq!(responses[1].trace_id, None, "no id supplied, none echoed");
    server.shutdown();
}

#[test]
fn malformed_trace_ids_are_rejected() {
    let server = start_traced(8);
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .request("ping", vec![("trace_id".to_owned(), Json::str("xyzzy"))])
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "bad_request"
    ));
    server.shutdown();
}

/// The round-trip at the heart of the tentpole: a client-supplied
/// `trace_id` is echoed on the wire AND names the server-side
/// flight-recorder record, which carries the full stage breakdown.
#[test]
fn trace_id_round_trips_into_the_flight_recorder() {
    let server = start_traced(64);
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);
    let responses = client
        .pipeline_traced(vec![(
            "evaluate".to_owned(),
            vec![
                ("model".to_owned(), Json::str(model_id.as_str())),
                field_profile(),
                ("trace_id".to_owned(), Json::str("00000000000000ff")),
            ],
        )])
        .unwrap();
    assert_eq!(responses[0].trace_id.as_deref(), Some("00000000000000ff"));
    assert!(responses[0].result.is_ok());

    let records = drain_records(&mut client);
    let record = records
        .iter()
        .find(|r| r.get("trace_id").and_then(Json::as_str) == Some("00000000000000ff"))
        .expect("the correlated record is in the ring");
    assert_eq!(record.get("verb").and_then(Json::as_str), Some("evaluate"));
    assert_eq!(
        record.get("model").and_then(Json::as_str),
        Some(model_id.as_str())
    );
    assert_eq!(record.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(record.get("batch_size").and_then(Json::as_f64), Some(1.0));
    // A batched evaluate passes through every stage of the pipeline.
    let stages = record.get("stages").expect("stages object");
    for stage in [
        "read",
        "parse",
        "queue",
        "batch",
        "eval",
        "serialize",
        "write",
    ] {
        let span = stages
            .get(stage)
            .unwrap_or_else(|| panic!("stage `{stage}` must be stamped"));
        assert!(span.get("start_ns").and_then(Json::as_f64).is_some());
        assert!(span.get("dur_ns").and_then(Json::as_f64).is_some());
    }
    assert!(record.get("total_ns").and_then(Json::as_f64).unwrap() > 0.0);
    // The span tree parents every stage under the root verb span.
    let spans = record.get("spans").and_then(Json::as_arr).unwrap();
    assert_eq!(spans[0].get("parent"), Some(&Json::Null), "root span");
    assert!(spans.len() > 1);
    for child in &spans[1..] {
        assert_eq!(child.get("parent").and_then(Json::as_f64), Some(0.0));
    }
    server.shutdown();
}

/// Records drain oldest-first, minted ids are unique, and a drain empties
/// the ring (the next drain only sees requests issued in between).
#[test]
fn flight_recorder_drains_oldest_first_and_empties() {
    let server = start_traced(64);
    let mut client = Client::connect(server.addr()).unwrap();
    // Distinct client-supplied ids, issued strictly in sequence.
    let ids: Vec<String> = (0x10..0x18_u64).map(|n| format!("{n:016x}")).collect();
    for id in &ids {
        client
            .request(
                "ping",
                vec![("trace_id".to_owned(), Json::str(id.as_str()))],
            )
            .unwrap();
    }
    let records = drain_records(&mut client);
    let seen: Vec<&str> = records
        .iter()
        .filter_map(|r| r.get("trace_id").and_then(Json::as_str))
        .filter(|t| ids.iter().any(|id| id == t))
        .collect();
    assert_eq!(seen, ids, "drain must preserve admission order");

    // The drain consumed the ring: only the `trace` request itself (and
    // anything after) can show up now.
    let records = drain_records(&mut client);
    assert!(
        records
            .iter()
            .filter_map(|r| r.get("trace_id").and_then(Json::as_str))
            .all(|t| ids.iter().all(|id| id != t)),
        "drained records must not reappear"
    );
    server.shutdown();
}

/// The ring keeps the newest `capacity` records; older ones age out but
/// stay counted in `recorded`.
#[test]
fn flight_recorder_ring_overwrites_oldest_at_capacity() {
    let server = start_traced(2);
    let mut client = Client::connect(server.addr()).unwrap();
    for n in 0x20..0x26_u64 {
        client
            .request(
                "ping",
                vec![("trace_id".to_owned(), Json::str(format!("{n:016x}")))],
            )
            .unwrap();
    }
    let report = client.request("trace", vec![]).unwrap();
    assert_eq!(report.get("capacity").and_then(Json::as_f64), Some(2.0));
    assert_eq!(report.get("recorded").and_then(Json::as_f64), Some(6.0));
    let seen: Vec<&str> = report
        .get("records")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("trace_id").and_then(Json::as_str))
        .collect();
    assert_eq!(seen, ["0000000000000024", "0000000000000025"]);
    server.shutdown();
}

/// A scratch dump path that is unique per test, cleaned up on drop.
struct DumpFile(PathBuf);

impl DumpFile {
    fn new(tag: &str) -> DumpFile {
        DumpFile(
            std::env::temp_dir().join(format!("hmdiv_trace_{tag}_{}.json", std::process::id())),
        )
    }
}

impl Drop for DumpFile {
    fn drop(&mut self) {
        drop(std::fs::remove_file(&self.0));
    }
}

/// Saturating a zero-capacity queue sheds with `overloaded`; the shed is
/// captured in the flight recorder with its stage timings and admission
/// queue depth, and the recorder dumps itself to the configured path.
#[test]
fn shed_events_are_recorded_and_dumped() {
    let dump = DumpFile::new("shed");
    let server = Server::start(ServerConfig {
        queue_capacity: 0,
        trace_capacity: 64,
        trace_dump: Some(dump.0.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // `load` is inline (no queue) and must still work while saturated.
    let model_id = load_paper_model(&mut client);
    let err = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "overloaded"
    ));

    // Every shed event lands in the ring with per-stage timings.
    let records = drain_records(&mut client);
    let shed = records
        .iter()
        .find(|r| r.get("outcome").and_then(Json::as_str) == Some("overloaded"))
        .expect("the shed evaluate is recorded");
    assert_eq!(shed.get("verb").and_then(Json::as_str), Some("evaluate"));
    assert_eq!(shed.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    let stages = shed.get("stages").expect("stages object");
    for stage in ["read", "parse", "serialize", "write"] {
        assert!(
            stages.get(stage).is_some(),
            "shed record must still stamp `{stage}`"
        );
    }

    // The shed also triggered an automatic dump: same JSON as the verb.
    let text = std::fs::read_to_string(&dump.0).expect("dump file written on shed");
    let report = json::parse(text.trim()).expect("dump is valid JSON");
    assert!(report
        .get("records")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .any(|r| r.get("outcome").and_then(Json::as_str) == Some("overloaded")));
    assert_eq!(report.get("capacity").and_then(Json::as_f64), Some(64.0));
    server.shutdown();
}

/// An already-expired deadline is captured as `deadline_exceeded` and
/// triggers the dump just like an overload shed.
#[test]
fn deadline_sheds_are_recorded_and_dumped() {
    let dump = DumpFile::new("deadline");
    let server = Server::start(ServerConfig {
        trace_capacity: 64,
        trace_dump: Some(dump.0.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);
    let err = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
                ("deadline_ms".into(), Json::Num(0.0)),
            ],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "deadline_exceeded"
    ));
    let records = drain_records(&mut client);
    assert!(
        records
            .iter()
            .any(|r| r.get("outcome").and_then(Json::as_str) == Some("deadline_exceeded")),
        "deadline shed must be recorded"
    );
    assert!(dump.0.exists(), "deadline shed must trigger a dump");
    server.shutdown();
}

/// The PR-2 invariant, extended to tracing: with the flight recorder on,
/// replies under concurrent, pipelined, batched load from 1, 2, and 7
/// client threads are bit-for-bit the numbers a direct in-process
/// `CompiledModel` evaluation produces. Tracing observes; it never
/// perturbs.
#[test]
fn trace_enabled_replies_are_bit_identical_to_direct_evaluation() {
    let model = paper::example_model().unwrap();
    let compiled = model.compiled();
    let profile = paper::field_profile().unwrap();
    let bound = compiled.bind_profile(&profile).unwrap();
    let expected_eval = compiled.system_failure(&bound).value().to_bits();
    let scenarios: Vec<Scenario> = (1..=4)
        .map(|i| Scenario::new().improve_machine(ClassId::new("difficult"), f64::from(i) * 3.0))
        .collect();
    let expected_scen: Vec<u64> = compiled
        .evaluate_scenarios(&scenarios, &bound)
        .unwrap()
        .iter()
        .map(|p| p.value().to_bits())
        .collect();
    let scenario_wire = json::parse(
        r#"[[{"op":"improve_machine","class":"difficult","factor":3}],
            [{"op":"improve_machine","class":"difficult","factor":6}],
            [{"op":"improve_machine","class":"difficult","factor":9}],
            [{"op":"improve_machine","class":"difficult","factor":12}]]"#,
    )
    .unwrap();

    let server = start_traced(256);
    {
        let mut setup = Client::connect(server.addr()).unwrap();
        load_paper_model(&mut setup);
    }
    let addr = server.addr();
    let expected_scen = Arc::new(expected_scen);

    for client_threads in [1_usize, 2, 7] {
        let workers: Vec<_> = (0..client_threads)
            .map(|_| {
                let scenario_wire = scenario_wire.clone();
                let expected_scen = Arc::clone(&expected_scen);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let model_id = load_paper_model(&mut client);
                    for _round in 0..10 {
                        let mut requests = Vec::new();
                        for _ in 0..5 {
                            requests.push((
                                "evaluate".to_owned(),
                                vec![
                                    ("model".to_owned(), Json::str(model_id.as_str())),
                                    field_profile(),
                                ],
                            ));
                        }
                        requests.push((
                            "scenarios".to_owned(),
                            vec![
                                ("model".to_owned(), Json::str(model_id.as_str())),
                                field_profile(),
                                ("scenarios".to_owned(), scenario_wire.clone()),
                            ],
                        ));
                        let responses = client.pipeline_traced(requests).unwrap();
                        for response in &responses {
                            // Every traced response carries a minted id.
                            let id = response.trace_id.as_deref().expect("minted trace id");
                            assert_eq!(id.len(), 16, "wire ids are 16 hex digits");
                        }
                        for response in &responses[..5] {
                            let failure = response
                                .result
                                .as_ref()
                                .unwrap()
                                .get("failure")
                                .and_then(Json::as_f64)
                                .unwrap();
                            assert_eq!(failure.to_bits(), expected_eval, "evaluate drifted");
                        }
                        let failures: Vec<u64> = responses[5]
                            .result
                            .as_ref()
                            .unwrap()
                            .get("failures")
                            .and_then(Json::as_arr)
                            .unwrap()
                            .iter()
                            .map(|v| v.as_f64().unwrap().to_bits())
                            .collect();
                        assert_eq!(failures, *expected_scen, "scenarios drifted");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client worker panicked");
        }
    }

    // The recorder saw the whole run (350 evaluations + loads + pings
    // exceed the ring; `recorded` counts them all).
    let mut client = Client::connect(addr).unwrap();
    let report = client.request("trace", vec![]).unwrap();
    assert!(report.get("recorded").and_then(Json::as_f64).unwrap() >= 600.0);
    server.shutdown();
}
