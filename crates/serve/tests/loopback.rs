//! End-to-end tests over a real loopback socket: golden request/response
//! fixtures for every verb, wire-error mapping, robustness (malformed
//! input, oversized lines, deadlines, overload), bit-identity against
//! direct in-process evaluation — including under concurrent batched
//! load — and graceful-shutdown draining.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{paper, ClassId, UniverseManifest};
use hmdiv_serve::{json, Client, Json, ServeError, Server, ServerConfig};

/// The paper's Table 2 parameter table, as a `load` request body member.
fn paper_classes() -> (String, Json) {
    (
        "classes".to_owned(),
        json::parse(
            r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
        )
        .expect("static JSON"),
    )
}

/// The paper's field demand profile as a wire object.
fn field_profile() -> (String, Json) {
    (
        "profile".to_owned(),
        json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
    )
}

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("server start")
}

fn load_paper_model(client: &mut Client) -> String {
    let receipt = client
        .request("load", vec![paper_classes()])
        .expect("load should succeed");
    receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned()
}

#[test]
fn golden_fixtures_for_every_verb() {
    // The metrics verb exports whatever the obs layer recorded; recording
    // is off by default, so opt in for this test binary.
    hmdiv_obs::set_enabled(true);
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    // ping
    let pong = client.request("ping", vec![]).unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // load: content-addressed receipt with the interned universe.
    let receipt = client.request("load", vec![paper_classes()]).unwrap();
    let model_id = receipt.get("model_id").and_then(Json::as_str).unwrap();
    assert!(model_id.starts_with('m'));
    let classes: Vec<&str> = receipt
        .get("classes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(classes, ["difficult", "easy"]);
    let expected_hash = UniverseManifest::of(paper::example_model().unwrap().compiled().universe());
    assert_eq!(
        receipt.get("universe_hash").and_then(Json::as_str),
        Some(format!("{:016x}", expected_hash.hash()).as_str())
    );
    let model_id = model_id.to_owned();

    // evaluate: the paper's field estimate, to full double precision.
    let result = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap();
    let direct = {
        let model = paper::example_model().unwrap();
        let compiled = model.compiled();
        let bound = compiled
            .bind_profile(&paper::field_profile().unwrap())
            .unwrap();
        compiled.system_failure(&bound)
    };
    let failure = result.get("failure").and_then(Json::as_f64).unwrap();
    assert_eq!(failure.to_bits(), direct.value().to_bits());
    assert!((failure - 0.18902).abs() < 1e-9);

    // scenarios: a grid of machine improvements.
    let result = client
        .request(
            "scenarios",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
                (
                    "scenarios".into(),
                    json::parse(
                        r#"[[{"op":"improve_machine","class":"difficult","factor":10}],
                            [{"op":"improve_machine_everywhere","factor":2}]]"#,
                    )
                    .unwrap(),
                ),
            ],
        )
        .unwrap();
    let failures = result.get("failures").and_then(Json::as_arr).unwrap();
    assert_eq!(failures.len(), 2);
    // §6.2: improving the machine on difficult demands barely helps — the
    // reader's high coherence there caps the gain.
    assert!(failures[0].as_f64().unwrap() < 0.18902);

    // extrapolate: before/after/improvement in one call.
    let result = client
        .request(
            "extrapolate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
                (
                    "scenario".into(),
                    json::parse(r#"[{"op":"improve_machine","class":"easy","factor":10}]"#)
                        .unwrap(),
                ),
            ],
        )
        .unwrap();
    let before = result.get("before").and_then(Json::as_f64).unwrap();
    let after = result.get("after").and_then(Json::as_f64).unwrap();
    let improvement = result.get("improvement").and_then(Json::as_f64).unwrap();
    assert_eq!(before.to_bits(), direct.value().to_bits());
    assert!(after < before);
    assert!((improvement - (before - after)).abs() < 1e-15);

    // importance: the Fig. 4 lines per class.
    let result = client
        .request(
            "importance",
            vec![("model".into(), Json::str(model_id.as_str()))],
        )
        .unwrap();
    let lines = result.get("lines").and_then(Json::as_arr).unwrap();
    assert_eq!(lines.len(), 2);
    let difficult = lines
        .iter()
        .find(|l| l.get("class").and_then(Json::as_str) == Some("difficult"))
        .unwrap();
    assert!(
        (difficult
            .get("coherence_index")
            .and_then(Json::as_f64)
            .unwrap()
            - 0.5)
            .abs()
            < 1e-12
    );
    assert!((difficult.get("lower_bound").and_then(Json::as_f64).unwrap() - 0.4).abs() < 1e-12);

    // load_cohort + cohort: mean/best/worst/spread plus per-reader rows.
    let receipt = client
        .request(
            "load_cohort",
            vec![(
                "members".into(),
                json::parse(
                    r#"[{"name":"r1","weight":2,
                         "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                                    "difficult":{"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}},
                        {"name":"r2","weight":1,
                         "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.10,"p_hf_given_mf":0.12},
                                    "difficult":{"p_mf":0.41,"p_hf_given_ms":0.30,"p_hf_given_mf":0.55}}}]"#,
                )
                .unwrap(),
            )],
        )
        .unwrap();
    let cohort_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    assert!(cohort_id.starts_with('c'));
    let summary = client
        .request(
            "cohort",
            vec![
                ("cohort".into(), Json::str(cohort_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap();
    let mean = summary.get("mean").and_then(Json::as_f64).unwrap();
    let best = summary.get("best").and_then(Json::as_f64).unwrap();
    let worst = summary.get("worst").and_then(Json::as_f64).unwrap();
    assert!(best <= mean && mean <= worst);
    assert_eq!(summary.get("rows").and_then(Json::as_arr).unwrap().len(), 2);
    // Worst reader first, and r1 is the paper-average (worse) reader.
    assert_eq!(
        summary.get("rows").and_then(Json::as_arr).unwrap()[0]
            .get("name")
            .and_then(Json::as_str),
        Some("r1")
    );

    // models: both artifacts listed.
    let listing = client.request("models", vec![]).unwrap();
    let rows = listing.get("models").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);

    // metrics: Prometheus text with serve counters present, plus the
    // batcher's effective parallelism threshold (env-overridable).
    let metrics = client.request("metrics", vec![]).unwrap();
    let text = metrics.get("prometheus").and_then(Json::as_str).unwrap();
    assert!(text.contains("serve_verb_evaluate"), "got: {text}");
    assert!(text.contains("serve_batch_flushes"), "got: {text}");
    // The satellite batcher metrics, sampled at flush time, and the
    // percentile gauges derived from each histogram.
    assert!(text.contains("hmdiv_serve_queue_depth"), "got: {text}");
    assert!(
        text.contains("hmdiv_serve_batch_size_bucket"),
        "got: {text}"
    );
    assert!(
        text.contains("hmdiv_serve_request_seconds_p99"),
        "got: {text}"
    );
    let threshold = metrics.get("par_threshold").and_then(Json::as_f64).unwrap();
    assert!(threshold > 0.0, "got: {threshold}");
    // Golden JSON shape of the histogram summaries: every histogram
    // carries exactly unit/count/sum/p50/p95/p99, and the serve.*
    // histograms the verbs above produced are present with the right
    // units and ordered percentiles.
    let histograms = metrics.get("histograms").expect("histograms member");
    let obj = histograms.as_obj().expect("histograms is an object");
    assert!(!obj.is_empty(), "histograms must not be empty");
    for (name, h) in obj {
        let members: Vec<&str> = h
            .as_obj()
            .unwrap_or_else(|| panic!("`{name}` must be an object"))
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            members,
            ["unit", "count", "sum", "p50", "p95", "p99"],
            "summary shape drifted for `{name}`"
        );
        let p50 = h.get("p50").and_then(Json::as_f64).unwrap();
        let p95 = h.get("p95").and_then(Json::as_f64).unwrap();
        let p99 = h.get("p99").and_then(Json::as_f64).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "`{name}`: {p50} {p95} {p99}");
    }
    let request = histograms.get("serve.request").expect("serve.request");
    assert_eq!(request.get("unit").and_then(Json::as_str), Some("ns"));
    assert!(request.get("count").and_then(Json::as_f64).unwrap() > 0.0);
    let batch = histograms
        .get("serve.batch_size")
        .expect("serve.batch_size");
    assert_eq!(batch.get("unit").and_then(Json::as_str), Some("count"));
    assert!(batch.get("count").and_then(Json::as_f64).unwrap() > 0.0);
    // The live executor queue depth rides along (drained by now), with
    // its cost-denominated twin, plus the poller pool's live view: one
    // open connection (ours) multiplexed over the default pool.
    assert_eq!(metrics.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert_eq!(metrics.get("queue_cost").and_then(Json::as_f64), Some(0.0));
    assert_eq!(metrics.get("connections").and_then(Json::as_f64), Some(1.0));
    assert_eq!(metrics.get("pollers").and_then(Json::as_f64), Some(4.0));
    // The event-loop satellites are registered: the live-socket gauge and
    // the poller wakeup counter flow through the exporters too.
    assert!(text.contains("serve_connections"), "got: {text}");
    assert!(text.contains("serve_poll_wakeups"), "got: {text}");

    server.shutdown();
}

#[test]
fn wire_errors_carry_stable_codes() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);

    let code_of = |r: Result<Json, ServeError>| match r.unwrap_err() {
        ServeError::Remote { code, .. } => code,
        other => panic!("expected Remote error, got {other:?}"),
    };

    // Serve-layer errors.
    assert_eq!(code_of(client.request("warp", vec![])), "unknown_verb");
    assert_eq!(
        code_of(client.request(
            "evaluate",
            vec![
                ("model".into(), Json::str("m0000000000000000")),
                field_profile()
            ],
        )),
        "unknown_model"
    );
    assert_eq!(
        code_of(client.request("evaluate", vec![field_profile()])),
        "bad_request"
    );

    // Model-layer errors, each with its own code.
    assert_eq!(
        code_of(client.request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                ("profile".into(), json::parse(r#"{"ghost":1.0}"#).unwrap()),
            ],
        )),
        "unknown_class"
    );
    assert_eq!(
        code_of(client.request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                ("profile".into(), json::parse("{}").unwrap()),
            ],
        )),
        "empty"
    );
    assert_eq!(
        code_of(client.request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                (
                    "profile".into(),
                    json::parse(r#"{"easy":0.5,"easy":0.5}"#).unwrap()
                ),
            ],
        )),
        "duplicate_class"
    );
    assert_eq!(
        code_of(client.request(
            "load",
            vec![
                paper_classes(),
                (
                    "universe".into(),
                    json::parse(r#"{"classes":["other"],"hash":"0000000000000000"}"#).unwrap()
                ),
            ],
        )),
        "universe_mismatch"
    );
    assert_eq!(
        code_of(client.request(
            "scenarios",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
                (
                    "scenarios".into(),
                    json::parse(r#"[[{"op":"improve_machine_everywhere","factor":0.5}]]"#).unwrap()
                ),
            ],
        )),
        "invalid_factor"
    );
    assert_eq!(
        code_of(client.request(
            "load",
            vec![(
                "classes".into(),
                json::parse(
                    r#"{"easy":{"p_mf":1.5,"p_hf_given_ms":0.1,"p_hf_given_mf":0.2}}"#
                )
                .unwrap()
            )],
        )),
        "prob"
    );

    server.shutdown();
}

#[test]
fn analyze_verb_reports_and_load_rejects_with_hm_codes() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);

    // The paper model is clean: the on-demand report carries no findings.
    let report = client
        .request(
            "analyze",
            vec![("model".into(), Json::str(model_id.as_str()))],
        )
        .unwrap();
    assert_eq!(report.get("errors").and_then(Json::as_f64), Some(0.0));
    assert_eq!(report.get("summary").and_then(Json::as_str), Some("clean"));
    assert_eq!(
        report
            .get("diagnostics")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        0
    );

    // A model with an inverted coherence index loads (warn-severity) and
    // the report surfaces the HM025 diagnostic.
    let receipt = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(r#"{"odd":{"p_mf":0.3,"p_hf_given_ms":0.4,"p_hf_given_mf":0.1}}"#)
                    .unwrap(),
            )],
        )
        .unwrap();
    let odd_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    let report = client
        .request("analyze", vec![("model".into(), Json::str(odd_id))])
        .unwrap();
    let diags = report.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("HM025")),
        "got: {diags:?}"
    );
    assert_eq!(report.get("errors").and_then(Json::as_f64), Some(0.0));

    // A cohort whose members intern different universes is refused at
    // load with the stable HM0xx code as the wire error code.
    let err = client
        .request(
            "load_cohort",
            vec![(
                "members".into(),
                json::parse(
                    r#"[{"name":"r1","weight":1,
                         "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18}}},
                        {"name":"r2","weight":1,
                         "classes":{"alien":{"p_mf":0.1,"p_hf_given_ms":0.2,"p_hf_given_mf":0.3}}}]"#,
                )
                .unwrap(),
            )],
        )
        .unwrap_err();
    let ServeError::Remote { code, message } = err else {
        panic!("expected Remote error");
    };
    assert_eq!(code, "HM030");
    assert!(message.contains("universe"), "got: {message}");
    // The rejected cohort was not admitted.
    let listing = client.request("models", vec![]).unwrap();
    let kinds: Vec<&str> = listing
        .get("models")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("kind").and_then(Json::as_str))
        .collect();
    assert!(!kinds.contains(&"cohort"), "got: {kinds:?}");

    server.shutdown();
}

#[test]
fn compare_verb_certifies_dominance_and_rejects_mismatches() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let baseline_id = load_paper_model(&mut client);

    // The §6.2 design change — machine improved ×10 on difficult — loads
    // as its own content id and provably dominates the baseline.
    let receipt = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(
                    r#"{"easy":      {"p_mf":0.07, "p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                        "difficult": {"p_mf":0.041,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
                )
                .unwrap(),
            )],
        )
        .unwrap();
    let improved_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();

    let verdict = client
        .request(
            "compare",
            vec![
                ("baseline".into(), Json::str(baseline_id.as_str())),
                ("candidate".into(), Json::str(improved_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap();
    assert_eq!(
        verdict.get("verdict").and_then(Json::as_str),
        Some("dominates")
    );
    assert_eq!(
        verdict.get("uniform").and_then(Json::as_str),
        Some("dominates"),
        "per-class gaps are one-sided, so the certificate is profile-free"
    );
    let gaps = verdict.get("class_gaps").and_then(Json::as_arr).unwrap();
    assert_eq!(gaps.len(), 2);
    assert!(gaps
        .iter()
        .any(|g| g.get("shared") == Some(&Json::Bool(true))));
    assert_eq!(
        verdict
            .get("profile_gaps")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        1
    );
    let report = verdict.get("report").unwrap();
    let codes: Vec<&str> = report
        .get("diagnostics")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|d| d.get("code").and_then(Json::as_str))
        .collect();
    assert!(codes.contains(&"HM038"), "got: {codes:?}");

    // Swapped operands certify the mirror verdict.
    let swapped = client
        .request(
            "compare",
            vec![
                ("baseline".into(), Json::str(improved_id.as_str())),
                ("candidate".into(), Json::str(baseline_id.as_str())),
            ],
        )
        .unwrap();
    assert_eq!(
        swapped.get("verdict").and_then(Json::as_str),
        Some("dominated")
    );

    // Comparing across universes is admission-rejected with HM037.
    let alien = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(r#"{"weird":{"p_mf":0.1,"p_hf_given_ms":0.2,"p_hf_given_mf":0.3}}"#)
                    .unwrap(),
            )],
        )
        .unwrap();
    let alien_id = alien
        .get("model_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    let err = client
        .request(
            "compare",
            vec![
                ("baseline".into(), Json::str(baseline_id.as_str())),
                ("candidate".into(), Json::str(alien_id)),
            ],
        )
        .unwrap_err();
    let ServeError::Remote { code, message } = err else {
        panic!("expected Remote error");
    };
    assert_eq!(code, "HM037");
    assert!(message.contains("classes"), "got: {message}");

    server.shutdown();
}

#[test]
fn malformed_json_is_rejected_but_the_connection_survives() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut response = String::new();
    let mut byte = [0_u8; 1];
    loop {
        raw.read_exact(&mut byte).unwrap();
        if byte[0] == b'\n' {
            break;
        }
        response.push(byte[0] as char);
    }
    let parsed = json::parse(&response).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("parse_error")
    );
    // Framing is intact, so the same connection still serves requests.
    raw.write_all(b"{\"id\":2,\"verb\":\"ping\"}\n").unwrap();
    let mut response = String::new();
    loop {
        raw.read_exact(&mut byte).unwrap();
        if byte[0] == b'\n' {
            break;
        }
        response.push(byte[0] as char);
    }
    assert!(response.contains("\"pong\":true"), "got: {response}");
    server.shutdown();
}

/// Reads one newline-terminated response off a raw socket.
fn read_line(raw: &mut TcpStream) -> String {
    let mut response = String::new();
    let mut byte = [0_u8; 1];
    loop {
        raw.read_exact(&mut byte).expect("socket closed mid-line");
        if byte[0] == b'\n' {
            return response;
        }
        response.push(byte[0] as char);
    }
}

#[test]
fn oversized_lines_error_but_the_connection_survives() {
    let server = Server::start(ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let huge = format!("{{\"verb\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(1024));
    raw.write_all(huge.as_bytes()).unwrap();
    let line = read_line(&mut raw);
    assert!(line.contains("\"code\":\"line_too_long\""), "got: {line}");
    // Framing resynced at the newline: the same connection keeps serving.
    raw.write_all(b"{\"id\":2,\"verb\":\"ping\"}\n").unwrap();
    let line = read_line(&mut raw);
    assert!(line.contains("\"pong\":true"), "got: {line}");
    server.shutdown();
}

#[test]
fn save_restore_round_trip_preserves_content_ids_across_servers() {
    let dir = std::env::temp_dir().join(format!(
        "hmdiv-serve-snapshot-roundtrip-{}",
        std::process::id()
    ));
    drop(std::fs::remove_dir_all(&dir));
    let expected_bits;
    let model_id;
    {
        let server = start();
        let mut client = Client::connect(server.addr()).unwrap();
        model_id = load_paper_model(&mut client);
        expected_bits = client
            .request(
                "evaluate",
                vec![
                    ("model".into(), Json::str(model_id.as_str())),
                    field_profile(),
                ],
            )
            .unwrap()
            .get("failure")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits();
        let saved = client
            .request(
                "save",
                vec![("dir".into(), Json::str(dir.to_str().unwrap()))],
            )
            .unwrap();
        assert_eq!(saved.get("saved").and_then(Json::as_f64), Some(1.0));
        let ids: Vec<&str> = saved
            .get("ids")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(ids, [model_id.as_str()]);
        server.shutdown();
    }

    // A fresh server warm-starts from the snapshot directory: same
    // content id, bit-identical answers, no client-side reload.
    let server = Server::start(ServerConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let listing = client.request("models", vec![]).unwrap();
    let ids: Vec<&str> = listing
        .get("models")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(ids, [model_id.as_str()]);
    let failure = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap()
        .get("failure")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(failure.to_bits(), expected_bits, "warm start drifted");
    // The explicit verb restores idempotently into a live registry, and
    // defaults to the configured directory.
    let restored = client.request("restore", vec![]).unwrap();
    assert_eq!(restored.get("restored").and_then(Json::as_f64), Some(1.0));
    server.shutdown();
    drop(std::fs::remove_dir_all(&dir));
}

#[test]
fn admission_charges_scalar_evaluations_not_request_count() {
    // Capacity is an evaluation-cost budget: a 4-scenario batch (cost 4)
    // overflows a 3-cost queue even when the queue is empty, while a
    // 3-scenario batch fits exactly.
    let server = Server::start(ServerConfig {
        queue_capacity: 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);
    let batch = |n: usize| {
        let grid: Vec<String> = (1..=n)
            .map(|i| format!(r#"[{{"op":"improve_machine","class":"difficult","factor":{i}0}}]"#))
            .collect();
        vec![
            ("model".to_owned(), Json::str(model_id.as_str())),
            field_profile(),
            (
                "scenarios".to_owned(),
                json::parse(&format!("[{}]", grid.join(","))).unwrap(),
            ),
        ]
    };
    let err = client.request("scenarios", batch(4)).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "overloaded"
    ));
    let ok = client.request("scenarios", batch(3)).unwrap();
    assert_eq!(ok.get("failures").and_then(Json::as_arr).unwrap().len(), 3);
    server.shutdown();
}

#[test]
fn deadline_zero_is_always_expired() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);
    let err = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
                ("deadline_ms".into(), Json::Num(0.0)),
            ],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "deadline_exceeded"
    ));
    // Without the deadline the same request succeeds.
    assert!(client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile()
            ],
        )
        .is_ok());
    server.shutdown();
}

#[test]
fn zero_capacity_queue_sheds_every_evaluation() {
    let server = Server::start(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Inline verbs bypass the executor queue and still work.
    let model_id = load_paper_model(&mut client);
    let err = client
        .request(
            "evaluate",
            vec![
                ("model".into(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Remote { ref code, .. } if code == "overloaded"
    ));
    server.shutdown();
}

/// The acceptance bar: server results — under concurrent, pipelined,
/// batched load from 1, 2, and 7 client threads — are bit-for-bit the
/// numbers a direct in-process `CompiledModel` evaluation produces.
#[test]
fn loopback_bit_identity_under_concurrent_batched_load() {
    // Direct reference evaluation, in process.
    let model = paper::example_model().unwrap();
    let compiled = model.compiled();
    let profile = paper::field_profile().unwrap();
    let bound = compiled.bind_profile(&profile).unwrap();
    let expected_eval = compiled.system_failure(&bound).value().to_bits();
    let scenarios: Vec<Scenario> = (1..=4)
        .map(|i| Scenario::new().improve_machine(ClassId::new("difficult"), f64::from(i) * 3.0))
        .collect();
    let expected_scen: Vec<u64> = compiled
        .evaluate_scenarios(&scenarios, &bound)
        .unwrap()
        .iter()
        .map(|p| p.value().to_bits())
        .collect();
    let scenario_wire = json::parse(
        r#"[[{"op":"improve_machine","class":"difficult","factor":3}],
            [{"op":"improve_machine","class":"difficult","factor":6}],
            [{"op":"improve_machine","class":"difficult","factor":9}],
            [{"op":"improve_machine","class":"difficult","factor":12}]]"#,
    )
    .unwrap();

    let server = start();
    {
        let mut setup = Client::connect(server.addr()).unwrap();
        load_paper_model(&mut setup);
    }
    let addr = server.addr();
    let expected_scen = Arc::new(expected_scen);

    for client_threads in [1_usize, 2, 7] {
        let workers: Vec<_> = (0..client_threads)
            .map(|_| {
                let scenario_wire = scenario_wire.clone();
                let expected_scen = Arc::clone(&expected_scen);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let model_id = load_paper_model(&mut client);
                    for _round in 0..10 {
                        // Pipeline evaluates and scenario batches together so
                        // the executor coalesces them across threads.
                        let mut requests = Vec::new();
                        for _ in 0..5 {
                            requests.push((
                                "evaluate".to_owned(),
                                vec![
                                    ("model".to_owned(), Json::str(model_id.as_str())),
                                    field_profile(),
                                ],
                            ));
                        }
                        requests.push((
                            "scenarios".to_owned(),
                            vec![
                                ("model".to_owned(), Json::str(model_id.as_str())),
                                field_profile(),
                                ("scenarios".to_owned(), scenario_wire.clone()),
                            ],
                        ));
                        let results = client.pipeline(requests).unwrap();
                        for result in &results[..5] {
                            let failure = result
                                .as_ref()
                                .unwrap()
                                .get("failure")
                                .and_then(Json::as_f64)
                                .unwrap();
                            assert_eq!(failure.to_bits(), expected_eval, "evaluate drifted");
                        }
                        let failures: Vec<u64> = results[5]
                            .as_ref()
                            .unwrap()
                            .get("failures")
                            .and_then(Json::as_arr)
                            .unwrap()
                            .iter()
                            .map(|v| v.as_f64().unwrap().to_bits())
                            .collect();
                        assert_eq!(failures, *expected_scen, "scenarios drifted");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client worker panicked");
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_verb_drains_in_flight_work_and_stops_the_server() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let model_id = load_paper_model(&mut client);
    // Pipeline real work and then the shutdown verb; every request that
    // was accepted must still get its answer.
    let mut requests = Vec::new();
    for _ in 0..8 {
        requests.push((
            "evaluate".to_owned(),
            vec![
                ("model".to_owned(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        ));
    }
    requests.push(("shutdown".to_owned(), Vec::new()));
    let results = client.pipeline(requests).unwrap();
    for result in &results[..8] {
        assert!(
            result.as_ref().unwrap().get("failure").is_some(),
            "in-flight work must drain through shutdown"
        );
    }
    assert_eq!(
        results[8]
            .as_ref()
            .unwrap()
            .get("draining")
            .and_then(Json::as_bool),
        Some(true)
    );
    // join() returns promptly because the accept loop honours the signal,
    // and afterwards the listener is gone: new connections are refused.
    let addr = server.addr();
    server.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after join()"
    );
}

#[test]
fn manifest_and_fetch_expose_the_registry_for_fleet_sync() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    // Empty registry: an empty manifest, not an error.
    let empty = client.request("manifest", vec![]).unwrap();
    assert_eq!(empty.get("count").and_then(Json::as_u64), Some(0));
    assert_eq!(
        empty
            .get("artifacts")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );

    let model_id = load_paper_model(&mut client);
    let listing = client.request("manifest", vec![]).unwrap();
    assert_eq!(listing.get("count").and_then(Json::as_u64), Some(1));
    let rows = listing.get("artifacts").and_then(Json::as_arr).unwrap();
    assert_eq!(
        rows[0].get("id").and_then(Json::as_str),
        Some(model_id.as_str())
    );
    assert_eq!(
        rows[0].get("kind").and_then(Json::as_str),
        Some("sequential")
    );

    // fetch returns the load-verb wire shape plus the id; replaying it
    // through load on a second server reproduces the content id exactly.
    let fetched = client
        .request(
            "fetch",
            vec![("model".into(), Json::str(model_id.as_str()))],
        )
        .unwrap();
    assert_eq!(
        fetched.get("id").and_then(Json::as_str),
        Some(model_id.as_str())
    );
    assert_eq!(
        fetched.get("kind").and_then(Json::as_str),
        Some("sequential")
    );
    let Json::Obj(members) = fetched else {
        panic!("fetch must return an object");
    };
    let replay: Vec<(String, Json)> = members.into_iter().filter(|(k, _)| k != "id").collect();
    let second = start();
    let mut second_client = Client::connect(second.addr()).unwrap();
    let receipt = second_client.request("load", replay).unwrap();
    assert_eq!(
        receipt.get("model_id").and_then(Json::as_str),
        Some(model_id.as_str()),
        "the fetched shape must re-hash to the same content id"
    );

    // Fetching an unknown id is the usual typed error.
    let err = client
        .request(
            "fetch",
            vec![("model".into(), Json::str("m0000000000000000"))],
        )
        .unwrap_err();
    let ServeError::Remote { code, .. } = err else {
        panic!("expected Remote error");
    };
    assert_eq!(code, "unknown_model");

    second.shutdown();
    server.shutdown();
}

#[test]
fn retrying_client_survives_a_server_restart_on_the_same_port() {
    use hmdiv_serve::RetryPolicy;

    let server = start();
    let addr = server.addr();
    let mut client = Client::connect(addr)
        .unwrap()
        .with_retry(RetryPolicy::default());
    let model_id = load_paper_model(&mut client);

    // Stop the server entirely, then bring a fresh one up on the same
    // port (std listeners set SO_REUSEADDR). The registry restarts
    // empty, so reload before evaluating.
    server.shutdown();
    let restarted = Server::start(ServerConfig {
        addr: addr.to_string(),
        ..ServerConfig::default()
    })
    .expect("rebind on the same port");
    assert_eq!(restarted.addr(), addr);

    // The client's next pipeline hits a dead socket (BrokenPipe or a
    // mid-response EOF), reconnects under its backoff budget, and
    // replays — idempotent verbs make the replay safe.
    let reloaded = client.request("load", vec![paper_classes()]).unwrap();
    assert_eq!(
        reloaded.get("model_id").and_then(Json::as_str),
        Some(model_id.as_str())
    );
    let result = client
        .request(
            "evaluate",
            vec![
                ("model".to_owned(), Json::str(model_id.as_str())),
                field_profile(),
            ],
        )
        .unwrap();
    let failure = result.get("failure").and_then(Json::as_f64).unwrap();
    assert!((failure - 0.18902).abs() < 1e-9);

    // Without retry, the same restart is a hard transport error.
    let mut bare = Client::connect(addr).unwrap();
    let _ = bare.request("ping", vec![]).unwrap();
    restarted.shutdown();
    let err = bare.request("ping", vec![]).unwrap_err();
    assert!(
        matches!(err, ServeError::Io { .. }),
        "expected a transport error, got: {err}"
    );
}
