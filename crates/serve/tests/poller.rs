//! Adversarial socket tests for the event-driven poller: slow-loris
//! trickles, request lines split mid-UTF-8-sequence, half-closed
//! sockets, framing resync after over-limit lines, and many idle
//! keep-alive connections multiplexed over a tiny pool — all the shapes
//! a thread-per-connection server never had to distinguish.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use hmdiv_serve::{json, Client, Json, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("server start")
}

/// Reads one newline-terminated response off a raw socket.
fn read_line(raw: &mut TcpStream) -> String {
    let mut response = Vec::new();
    let mut byte = [0_u8; 1];
    loop {
        raw.read_exact(&mut byte).expect("socket closed mid-line");
        if byte[0] == b'\n' {
            return String::from_utf8(response).expect("responses are UTF-8");
        }
        response.push(byte[0]);
    }
}

fn error_code(line: &str) -> String {
    json::parse(line)
        .expect("replies are valid JSON")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error code in: {line}"))
        .to_owned()
}

#[test]
fn slow_loris_byte_at_a_time_still_gets_served() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // One byte per write with a pause: the request spans many poller
    // sweeps and the resumable reader must hold partial-line state.
    for &b in b"{\"id\":7,\"verb\":\"ping\"}\n" {
        raw.write_all(&[b]).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let line = read_line(&mut raw);
    assert!(line.contains("\"pong\":true"), "got: {line}");
    assert!(line.contains("\"id\":7"), "got: {line}");
    server.shutdown();
}

#[test]
fn utf8_sequences_split_across_reads_reassemble() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // `é` is 0xC3 0xA9; split the codepoint across two writes so one
    // poller read ends mid-sequence.
    let request = "{\"id\":\"café\",\"verb\":\"ping\"}\n".as_bytes();
    let split = request
        .iter()
        .position(|&b| b == 0xC3)
        .expect("multibyte char present")
        + 1;
    raw.write_all(&request[..split]).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    raw.write_all(&request[split..]).unwrap();
    let line = read_line(&mut raw);
    assert!(line.contains("\"id\":\"café\""), "got: {line}");
    assert!(line.contains("\"pong\":true"), "got: {line}");
    server.shutdown();
}

#[test]
fn invalid_utf8_is_rejected_and_the_connection_survives() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // A lone continuation byte can never begin a UTF-8 sequence.
    raw.write_all(b"{\"verb\":\"p\xA9ing\"}\n").unwrap();
    assert_eq!(error_code(&read_line(&mut raw)), "parse_error");
    raw.write_all(b"{\"id\":1,\"verb\":\"ping\"}\n").unwrap();
    assert!(read_line(&mut raw).contains("\"pong\":true"));
    server.shutdown();
}

#[test]
fn over_limit_lines_resync_without_poisoning_pipelined_requests() {
    let server = Server::start(ServerConfig {
        max_line_bytes: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // Three pipelined lines: good, over-limit, good. The middle one
    // errors; both neighbours are answered in order.
    let mut burst = Vec::new();
    burst.extend_from_slice(b"{\"id\":1,\"verb\":\"ping\"}\n");
    burst.extend_from_slice(format!("{{\"pad\":\"{}\"}}\n", "x".repeat(200)).as_bytes());
    burst.extend_from_slice(b"{\"id\":3,\"verb\":\"ping\"}\n");
    raw.write_all(&burst).unwrap();
    let first = read_line(&mut raw);
    assert!(
        first.contains("\"id\":1") && first.contains("\"pong\":true"),
        "got: {first}"
    );
    assert_eq!(error_code(&read_line(&mut raw)), "line_too_long");
    let third = read_line(&mut raw);
    assert!(
        third.contains("\"id\":3") && third.contains("\"pong\":true"),
        "got: {third}"
    );
    server.shutdown();
}

#[test]
fn half_closed_sockets_drain_their_pipelined_replies() {
    let server = start();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // Write a burst, then close the write half immediately: the server
    // sees EOF behind the bytes but still owes every reply.
    let mut burst = Vec::new();
    for i in 0..5 {
        burst.extend_from_slice(format!("{{\"id\":{i},\"verb\":\"ping\"}}\n").as_bytes());
    }
    raw.write_all(&burst).unwrap();
    raw.shutdown(Shutdown::Write).unwrap();
    let mut all = String::new();
    raw.read_to_string(&mut all).unwrap(); // server replies then closes
    let replies: Vec<&str> = all.lines().collect();
    assert_eq!(replies.len(), 5, "got: {all}");
    for (i, line) in replies.iter().enumerate() {
        assert!(line.contains(&format!("\"id\":{i}")), "got: {line}");
        assert!(line.contains("\"pong\":true"), "got: {line}");
    }
    server.shutdown();
}

#[test]
fn a_connection_that_vanishes_mid_request_does_not_wedge_the_shard() {
    let server = start();
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        // Half a request, then drop the socket entirely.
        raw.write_all(b"{\"id\":1,\"verb\":\"pi").unwrap();
    }
    // The shard that owned the vanished socket keeps serving others.
    let mut client = Client::connect(server.addr()).unwrap();
    let pong = client.request("ping", vec![]).unwrap();
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn hundreds_of_idle_keep_alive_connections_multiplex_over_two_pollers() {
    let server = Server::start(ServerConfig {
        poller_threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    // Many connections stay open and idle; a handful interleave work.
    // Under thread-per-connection this would be 300 threads; here it is
    // two pollers and some buffers.
    let mut idle: Vec<TcpStream> = Vec::new();
    for i in 0..300 {
        idle.push(TcpStream::connect(server.addr()).unwrap());
        if i % 64 == 63 {
            // Pace the burst: the accept backlog is finite.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    for round in 0..3 {
        for raw in idle.iter_mut().step_by(37) {
            raw.write_all(format!("{{\"id\":{round},\"verb\":\"ping\"}}\n").as_bytes())
                .unwrap();
        }
        for raw in idle.iter_mut().step_by(37) {
            let line = read_line(raw);
            assert!(line.contains("\"pong\":true"), "got: {line}");
        }
    }
    drop(idle);
    server.shutdown();
}
