//! `hmdiv-serve`: a zero-dependency batched evaluation server for the
//! hmdiv model stack.
//!
//! The paper's models are cheap to evaluate one at a time but are used in
//! bulk — design sweeps, cohort studies, what-if grids. This crate turns
//! the workspace into a long-running service without adding a single
//! external dependency: an event-driven TCP server over [`std::net`]
//! speaking a JSON-lines protocol — a small fixed pool of readiness
//! pollers multiplexing nonblocking sockets as per-connection state
//! machines — a content-hash-addressed [`Registry`] of loaded models
//! with pre-warmed compiled forms and disk snapshots (`save`/`restore`
//! verbs; restarted servers warm-start under identical content ids),
//! and a micro-batching [`Batcher`] that coalesces concurrent
//! evaluation requests into dense batch calls on the deterministic
//! parallel executor, admission-bounded by evaluation *cost* rather
//! than request count.
//!
//! Results are **bit-identical** to direct in-process evaluation: the
//! order-preserving [`json`] object model keeps profile binding order,
//! `f64` values render in shortest round-trip form, and the batch entry
//! points are thread-count-invariant.
//!
//! Robustness is first-class: per-request deadlines, a bounded queue with
//! an explicit `overloaded` rejection instead of unbounded buffering,
//! typed wire errors for every model-layer failure, and graceful
//! shutdown that drains in-flight work.
//!
//! Observability is too: with [`ServerConfig::trace_capacity`] set, every
//! request is traced through the read → parse → queue → batch → eval →
//! serialize → write pipeline into a `hmdiv_obs` flight-recorder ring,
//! drained by the `trace` verb and dumped automatically on shed events.
//! Clients may supply a `trace_id` wire field (echoed on every response;
//! see [`client::TracedResponse`]) to correlate their calls with
//! server-side records. Tracing is a pure observer — replies stay
//! bit-identical with it on or off.
//!
//! # Quick start
//!
//! ```
//! use hmdiv_serve::{Client, Json, Server, ServerConfig};
//!
//! # fn main() -> Result<(), hmdiv_serve::ServeError> {
//! let server = Server::start(ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//!
//! let loaded = client.request(
//!     "load",
//!     vec![(
//!         "classes".into(),
//!         hmdiv_serve::json::parse(
//!             r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
//!                 "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
//!         )
//!         .expect("static JSON"),
//!     )],
//! )?;
//! let model_id = loaded.get("model_id").and_then(Json::as_str).unwrap().to_owned();
//!
//! let result = client.request(
//!     "evaluate",
//!     vec![
//!         ("model".into(), Json::str(model_id)),
//!         (
//!             "profile".into(),
//!             hmdiv_serve::json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
//!         ),
//!     ],
//! )?;
//! let failure = result.get("failure").and_then(Json::as_f64).unwrap();
//! assert!((failure - 0.18902).abs() < 1e-9); // the paper's field estimate
//!
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batcher;
pub mod client;
pub mod error;
pub mod json;
pub mod loadgen;
mod poller;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shutdown;

pub use batcher::{Batcher, Outcome, Ticket, Waker, Work};
pub use client::{Client, RetryPolicy, TracedResponse};
pub use error::ServeError;
pub use json::Json;
pub use loadgen::{LoadgenConfig, LoadgenReport, TargetSplit};
pub use registry::{Artifact, ArtifactRow, LoadReceipt, Registry};
pub use server::{Server, ServerConfig};
pub use shutdown::ShutdownSignal;
