//! Typed errors for the serve layer and their wire representation.
//!
//! Every failure a client can trigger has a stable machine-readable wire
//! code; every [`ModelError`] variant maps to its own code so a remote
//! caller can distinguish "your profile names a class the model lacks"
//! from "the server is overloaded" without string matching. Socket and
//! parse failures are carried as typed variants too — the serve crate has
//! no `unwrap`/`expect` on I/O or wire paths.

use std::error::Error;
use std::fmt;

use hmdiv_core::ModelError;

use crate::json::Json;

/// Error type for the serve crate: protocol, registry, executor, and
/// connection failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request line is not valid JSON.
    Parse {
        /// Parser diagnostics (with byte offset).
        detail: String,
    },
    /// The request is well-formed JSON but violates the protocol shape
    /// (missing field, wrong type, bad value).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The request names a verb the server does not implement.
    UnknownVerb {
        /// The offending verb.
        verb: String,
    },
    /// The request references a registry id that is not loaded.
    UnknownArtifact {
        /// The offending id.
        id: String,
    },
    /// A model-layer failure (class resolution, validation, …).
    Model(ModelError),
    /// Static analysis refused the artifact at load: the wire code *is*
    /// the stable `HM0xx` diagnostic code, so clients can react to the
    /// specific fault without string matching.
    Rejected {
        /// The `HM0xx` code of the first error-severity diagnostic.
        code: String,
        /// That diagnostic's message.
        detail: String,
    },
    /// The bounded request queue is full; the client should back off and
    /// retry. This is the explicit backpressure signal — the server sheds
    /// load instead of buffering without bound.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline expired before the executor reached it.
    DeadlineExceeded,
    /// The `trace` verb was called but the server was started without a
    /// flight recorder (tracing disabled).
    TraceDisabled,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A request line exceeded the configured size limit. The offending
    /// line is discarded up to the next newline and the connection stays
    /// open — newline framing survives, so the client can keep going.
    LineTooLong {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A registry snapshot could not be saved or restored (I/O failure,
    /// corrupt file, or a content id that no longer matches its payload).
    Snapshot {
        /// What went wrong.
        detail: String,
    },
    /// A socket-level failure.
    Io {
        /// The underlying error, stringified.
        detail: String,
    },
    /// An error reported by a remote server (client side only): the wire
    /// code and message, preserved verbatim.
    Remote {
        /// The wire error code.
        code: String,
        /// The human-readable message.
        message: String,
    },
    /// The fleet router lost the backend that owned this request: the
    /// replica was ejected (or its connection died) with the request in
    /// flight. The request may or may not have executed; idempotent verbs
    /// are safe to retry and will re-hash to a surviving replica.
    BackendUnavailable {
        /// The backend address that became unavailable.
        backend: String,
    },
}

impl ServeError {
    /// The stable machine-readable wire code for this error.
    #[must_use]
    pub fn code(&self) -> &str {
        match self {
            ServeError::Parse { .. } => "parse_error",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::UnknownVerb { .. } => "unknown_verb",
            ServeError::UnknownArtifact { .. } => "unknown_model",
            ServeError::Model(e) => match e {
                ModelError::MissingClass { .. } => "missing_class",
                ModelError::UnknownClass { .. } => "unknown_class",
                ModelError::Empty { .. } => "empty",
                ModelError::DuplicateClass { .. } => "duplicate_class",
                ModelError::UniverseMismatch { .. } => "universe_mismatch",
                ModelError::InvalidFactor { .. } => "invalid_factor",
                ModelError::Prob(_) => "prob",
                // `ModelError` is non-exhaustive; future variants degrade
                // to the generic model code rather than breaking the wire.
                _ => "model_error",
            },
            ServeError::Rejected { code, .. } => code,
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::TraceDisabled => "trace_disabled",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::LineTooLong { .. } => "line_too_long",
            ServeError::Snapshot { .. } => "snapshot_error",
            ServeError::Io { .. } => "io",
            ServeError::Remote { code, .. } => code,
            ServeError::BackendUnavailable { .. } => "backend_unavailable",
        }
    }

    /// How this error classifies as a flight-recorder outcome: shed and
    /// deadline events keep their distinguished variants, admission-gate
    /// refusals carry their `HM0xx` code, everything else its wire code.
    #[must_use]
    pub fn trace_outcome(&self) -> hmdiv_obs::TraceOutcome {
        match self {
            ServeError::Overloaded { .. } => hmdiv_obs::TraceOutcome::Overloaded,
            ServeError::DeadlineExceeded => hmdiv_obs::TraceOutcome::DeadlineExceeded,
            ServeError::Rejected { code, .. } => hmdiv_obs::TraceOutcome::Rejected(code.clone()),
            other => hmdiv_obs::TraceOutcome::Error(other.code().to_owned()),
        }
    }

    /// The wire representation: `{"code": …, "message": …}`.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            ("code".to_owned(), Json::str(self.code())),
            ("message".to_owned(), Json::str(self.to_string())),
        ])
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse { detail } => write!(f, "invalid JSON: {detail}"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::UnknownVerb { verb } => write!(f, "unknown verb `{verb}`"),
            ServeError::UnknownArtifact { id } => {
                write!(f, "no model or cohort loaded under id `{id}`")
            }
            ServeError::Model(e) => write!(f, "{e}"),
            ServeError::Rejected { code, detail } => {
                write!(f, "artifact rejected by static analysis [{code}]: {detail}")
            }
            ServeError::Overloaded { capacity } => {
                write!(f, "request queue full ({capacity} pending); retry later")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline expired before evaluation"),
            ServeError::TraceDisabled => write!(
                f,
                "tracing is disabled on this server (start it with a trace capacity)"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::LineTooLong { limit } => {
                write!(
                    f,
                    "request line exceeds {limit} bytes; discarded up to the next newline"
                )
            }
            ServeError::Snapshot { detail } => write!(f, "registry snapshot failed: {detail}"),
            ServeError::Io { detail } => write!(f, "i/o error: {detail}"),
            ServeError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            ServeError::BackendUnavailable { backend } => {
                write!(
                    f,
                    "backend {backend} is unavailable; the request was in flight when it was \
                     lost and may be retried against a surviving replica"
                )
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::ClassId;

    /// One instance of every `ModelError` variant, for exhaustive wire-code
    /// coverage here and in the protocol tests.
    pub(crate) fn all_model_errors() -> Vec<ModelError> {
        vec![
            ModelError::MissingClass {
                class: ClassId::new("ghost"),
            },
            ModelError::UnknownClass {
                class: ClassId::new("ghost"),
            },
            ModelError::Empty { context: "profile" },
            ModelError::DuplicateClass {
                class: ClassId::new("easy"),
            },
            ModelError::UniverseMismatch {
                detail: "2 classes vs 1".into(),
            },
            ModelError::InvalidFactor {
                value: -1.0,
                context: "factor",
            },
            ModelError::Prob(hmdiv_prob::ProbError::InvalidConfidence { level: 0.0 }),
        ]
    }

    #[test]
    fn every_model_error_has_a_distinct_code() {
        let codes: Vec<String> = all_model_errors()
            .into_iter()
            .map(|e| ServeError::from(e).code().to_owned())
            .collect();
        let expected = [
            "missing_class",
            "unknown_class",
            "empty",
            "duplicate_class",
            "universe_mismatch",
            "invalid_factor",
            "prob",
        ];
        assert_eq!(codes, expected);
    }

    #[test]
    fn wire_form_carries_code_and_message() {
        let e = ServeError::Overloaded { capacity: 8 };
        let wire = e.to_wire();
        assert_eq!(wire.get("code").unwrap().as_str(), Some("overloaded"));
        assert!(wire
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("queue full"));
    }

    #[test]
    fn displays_are_nonempty_and_sources_chain() {
        let errors = [
            ServeError::Parse { detail: "x".into() },
            ServeError::BadRequest { detail: "y".into() },
            ServeError::UnknownVerb { verb: "zap".into() },
            ServeError::UnknownArtifact { id: "m0".into() },
            ServeError::DeadlineExceeded,
            ServeError::TraceDisabled,
            ServeError::ShuttingDown,
            ServeError::LineTooLong { limit: 10 },
            ServeError::Snapshot {
                detail: "bad file".into(),
            },
            ServeError::Io {
                detail: "broken".into(),
            },
            ServeError::Remote {
                code: "overloaded".into(),
                message: "busy".into(),
            },
            ServeError::BackendUnavailable {
                backend: "127.0.0.1:7415".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        let chained = ServeError::from(ModelError::Empty { context: "t" });
        assert!(chained.source().is_some());
        assert!(ServeError::DeadlineExceeded.source().is_none());
    }

    #[test]
    fn trace_outcomes_classify_shed_and_rejection() {
        use hmdiv_obs::TraceOutcome;
        assert_eq!(
            ServeError::Overloaded { capacity: 2 }.trace_outcome(),
            TraceOutcome::Overloaded
        );
        assert_eq!(
            ServeError::DeadlineExceeded.trace_outcome(),
            TraceOutcome::DeadlineExceeded
        );
        assert_eq!(
            ServeError::Rejected {
                code: "HM030".into(),
                detail: "x".into()
            }
            .trace_outcome(),
            TraceOutcome::Rejected("HM030".into())
        );
        assert_eq!(
            ServeError::BadRequest { detail: "y".into() }.trace_outcome(),
            TraceOutcome::Error("bad_request".into())
        );
        assert_eq!(ServeError::TraceDisabled.code(), "trace_disabled");
        assert_eq!(
            ServeError::LineTooLong { limit: 8 }.code(),
            "line_too_long",
            "typed framing error keeps its stable wire code"
        );
        assert_eq!(
            ServeError::Snapshot { detail: "x".into() }.code(),
            "snapshot_error"
        );
        assert_eq!(
            ServeError::BackendUnavailable {
                backend: "127.0.0.1:7415".into()
            }
            .code(),
            "backend_unavailable",
            "failover error keeps its stable wire code"
        );
    }
}
