//! A built-in load generator for the event-driven server.
//!
//! One thread drives an arbitrary number of concurrent keep-alive
//! connections with the same nonblocking-socket technique the server's
//! poller uses, so a single benchmark process can hold a thousand open
//! sockets against a poller pool without spawning a thousand client
//! threads. Each connection pipelines up to `pipeline_depth` copies of
//! one request line and keeps refilling until its per-connection quota
//! is sent, then half-closes and drains.
//!
//! Replies are classified by their wire shape — served (`"ok":true`),
//! shed (`overloaded` / `deadline_exceeded` error codes), or other
//! errors — which is exactly the data the shed-vs-served admission
//! curves in the benchmark reports need.
//!
//! Multiple [`targets`](LoadgenConfig::targets) are driven in one run:
//! connections round-robin across them and the report carries a
//! [per-target split](LoadgenReport::per_target) alongside the totals,
//! so one run can compare direct-to-replica against through-router
//! service or spot an unhealthy fleet member by its error share.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::json::{self, Json};

/// What the generator should drive at the server(s).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server addresses; connections are assigned round-robin
    /// (connection `i` targets `targets[i % targets.len()]`).
    pub targets: Vec<SocketAddr>,
    /// Concurrent keep-alive connections to hold open, across all
    /// targets.
    pub connections: usize,
    /// Requests each connection keeps in flight.
    pub pipeline_depth: usize,
    /// Requests each connection sends before half-closing.
    pub requests_per_connection: usize,
    /// The request to send, newline included (the same line is repeated;
    /// the server's framing does not need unique ids).
    pub request_line: String,
    /// Abort the run if it has not drained by then.
    pub timeout: Duration,
}

/// One target's share of the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSplit {
    /// The target address.
    pub addr: SocketAddr,
    /// Connections assigned to this target (including ones that failed
    /// to open).
    pub connections: usize,
    /// Request lines fully queued on this target's connections.
    pub sent: u64,
    /// Replies with `"ok":true`.
    pub served: u64,
    /// Replies rejected by admission control (`overloaded`).
    pub shed_overloaded: u64,
    /// Replies past their deadline (`deadline_exceeded`).
    pub shed_deadline: u64,
    /// Every other reply or transport failure.
    pub errors: u64,
}

impl TargetSplit {
    fn new(addr: SocketAddr) -> TargetSplit {
        TargetSplit {
            addr,
            connections: 0,
            sent: 0,
            served: 0,
            shed_overloaded: 0,
            shed_deadline: 0,
            errors: 0,
        }
    }
}

/// What came back, bucketed for shed-vs-served curves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Connections the run opened.
    pub connections: usize,
    /// Connections that sent their full quota and drained every reply.
    pub completed_connections: usize,
    /// Request lines fully written to sockets.
    pub sent: u64,
    /// Replies with `"ok":true`.
    pub served: u64,
    /// Replies rejected by admission control (`overloaded`).
    pub shed_overloaded: u64,
    /// Replies past their deadline (`deadline_exceeded`).
    pub shed_deadline: u64,
    /// Every other reply or transport failure.
    pub errors: u64,
    /// Wall-clock for the whole run, in nanoseconds (kept integral so
    /// reports serialize without float noise).
    pub elapsed_ns: u128,
    /// The same ledger split by target, in [`LoadgenConfig::targets`]
    /// order. Column sums equal the totals above.
    pub per_target: Vec<TargetSplit>,
}

impl LoadgenReport {
    /// Replies accounted for across all buckets.
    #[must_use]
    pub fn replies(&self) -> u64 {
        self.served + self.shed_overloaded + self.shed_deadline + self.errors
    }

    /// Charges one classified reply to the totals and to `target`'s
    /// split.
    fn charge(&mut self, target: usize, bucket: Bucket) {
        let split = &mut self.per_target[target];
        match bucket {
            Bucket::Served => {
                self.served += 1;
                split.served += 1;
            }
            Bucket::ShedOverloaded => {
                self.shed_overloaded += 1;
                split.shed_overloaded += 1;
            }
            Bucket::ShedDeadline => {
                self.shed_deadline += 1;
                split.shed_deadline += 1;
            }
            Bucket::Error => {
                self.errors += 1;
                split.errors += 1;
            }
        }
    }

    fn charge_sent(&mut self, target: usize) {
        self.sent += 1;
        self.per_target[target].sent += 1;
    }

    fn charge_errors(&mut self, target: usize, n: u64) {
        self.errors += n;
        self.per_target[target].errors += n;
    }
}

/// One driven connection's progress.
struct Driven {
    stream: TcpStream,
    /// Index into [`LoadgenConfig::targets`] this connection drives.
    target: usize,
    /// Bytes queued for the socket (whole request lines).
    out: Vec<u8>,
    /// Write cursor into `out`.
    cursor: usize,
    /// Reply bytes not yet framed into a line.
    inbuf: Vec<u8>,
    /// Request lines fully handed to the kernel.
    sent: usize,
    /// Reply lines consumed.
    got: usize,
    /// Set when the socket died before the ledger balanced.
    failed: bool,
    done: bool,
}

impl Driven {
    fn connect(addr: SocketAddr, target: usize) -> std::io::Result<Driven> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Driven {
            stream,
            target,
            out: Vec::new(),
            cursor: 0,
            inbuf: Vec::new(),
            sent: 0,
            got: 0,
            failed: false,
            done: false,
        })
    }

    /// Runs one nonblocking step: top up the pipeline, push writes, pull
    /// and classify replies. Returns whether any byte moved.
    fn step(&mut self, cfg: &LoadgenConfig, report: &mut LoadgenReport) -> bool {
        if self.done {
            return false;
        }
        let mut progressed = false;
        // Keep `pipeline_depth` requests outstanding until the quota is
        // queued. `sent` counts fully queued lines; the write cursor
        // below may still owe the kernel some of their bytes.
        while self.sent < cfg.requests_per_connection && self.sent - self.got < cfg.pipeline_depth {
            self.out.extend_from_slice(cfg.request_line.as_bytes());
            self.sent += 1;
            report.charge_sent(self.target);
        }
        while self.cursor < self.out.len() {
            match self.stream.write(&self.out[self.cursor..]) {
                Ok(0) => {
                    self.fail(report);
                    return true;
                }
                Ok(n) => {
                    self.cursor += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.fail(report);
                    return true;
                }
            }
        }
        if self.cursor == self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.cursor = 0;
            if self.sent == cfg.requests_per_connection {
                // Quota fully written: half-close so the server sees EOF
                // once its replies drain.
                drop(self.stream.shutdown(std::net::Shutdown::Write));
            }
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.got < self.sent || self.sent < cfg.requests_per_connection {
                        // Server hung up with replies (or quota) owed.
                        self.fail(report);
                    } else {
                        self.done = true;
                    }
                    return true;
                }
                Ok(n) => {
                    progressed = true;
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.drain_lines(cfg.requests_per_connection, report);
                    if self.done {
                        return true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.fail(report);
                    return true;
                }
            }
        }
        progressed
    }

    /// Frames and classifies every complete reply line in `inbuf`.
    fn drain_lines(&mut self, quota: usize, report: &mut LoadgenReport) {
        let mut start = 0;
        while let Some(pos) = self.inbuf[start..].iter().position(|&b| b == b'\n') {
            let line = &self.inbuf[start..start + pos];
            report.charge(self.target, classify(line));
            self.got += 1;
            start += pos + 1;
        }
        self.inbuf.drain(..start);
        if self.sent == quota && self.got == self.sent && self.out.is_empty() {
            // Full quota sent, every reply in, nothing left to write.
            // The server will close after our half-close, but the
            // ledger is already balanced.
            self.done = true;
        }
    }

    /// Marks the connection dead and charges every unanswered request to
    /// the error bucket so the ledger still balances.
    fn fail(&mut self, report: &mut LoadgenReport) {
        report.charge_errors(self.target, (self.sent - self.got) as u64);
        self.failed = true;
        self.done = true;
    }
}

/// A classified reply line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    Served,
    ShedOverloaded,
    ShedDeadline,
    Error,
}

/// Buckets one reply line by its wire shape.
fn classify(line: &[u8]) -> Bucket {
    let parsed = std::str::from_utf8(line)
        .ok()
        .and_then(|s| json::parse(s).ok());
    let Some(reply) = parsed else {
        return Bucket::Error;
    };
    if reply.get("ok").and_then(Json::as_bool) == Some(true) {
        return Bucket::Served;
    }
    match reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
    {
        Some("overloaded") => Bucket::ShedOverloaded,
        Some("deadline_exceeded") => Bucket::ShedDeadline,
        _ => Bucket::Error,
    }
}

/// Drives the configured load at the targets and reports the buckets.
///
/// # Errors
///
/// [`ServeError::BadRequest`] when `targets` is empty;
/// [`ServeError::Io`] if the very first connection cannot be opened
/// (later connection failures are tallied in the report instead).
#[allow(clippy::missing_panics_doc)] // timeout arithmetic cannot panic
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    assert!(cfg.pipeline_depth > 0, "pipeline_depth must be positive");
    if cfg.targets.is_empty() {
        return Err(ServeError::BadRequest {
            detail: "loadgen needs at least one target".to_owned(),
        });
    }
    let start = Instant::now();
    let mut report = LoadgenReport {
        per_target: cfg.targets.iter().copied().map(TargetSplit::new).collect(),
        ..LoadgenReport::default()
    };
    let mut conns = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let target = i % cfg.targets.len();
        report.per_target[target].connections += 1;
        match Driven::connect(cfg.targets[target], target) {
            Ok(c) => conns.push(c),
            Err(e) if i == 0 => return Err(ServeError::from(e)),
            Err(_) => report.charge_errors(target, 1),
        }
        // Pace the connect burst: the listener's accept backlog is
        // finite and the accept loop shares the box with the pollers.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    report.connections = conns.len();
    let mut idle_backoff = Duration::from_micros(100);
    while conns.iter().any(|c| !c.done) {
        if start.elapsed() > cfg.timeout {
            for c in &mut conns {
                if !c.done {
                    c.fail(&mut report);
                }
            }
            break;
        }
        let mut progressed = false;
        for c in &mut conns {
            progressed |= c.step(cfg, &mut report);
        }
        if progressed {
            idle_backoff = Duration::from_micros(100);
        } else {
            std::thread::sleep(idle_backoff);
            idle_backoff = (idle_backoff * 2).min(Duration::from_millis(2));
        }
    }
    report.completed_connections = conns.iter().filter(|c| c.done && !c.failed).count();
    report.elapsed_ns = start.elapsed().as_nanos();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_buckets_by_wire_shape() {
        assert_eq!(
            classify(br#"{"id":1,"ok":true,"result":{"pong":true}}"#),
            Bucket::Served
        );
        assert_eq!(
            classify(br#"{"id":2,"ok":false,"error":{"code":"overloaded","message":"x"}}"#),
            Bucket::ShedOverloaded
        );
        assert_eq!(
            classify(br#"{"id":3,"ok":false,"error":{"code":"deadline_exceeded","message":"x"}}"#),
            Bucket::ShedDeadline
        );
        assert_eq!(
            classify(br#"{"id":4,"ok":false,"error":{"code":"bad_request"}}"#),
            Bucket::Error
        );
        assert_eq!(classify(b"not json at all"), Bucket::Error);
    }

    #[test]
    fn per_target_splits_sum_to_the_totals() {
        let a: SocketAddr = "127.0.0.1:1001".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:1002".parse().unwrap();
        let mut report = LoadgenReport {
            per_target: vec![TargetSplit::new(a), TargetSplit::new(b)],
            ..LoadgenReport::default()
        };
        report.charge_sent(0);
        report.charge_sent(1);
        report.charge_sent(1);
        report.charge(0, Bucket::Served);
        report.charge(1, Bucket::Served);
        report.charge(1, Bucket::ShedOverloaded);
        report.charge(0, Bucket::ShedDeadline);
        report.charge_errors(1, 3);
        assert_eq!(report.sent, 3);
        assert_eq!(
            report.per_target.iter().map(|t| t.sent).sum::<u64>(),
            report.sent
        );
        assert_eq!(
            report.per_target.iter().map(|t| t.served).sum::<u64>(),
            report.served
        );
        assert_eq!(
            report.per_target.iter().map(|t| t.errors).sum::<u64>(),
            report.errors
        );
        assert_eq!(report.per_target[1].shed_overloaded, 1);
        assert_eq!(report.per_target[0].shed_deadline, 1);
        assert_eq!(report.replies(), 7);
    }

    #[test]
    fn empty_target_list_is_a_typed_error() {
        let cfg = LoadgenConfig {
            targets: Vec::new(),
            connections: 1,
            pipeline_depth: 1,
            requests_per_connection: 1,
            request_line: "{}\n".into(),
            timeout: Duration::from_secs(1),
        };
        assert!(matches!(run(&cfg), Err(ServeError::BadRequest { .. })));
    }
}
