//! The JSON-lines wire protocol: request envelopes, typed bodies, and
//! response rendering.
//!
//! Every request is one line of JSON, every response one line back:
//!
//! ```text
//! → {"id":1,"verb":"evaluate","model":"m…","profile":{"easy":0.9,"difficult":0.1}}
//! ← {"id":1,"ok":true,"result":{"failure":0.18902}}
//! ← {"id":2,"ok":false,"error":{"code":"unknown_class","message":"…"}}
//! ```
//!
//! The envelope fields are `id` (any JSON value, echoed verbatim), `verb`,
//! an optional `deadline_ms`, and an optional `trace_id` (a hex-u64
//! correlation id: when present it names the request's trace instead of a
//! server-minted id, and is echoed in the response envelope so pipelined
//! callers can correlate replies with flight-recorder records); the
//! remaining members are the verb's body. Demand profiles are JSON
//! objects whose **member order is the profile's class order** —
//! [`crate::json`] preserves it, so eq. (8) accumulates in exactly the
//! order a direct in-process caller would use, and server results are
//! bit-identical to local evaluation.
//!
//! `u64` content hashes travel as 16-digit hex strings (JSON numbers are
//! doubles and cannot carry 64 bits).

use hmdiv_core::cohort::CohortMember;
use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{
    ClassId, ClassParams, DemandProfile, DetectionParams, ModelParams, SequentialModel,
    UniverseManifest,
};
use hmdiv_prob::Probability;

use crate::error::ServeError;
use crate::json::{self, Json};

/// One framing event from the [`LineReader`]: a complete request line, or
/// a typed framing fault the connection can survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete newline-terminated line (terminator and any trailing
    /// `\r` stripped).
    Line(String),
    /// A line provably exceeded the configured limit. The offending bytes
    /// are discarded — through the terminating newline when one is in the
    /// buffer, or until one arrives (resync mode) — and framing resumes
    /// at the next line.
    TooLong {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A complete line was not valid UTF-8. The line is discarded; the
    /// newline framing is intact, so the connection survives.
    InvalidUtf8,
}

/// Buffers raw socket bytes and yields newline-framed [`LineEvent`]s.
///
/// The reader is **resumable**: bytes can arrive one at a time (slow
/// clients, split TCP segments, UTF-8 sequences cut mid-codepoint) and
/// partial-line state carries across [`push`](LineReader::push) calls.
/// Scanning is incremental — each buffered byte is inspected once, so a
/// trickled 1 MiB line costs O(n), not O(n²).
///
/// Over-limit lines do not poison the stream: the reader reports
/// [`LineEvent::TooLong`] once and silently discards bytes until the next
/// newline, after which framing resumes. Memory stays bounded by the
/// limit plus one read chunk.
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    limit: usize,
    /// Index into `buf` up to which we already scanned for `\n`.
    scanned: usize,
    /// Discarding an over-limit line until the next newline.
    resync: bool,
}

impl LineReader {
    /// A reader that frames lines of at most `limit` bytes.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        LineReader {
            buf: Vec::new(),
            limit,
            scanned: 0,
            resync: false,
        }
    }

    /// Appends raw socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed (bounded by the limit outside
    /// resync mode).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next framing event, or `None` if more bytes are needed.
    pub fn next_event(&mut self) -> Option<LineEvent> {
        loop {
            let newline = self.buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|off| self.scanned + off);
            if self.resync {
                match newline {
                    Some(pos) => {
                        // The over-limit line ends here; drop it and
                        // resume normal framing on what follows.
                        self.buf.drain(..=pos);
                        self.scanned = 0;
                        self.resync = false;
                        continue;
                    }
                    None => {
                        // Still inside the oversized line: every buffered
                        // byte is garbage. Memory stays flat.
                        self.buf.clear();
                        self.scanned = 0;
                        return None;
                    }
                }
            }
            return match newline {
                Some(pos) if pos > self.limit => {
                    // Terminated but too long: framing survives, the
                    // payload does not.
                    self.buf.drain(..=pos);
                    self.scanned = 0;
                    Some(LineEvent::TooLong { limit: self.limit })
                }
                Some(pos) => {
                    let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                    self.scanned = 0;
                    line.pop(); // the \n
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    match String::from_utf8(line) {
                        Ok(text) => Some(LineEvent::Line(text)),
                        Err(_) => Some(LineEvent::InvalidUtf8),
                    }
                }
                None if self.buf.len() > self.limit => {
                    // Provably oversized before the terminator arrived:
                    // report once, then discard until the next newline.
                    self.buf.clear();
                    self.scanned = 0;
                    self.resync = true;
                    Some(LineEvent::TooLong { limit: self.limit })
                }
                None => {
                    self.scanned = self.buf.len();
                    None
                }
            };
        }
    }
}

/// A parsed request envelope; the body keeps the raw members for the
/// verb-specific extractors below.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Json,
    /// The verb.
    pub verb: String,
    /// Optional per-request deadline in milliseconds from receipt.
    pub deadline_ms: Option<u64>,
    /// Optional client-supplied trace correlation id (hex u64 on the
    /// wire), echoed in the response envelope.
    pub trace_id: Option<hmdiv_obs::TraceId>,
    /// The full request object (envelope fields included).
    pub body: Json,
}

/// Parses one request line into an envelope.
///
/// # Errors
///
/// * [`ServeError::Parse`] if the line is not valid JSON.
/// * [`ServeError::BadRequest`] if it is not an object with a string
///   `verb`, `deadline_ms` is present but not a whole number, or
///   `trace_id` is present but not a hex-u64 string.
pub fn parse_request(line: &str) -> Result<Envelope, ServeError> {
    let body = json::parse(line).map_err(|e| ServeError::Parse {
        detail: e.to_string(),
    })?;
    if body.as_obj().is_none() {
        return Err(ServeError::BadRequest {
            detail: "request must be a JSON object".into(),
        });
    }
    let verb = body
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "missing string field `verb`".into(),
        })?
        .to_owned();
    let id = body.get("id").cloned().unwrap_or(Json::Null);
    let deadline_ms = match body.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| ServeError::BadRequest {
            detail: "`deadline_ms` must be a non-negative integer".into(),
        })?),
    };
    let trace_id = match body.get("trace_id") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .and_then(hmdiv_obs::TraceId::parse)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: "`trace_id` must be a hex u64 string".into(),
                })?,
        ),
    };
    Ok(Envelope {
        id,
        verb,
        deadline_ms,
        trace_id,
        body,
    })
}

/// Renders a success response line (newline included). A client-supplied
/// trace id is echoed as a `trace_id` envelope member.
#[must_use]
pub fn ok_line(id: &Json, trace: Option<hmdiv_obs::TraceId>, result: Json) -> String {
    let mut members = vec![("id".to_owned(), id.clone())];
    if let Some(t) = trace {
        members.push(("trace_id".to_owned(), Json::str(t.to_hex())));
    }
    members.push(("ok".to_owned(), Json::Bool(true)));
    members.push(("result".to_owned(), result));
    let mut out = String::new();
    Json::Obj(members).write(&mut out);
    out.push('\n');
    out
}

/// Renders an error response line (newline included), echoing a
/// client-supplied trace id like [`ok_line`].
#[must_use]
pub fn err_line(id: &Json, trace: Option<hmdiv_obs::TraceId>, error: &ServeError) -> String {
    let mut members = vec![("id".to_owned(), id.clone())];
    if let Some(t) = trace {
        members.push(("trace_id".to_owned(), Json::str(t.to_hex())));
    }
    members.push(("ok".to_owned(), Json::Bool(false)));
    members.push(("error".to_owned(), error.to_wire()));
    let mut out = String::new();
    Json::Obj(members).write(&mut out);
    out.push('\n');
    out
}

/// A required field of the request body.
pub(crate) fn required<'a>(body: &'a Json, key: &str) -> Result<&'a Json, ServeError> {
    body.get(key).ok_or_else(|| ServeError::BadRequest {
        detail: format!("missing field `{key}`"),
    })
}

/// A required string field.
pub fn required_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ServeError> {
    required(body, key)?
        .as_str()
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("field `{key}` must be a string"),
        })
}

/// A required number field.
pub(crate) fn required_f64(body: &Json, key: &str) -> Result<f64, ServeError> {
    required(body, key)?
        .as_f64()
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("field `{key}` must be a number"),
        })
}

/// A required probability field (validated into `[0, 1]`).
fn required_prob(body: &Json, key: &str) -> Result<Probability, ServeError> {
    Probability::new(required_f64(body, key)?)
        .map_err(|e| ServeError::Model(hmdiv_core::ModelError::from(e)))
}

/// Extracts a demand profile from the request's `profile` member: a JSON
/// object mapping class name to weight, **in class order**.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on shape violations; [`ServeError::Model`]
/// for empty/duplicate/invalid-weight profiles (typed `ModelError`s).
pub fn parse_profile(body: &Json) -> Result<DemandProfile, ServeError> {
    let members = required(body, "profile")?
        .as_obj()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`profile` must be an object of class: weight".into(),
        })?;
    let mut pairs = Vec::with_capacity(members.len());
    for (class, weight) in members {
        let w = weight.as_f64().ok_or_else(|| ServeError::BadRequest {
            detail: format!("profile weight for `{class}` must be a number"),
        })?;
        pairs.push((ClassId::new(class), w));
    }
    DemandProfile::from_weights(pairs).map_err(ServeError::Model)
}

/// Extracts a sequential parameter table from the request's `classes`
/// member: `{name: {"p_mf":…, "p_hf_given_ms":…, "p_hf_given_mf":…}}`.
///
/// # Errors
///
/// As [`parse_profile`], with probability validation per parameter.
pub fn parse_model_params(body: &Json) -> Result<ModelParams, ServeError> {
    let members = required(body, "classes")?
        .as_obj()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`classes` must be an object of class: parameter triple".into(),
        })?;
    let mut builder = ModelParams::builder();
    for (class, triple) in members {
        let cp = ClassParams::new(
            required_prob(triple, "p_mf")?,
            required_prob(triple, "p_hf_given_ms")?,
            required_prob(triple, "p_hf_given_mf")?,
        );
        builder = builder.class(class.as_str(), cp);
    }
    builder.build().map_err(ServeError::Model)
}

/// Extracts a parallel-detection parameter table from `classes`:
/// `{name: {"p_mf":…, "p_h_miss":…, "p_h_misclass":…}}`.
///
/// # Errors
///
/// As [`parse_model_params`].
pub fn parse_detection_params(body: &Json) -> Result<Vec<(ClassId, DetectionParams)>, ServeError> {
    let members = required(body, "classes")?
        .as_obj()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`classes` must be an object of class: parameter triple".into(),
        })?;
    let mut out = Vec::with_capacity(members.len());
    for (class, triple) in members {
        out.push((
            ClassId::new(class),
            DetectionParams::new(
                required_prob(triple, "p_mf")?,
                required_prob(triple, "p_h_miss")?,
                required_prob(triple, "p_h_misclass")?,
            ),
        ));
    }
    Ok(out)
}

/// Extracts the optional `universe` member: `{"classes": [names…],
/// "hash": "16-hex"}` — the serialized [`UniverseManifest`] a caller pins
/// the model's index space with.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on shape violations. Integrity (ordering,
/// duplicates, hash) is checked by `UniverseManifest::restore` at load.
pub fn parse_manifest(body: &Json) -> Result<Option<UniverseManifest>, ServeError> {
    let Some(universe) = body.get("universe") else {
        return Ok(None);
    };
    let classes = universe
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`universe.classes` must be an array of names".into(),
        })?;
    let names = classes
        .iter()
        .map(|c| c.as_str().map(str::to_owned))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`universe.classes` entries must be strings".into(),
        })?;
    let hash = parse_hash(required_str(universe, "hash")?)?;
    Ok(Some(UniverseManifest::from_parts(names, hash)))
}

/// Parses a 16-digit hex content hash.
fn parse_hash(text: &str) -> Result<u64, ServeError> {
    u64::from_str_radix(text, 16).map_err(|_| ServeError::BadRequest {
        detail: format!("`hash` must be a hex u64, got `{text}`"),
    })
}

/// Renders a content hash the way the protocol expects it.
#[must_use]
pub fn render_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Extracts one scenario: an array of change objects, each tagged by `op`.
///
/// Supported ops mirror [`hmdiv_core::extrapolate::Change`]:
/// `improve_machine`, `improve_machine_everywhere`, `set_machine_failure`,
/// `set_reader`, `scale_reader_everywhere`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on shape violations or unknown ops.
pub fn parse_scenario(value: &Json) -> Result<Scenario, ServeError> {
    let changes = value.as_arr().ok_or_else(|| ServeError::BadRequest {
        detail: "a scenario must be an array of change objects".into(),
    })?;
    let mut scenario = Scenario::new();
    for change in changes {
        let op = required_str(change, "op")?;
        scenario = match op {
            "improve_machine" => scenario.improve_machine(
                ClassId::new(required_str(change, "class")?),
                required_f64(change, "factor")?,
            ),
            "improve_machine_everywhere" => {
                scenario.improve_machine_everywhere(required_f64(change, "factor")?)
            }
            "set_machine_failure" => scenario.set_machine_failure(
                ClassId::new(required_str(change, "class")?),
                required_prob(change, "p_mf")?,
            ),
            "set_reader" => scenario.set_reader(
                ClassId::new(required_str(change, "class")?),
                required_prob(change, "p_hf_given_ms")?,
                required_prob(change, "p_hf_given_mf")?,
            ),
            "scale_reader_everywhere" => {
                scenario.scale_reader_everywhere(required_f64(change, "factor")?)
            }
            other => {
                return Err(ServeError::BadRequest {
                    detail: format!("unknown scenario op `{other}`"),
                })
            }
        };
    }
    Ok(scenario)
}

/// Extracts the `scenarios` member: an array of scenarios.
///
/// # Errors
///
/// As [`parse_scenario`]; an empty batch is rejected.
pub fn parse_scenarios(body: &Json) -> Result<Vec<Scenario>, ServeError> {
    let items = required(body, "scenarios")?
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`scenarios` must be an array of scenarios".into(),
        })?;
    if items.is_empty() {
        return Err(ServeError::BadRequest {
            detail: "`scenarios` must not be empty".into(),
        });
    }
    items.iter().map(parse_scenario).collect()
}

/// Extracts the `members` array of a cohort request: each entry carries a
/// `name`, a `weight`, and the full per-class parameter map of a
/// sequential model. Shared by the `load_cohort` verb and snapshot
/// restore, so both paths accept exactly the same shape.
///
/// # Errors
///
/// [`ServeError::BadRequest`] when `members` is missing, not an array, or
/// an entry violates the member shape.
pub fn parse_cohort_members(body: &Json) -> Result<Vec<CohortMember>, ServeError> {
    let members = required(body, "members")?
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest {
            detail: "`members` must be an array".to_owned(),
        })?;
    let mut parsed = Vec::with_capacity(members.len());
    for member in members {
        parsed.push(CohortMember {
            name: required_str(member, "name")?.to_owned(),
            weight: required_f64(member, "weight")?,
            model: SequentialModel::new(parse_model_params(member)?),
        });
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip_and_defaults() {
        let env = parse_request(r#"{"id":7,"verb":"ping"}"#).unwrap();
        assert_eq!(env.verb, "ping");
        assert_eq!(env.id, Json::Num(7.0));
        assert_eq!(env.deadline_ms, None);
        assert_eq!(env.trace_id, None);
        let env = parse_request(r#"{"verb":"ping","deadline_ms":250}"#).unwrap();
        assert_eq!(env.id, Json::Null);
        assert_eq!(env.deadline_ms, Some(250));
    }

    #[test]
    fn trace_ids_parse_and_reject_non_hex() {
        let env = parse_request(r#"{"verb":"ping","trace_id":"00000000000000ff"}"#).unwrap();
        assert_eq!(env.trace_id, Some(hmdiv_obs::TraceId(255)));
        assert!(matches!(
            parse_request(r#"{"verb":"ping","trace_id":"not-hex"}"#),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"verb":"ping","trace_id":7}"#),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn envelope_rejections_are_typed() {
        assert!(matches!(
            parse_request("not json"),
            Err(ServeError::Parse { .. })
        ));
        assert!(matches!(
            parse_request("[1,2]"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"id":1}"#),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"verb":"ping","deadline_ms":-1}"#),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn response_lines_are_golden() {
        assert_eq!(
            ok_line(
                &Json::Num(1.0),
                None,
                Json::Obj(vec![("pong".into(), Json::Bool(true))])
            ),
            "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}\n"
        );
        assert_eq!(
            err_line(&Json::Num(2.0), None, &ServeError::DeadlineExceeded),
            "{\"id\":2,\"ok\":false,\"error\":{\"code\":\"deadline_exceeded\",\
             \"message\":\"deadline expired before evaluation\"}}\n"
        );
        // A trace id echoes between `id` and `ok`, zero-padded hex.
        assert_eq!(
            ok_line(
                &Json::Num(3.0),
                Some(hmdiv_obs::TraceId(255)),
                Json::Obj(vec![("pong".into(), Json::Bool(true))])
            ),
            "{\"id\":3,\"trace_id\":\"00000000000000ff\",\"ok\":true,\
             \"result\":{\"pong\":true}}\n"
        );
        assert_eq!(
            err_line(
                &Json::Num(4.0),
                Some(hmdiv_obs::TraceId(16)),
                &ServeError::DeadlineExceeded
            ),
            "{\"id\":4,\"trace_id\":\"0000000000000010\",\"ok\":false,\
             \"error\":{\"code\":\"deadline_exceeded\",\
             \"message\":\"deadline expired before evaluation\"}}\n"
        );
    }

    #[test]
    fn profile_preserves_wire_order() {
        let body = json::parse(r#"{"profile":{"easy":0.9,"difficult":0.1}}"#).unwrap();
        let profile = parse_profile(&body).unwrap();
        let order: Vec<&str> = profile.classes().iter().map(ClassId::name).collect();
        assert_eq!(order, ["easy", "difficult"], "wire order, not sorted");
        // Reversed wire order yields the reversed profile order.
        let body = json::parse(r#"{"profile":{"difficult":0.1,"easy":0.9}}"#).unwrap();
        let profile = parse_profile(&body).unwrap();
        let order: Vec<&str> = profile.classes().iter().map(ClassId::name).collect();
        assert_eq!(order, ["difficult", "easy"]);
    }

    #[test]
    fn profile_errors_are_model_typed() {
        let dup = json::parse(r#"{"profile":{"easy":0.5,"easy":0.5}}"#).unwrap();
        assert!(matches!(
            parse_profile(&dup),
            Err(ServeError::Model(
                hmdiv_core::ModelError::DuplicateClass { .. }
            ))
        ));
        let empty = json::parse(r#"{"profile":{}}"#).unwrap();
        assert!(matches!(
            parse_profile(&empty),
            Err(ServeError::Model(hmdiv_core::ModelError::Empty { .. }))
        ));
        let shape = json::parse(r#"{"profile":[1]}"#).unwrap();
        assert!(matches!(
            parse_profile(&shape),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn model_params_parse_the_paper_table() {
        let body = json::parse(
            r#"{"classes":{
                "easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                "difficult":{"p_mf":0.41,"p_hf_given_ms":0.4,"p_hf_given_mf":0.9}
            }}"#,
        )
        .unwrap();
        let params = parse_model_params(&body).unwrap();
        assert_eq!(
            &params,
            hmdiv_core::paper::example_model().unwrap().params()
        );
        let invalid = json::parse(
            r#"{"classes":{"easy":{"p_mf":1.5,"p_hf_given_ms":0.1,"p_hf_given_mf":0.2}}}"#,
        )
        .unwrap();
        assert!(matches!(
            parse_model_params(&invalid),
            Err(ServeError::Model(hmdiv_core::ModelError::Prob(_)))
        ));
    }

    #[test]
    fn manifest_round_trips_through_the_wire_shape() {
        let universe = hmdiv_core::ClassUniverse::from_names(["difficult", "easy"]);
        let manifest = UniverseManifest::of(&universe);
        let wire = format!(
            r#"{{"universe":{{"classes":["difficult","easy"],"hash":"{}"}}}}"#,
            render_hash(manifest.hash())
        );
        let body = json::parse(&wire).unwrap();
        let parsed = parse_manifest(&body).unwrap().unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.restore().unwrap(), universe);
        // Absent member is simply None.
        assert_eq!(parse_manifest(&json::parse("{}").unwrap()).unwrap(), None);
        // Bad hex is a bad request, not a panic.
        let bad = json::parse(r#"{"universe":{"classes":["a"],"hash":"zz"}}"#).unwrap();
        assert!(matches!(
            parse_manifest(&bad),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn scenarios_parse_every_op() {
        let body = json::parse(
            r#"{"scenarios":[
                [{"op":"improve_machine","class":"difficult","factor":10}],
                [{"op":"improve_machine_everywhere","factor":2}],
                [{"op":"set_machine_failure","class":"easy","p_mf":0.01}],
                [{"op":"set_reader","class":"easy","p_hf_given_ms":0.1,"p_hf_given_mf":0.2}],
                [{"op":"scale_reader_everywhere","factor":1.5}],
                []
            ]}"#,
        )
        .unwrap();
        let scenarios = parse_scenarios(&body).unwrap();
        assert_eq!(scenarios.len(), 6);
        assert_eq!(scenarios[5], Scenario::new());
        assert_eq!(scenarios[0].changes().len(), 1);
        let unknown = json::parse(r#"{"scenarios":[[{"op":"warp","factor":2}]]}"#).unwrap();
        assert!(matches!(
            parse_scenarios(&unknown),
            Err(ServeError::BadRequest { detail }) if detail.contains("warp")
        ));
        let empty = json::parse(r#"{"scenarios":[]}"#).unwrap();
        assert!(parse_scenarios(&empty).is_err());
    }

    #[test]
    fn detection_params_parse() {
        let body =
            json::parse(r#"{"classes":{"easy":{"p_mf":0.07,"p_h_miss":0.2,"p_h_misclass":0.05}}}"#)
                .unwrap();
        let parsed = parse_detection_params(&body).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0.name(), "easy");
    }

    #[test]
    fn cohort_members_parse_and_reject_bad_shapes() {
        let body = json::parse(
            r#"{"members":[
                {"name":"alice","weight":2.0,
                 "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.003,"p_hf_given_mf":0.4}}},
                {"name":"bob","weight":1.0,
                 "classes":{"easy":{"p_mf":0.07,"p_hf_given_ms":0.01,"p_hf_given_mf":0.5}}}
            ]}"#,
        )
        .unwrap();
        let members = parse_cohort_members(&body).unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].name, "alice");
        assert_eq!(members[0].weight, 2.0);
        let not_array = json::parse(r#"{"members":{}}"#).unwrap();
        assert!(matches!(
            parse_cohort_members(&not_array),
            Err(ServeError::BadRequest { .. })
        ));
        let missing_weight = json::parse(r#"{"members":[{"name":"a","classes":{}}]}"#).unwrap();
        assert!(parse_cohort_members(&missing_weight).is_err());
    }

    #[test]
    fn line_reader_frames_across_split_pushes() {
        let mut reader = LineReader::new(64);
        reader.push(b"{\"verb\":\"pi");
        assert_eq!(reader.next_event(), None);
        reader.push(b"ng\"}\r\n{\"verb\"");
        assert_eq!(
            reader.next_event(),
            Some(LineEvent::Line("{\"verb\":\"ping\"}".into()))
        );
        assert_eq!(reader.next_event(), None);
        reader.push(b":\"metrics\"}\n");
        assert_eq!(
            reader.next_event(),
            Some(LineEvent::Line("{\"verb\":\"metrics\"}".into()))
        );
        assert_eq!(reader.next_event(), None);
    }

    #[test]
    fn line_reader_trickles_one_byte_at_a_time() {
        let mut reader = LineReader::new(32);
        for &b in b"hello" {
            reader.push(&[b]);
            assert_eq!(reader.next_event(), None);
        }
        reader.push(b"\n");
        assert_eq!(reader.next_event(), Some(LineEvent::Line("hello".into())));
    }

    #[test]
    fn line_reader_splits_utf8_across_pushes_and_flags_invalid() {
        // "é" is 0xC3 0xA9 — split the codepoint across two pushes.
        let mut reader = LineReader::new(32);
        reader.push(&[0xC3]);
        assert_eq!(reader.next_event(), None);
        reader.push(&[0xA9, b'\n']);
        assert_eq!(reader.next_event(), Some(LineEvent::Line("é".into())));
        // A lone continuation byte in a complete line is invalid UTF-8 but
        // does not break framing: the next line still parses.
        reader.push(&[0xA9, b'\n', b'o', b'k', b'\n']);
        assert_eq!(reader.next_event(), Some(LineEvent::InvalidUtf8));
        assert_eq!(reader.next_event(), Some(LineEvent::Line("ok".into())));
    }

    #[test]
    fn line_reader_reports_too_long_once_and_resyncs() {
        let mut reader = LineReader::new(4);
        // Unterminated overflow: reported as soon as it is provable, then
        // the reader silently discards until the newline arrives.
        reader.push(b"aaaaaaaa");
        assert_eq!(reader.next_event(), Some(LineEvent::TooLong { limit: 4 }));
        assert_eq!(reader.next_event(), None);
        reader.push(b"aaaa");
        assert_eq!(reader.next_event(), None, "still inside the bad line");
        assert_eq!(reader.buffered(), 0, "resync keeps memory flat");
        reader.push(b"a\nok\n");
        assert_eq!(reader.next_event(), Some(LineEvent::Line("ok".into())));
        // Terminated overflow in a single push: one event, framing intact.
        reader.push(b"bbbbbbbb\nfine\n");
        assert_eq!(reader.next_event(), Some(LineEvent::TooLong { limit: 4 }));
        assert_eq!(reader.next_event(), Some(LineEvent::Line("fine".into())));
        assert_eq!(reader.next_event(), None);
    }
}
