//! A tiny latch for coordinating graceful shutdown across threads.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A one-way "please stop" latch: once requested it stays requested.
///
/// The accept loop polls it, connection threads check it between
/// requests, and [`request`](ShutdownSignal::request) wakes anything
/// blocked in [`wait`](ShutdownSignal::wait).
#[derive(Debug, Default)]
pub struct ShutdownSignal {
    requested: Mutex<bool>,
    bell: Condvar,
}

impl ShutdownSignal {
    /// A fresh, un-requested signal.
    #[must_use]
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    fn lock(&self) -> MutexGuard<'_, bool> {
        // The critical sections below cannot panic, so poisoning can only
        // come from a foreign panic mid-lock; the boolean is still valid.
        self.requested
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Requests shutdown and wakes all waiters. Idempotent.
    pub fn request(&self) {
        *self.lock() = true;
        self.bell.notify_all();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        *self.lock()
    }

    /// Blocks until shutdown is requested or `timeout` elapses; returns
    /// whether shutdown was requested.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut requested = self.lock();
        if *requested {
            return true;
        }
        let (guard, _) = self
            .bell
            .wait_timeout(requested, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        requested = guard;
        *requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latch_is_sticky_and_wakes_waiters() {
        let signal = Arc::new(ShutdownSignal::new());
        assert!(!signal.is_requested());
        assert!(!signal.wait_timeout(Duration::from_millis(1)));
        let waiter = {
            let signal = Arc::clone(&signal);
            std::thread::spawn(move || signal.wait_timeout(Duration::from_secs(30)))
        };
        signal.request();
        signal.request(); // idempotent
        assert!(signal.is_requested());
        assert!(waiter.join().expect("waiter thread panicked"));
        // Already-requested waits return immediately.
        assert!(signal.wait_timeout(Duration::ZERO));
    }
}
