//! The model registry: a content-hash-addressed store of loaded artifacts.
//!
//! Identical parameter tables load to the *same* id — loading is
//! idempotent, so clients can re-send `load` on reconnect without growing
//! the store. Ids are derived with FNV-1a over a canonical byte encoding
//! of the artifact (kind tag, universe content hash, every parameter's
//! `f64::to_bits`), so the id commits to the exact numerics: two models
//! that differ in the 52nd mantissa bit get different ids.
//!
//! Every artifact's dense [`CompiledModel`](hmdiv_core::CompiledModel)
//! form is pre-warmed at load, so the first `evaluate` on a fresh model
//! pays no compile latency inside the batch executor. If the caller
//! supplies a serialized universe manifest, compatibility is verified at
//! load and a [`hmdiv_core::ModelError::UniverseMismatch`] is reported
//! before the model is admitted.
//!
//! Every load also runs the `hmdiv-analyze` static analyzer over the
//! artifact's compiled form. An error-severity finding refuses admission
//! with [`ServeError::Rejected`], whose wire code is the stable `HM0xx`
//! diagnostic code — bad models are rejected at `load`, not discovered
//! mid-batch at `evaluate`. Warnings and notes never block a load; the
//! `analyze` verb reports them on demand.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use hmdiv_core::cohort::{CohortMember, ReaderCohort};
use hmdiv_core::{
    ClassId, CompiledModel, DetectionParams, ModelParams, ParallelDetectionModel, SequentialModel,
    UniverseManifest,
};

use crate::error::ServeError;
use crate::json::{self, Json};
use crate::protocol;

/// FNV-1a offset basis (the same constants the core universe hash uses;
/// kept local so the registry id scheme is self-contained).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a hasher over canonical artifact bytes.
#[derive(Debug)]
struct Fnv(u64);

impl Fnv {
    fn new(kind: u8) -> Self {
        let mut h = Fnv(FNV_OFFSET);
        h.byte(kind);
        h
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
        // Separator so `("ab", "c")` and `("a", "bc")` hash differently.
        self.byte(0xFF);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A loaded artifact: the registry's unit of storage.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A sequential "machine first, human checks" model.
    Sequential(Arc<SequentialModel>),
    /// A parallel-detection model.
    Detection(Arc<ParallelDetectionModel>),
    /// A weighted reader cohort.
    Cohort(Arc<ReaderCohort>),
}

impl Artifact {
    /// The artifact's kind tag, as reported by the `models` verb.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Sequential(_) => "sequential",
            Artifact::Detection(_) => "detection",
            Artifact::Cohort(_) => "cohort",
        }
    }

    /// Runs the static analyzer over the artifact's compiled form. Pure:
    /// the same artifact always yields the same report.
    #[must_use]
    pub fn analyze(&self) -> hmdiv_analyze::Report {
        match self {
            Artifact::Sequential(m) => hmdiv_analyze::analyze_sequential(m),
            Artifact::Detection(m) => hmdiv_analyze::analyze_detection(m.compiled()),
            Artifact::Cohort(c) => hmdiv_analyze::analyze_cohort(c),
        }
    }
}

/// Turns an analyzer report into an admission decision: the first
/// error-severity diagnostic refuses the artifact with its `HM0xx` code
/// on the wire.
fn admit(report: &hmdiv_analyze::Report) -> Result<(), ServeError> {
    match report.first_error() {
        Some(d) => Err(ServeError::Rejected {
            code: d.code.to_owned(),
            detail: d.message.clone(),
        }),
        None => Ok(()),
    }
}

/// What a successful `load` reports back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReceipt {
    /// The content-addressed artifact id (`m…` for models, `c…` for
    /// cohorts).
    pub id: String,
    /// The class names of the artifact's universe, in index order.
    pub classes: Vec<String>,
    /// The universe content hash.
    pub universe_hash: u64,
}

/// One row of the `models` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRow {
    /// The artifact id.
    pub id: String,
    /// The kind tag (`sequential`, `detection`, `cohort`).
    pub kind: &'static str,
    /// Number of classes in the artifact's universe.
    pub classes: usize,
    /// The universe content hash.
    pub universe_hash: u64,
}

/// The content-addressed artifact store shared by all connections.
#[derive(Debug, Default)]
pub struct Registry {
    store: Mutex<BTreeMap<String, Artifact>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn store(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Artifact>> {
        // A poisoned lock means another connection thread panicked while
        // holding it; the map itself (Arc inserts only) is still coherent,
        // so recover rather than cascade the panic through every client.
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Loads (or re-finds) a sequential model, pre-warming its compiled
    /// form.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] with `UniverseMismatch` when `manifest` is
    /// given and does not match the model's interned universe.
    pub fn load_sequential(
        &self,
        params: ModelParams,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let model = SequentialModel::new(params);
        let compiled = Arc::clone(model.compiled());
        verify_manifest(manifest, compiled.universe())?;
        admit(&hmdiv_analyze::analyze_model(&compiled, None))?;
        let mut h = Fnv::new(b'S');
        h.u64(compiled.universe().content_hash());
        for cp in compiled.params_slice() {
            h.f64(cp.p_mf().value());
            h.f64(cp.p_hf_given_ms().value());
            h.f64(cp.p_hf_given_mf().value());
        }
        let id = format!("m{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: compiled
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: compiled.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Sequential(Arc::new(model)));
        Ok(receipt)
    }

    /// Loads (or re-finds) a parallel-detection model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for table validation failures
    /// (empty/duplicate) and manifest mismatches.
    pub fn load_detection(
        &self,
        classes: Vec<(ClassId, DetectionParams)>,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let mut builder = ParallelDetectionModel::builder();
        for (class, dp) in classes {
            builder = builder.class(class, dp);
        }
        let model = builder.build().map_err(ServeError::Model)?;
        let compiled = Arc::clone(model.compiled());
        verify_manifest(manifest, compiled.universe())?;
        admit(&hmdiv_analyze::analyze_detection(&compiled))?;
        let mut h = Fnv::new(b'D');
        h.u64(compiled.universe().content_hash());
        for index in 0..compiled.universe().len() as u32 {
            let dp = compiled.params_at(index);
            h.f64(dp.p_mf.value());
            h.f64(dp.p_h_miss.value());
            h.f64(dp.p_h_misclass.value());
        }
        let id = format!("m{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: compiled
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: compiled.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Detection(Arc::new(model)));
        Ok(receipt)
    }

    /// Loads (or re-finds) a reader cohort, pre-warming every member's
    /// compiled model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for cohort validation failures and manifest
    /// mismatches (checked against every member's universe).
    pub fn load_cohort(
        &self,
        members: Vec<CohortMember>,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let cohort = ReaderCohort::new(members).map_err(ServeError::Model)?;
        admit(&hmdiv_analyze::analyze_cohort(&cohort))?;
        let mut h = Fnv::new(b'C');
        for m in cohort.members() {
            let compiled = m.model.compiled();
            verify_manifest(manifest, compiled.universe())?;
            h.bytes(m.name.as_bytes());
            h.f64(m.weight);
            h.u64(compiled.universe().content_hash());
            for cp in compiled.params_slice() {
                h.f64(cp.p_mf().value());
                h.f64(cp.p_hf_given_ms().value());
                h.f64(cp.p_hf_given_mf().value());
            }
        }
        // `ReaderCohort::new` rejects empty member lists, so index 0 exists.
        let first = cohort.members()[0].model.compiled();
        let id = format!("c{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: first
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: first.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Cohort(Arc::new(cohort)));
        Ok(receipt)
    }

    /// Fetches an artifact by id (cheap: clones the inner `Arc`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownArtifact`] if nothing is loaded under `id`.
    pub fn get(&self, id: &str) -> Result<Artifact, ServeError> {
        self.store()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::UnknownArtifact { id: id.to_owned() })
    }

    /// Lists all loaded artifacts in id order.
    #[must_use]
    pub fn list(&self) -> Vec<ArtifactRow> {
        self.store()
            .iter()
            .map(|(id, artifact)| {
                let (classes, universe_hash) = match artifact {
                    Artifact::Sequential(m) => {
                        let u = m.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                    Artifact::Detection(m) => {
                        let u = m.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                    Artifact::Cohort(c) => {
                        let u = c.members()[0].model.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                };
                ArtifactRow {
                    id: id.clone(),
                    kind: artifact.kind(),
                    classes,
                    universe_hash,
                }
            })
            .collect()
    }

    /// Renders the artifact under `id` in the exact wire shape its load
    /// verb accepts — the same rendering `save_to_dir` persists — with the
    /// content id prepended. This is the `fetch` verb's payload and the
    /// fleet sync transfer format: a receiving replica replays the object
    /// through its own load path (re-hash, re-analyze) and checks the
    /// recomputed id against the `id` field, so a corrupt or tampered
    /// transfer cannot be admitted.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownArtifact`] if nothing is loaded under `id`.
    pub fn export_wire(&self, id: &str) -> Result<Json, ServeError> {
        let artifact = self.get(id)?;
        let Json::Obj(mut members) = snapshot_json(&artifact) else {
            unreachable!("snapshot_json always renders an object");
        };
        members.insert(0, ("id".to_owned(), Json::str(id)));
        Ok(Json::Obj(members))
    }

    /// Number of loaded artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store().is_empty()
    }

    /// Persists every loaded artifact to `dir` as `<id>.json`, one file
    /// per artifact in the exact wire shape the `load`/`load_cohort`
    /// verbs accept. Parameters are rendered with the shortest
    /// round-trip float representation, so a restore rebuilds
    /// bit-identical models and therefore **identical content ids** — the
    /// filename is a checkable commitment. Files are written via a
    /// temporary sibling and renamed, so a crash mid-save never leaves a
    /// torn snapshot under a valid id. Returns the saved ids in id order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] on any I/O failure.
    pub fn save_to_dir(&self, dir: &Path) -> Result<Vec<String>, ServeError> {
        std::fs::create_dir_all(dir).map_err(|e| snapshot_io("create", dir, &e))?;
        let entries: Vec<(String, Artifact)> = self
            .store()
            .iter()
            .map(|(id, artifact)| (id.clone(), artifact.clone()))
            .collect();
        let mut ids = Vec::with_capacity(entries.len());
        for (id, artifact) in entries {
            let mut text = String::new();
            snapshot_json(&artifact).write(&mut text);
            text.push('\n');
            let final_path = dir.join(format!("{id}.json"));
            let tmp_path = dir.join(format!("{id}.json.tmp"));
            std::fs::write(&tmp_path, &text).map_err(|e| snapshot_io("write", &tmp_path, &e))?;
            std::fs::rename(&tmp_path, &final_path)
                .map_err(|e| snapshot_io("rename", &final_path, &e))?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// Restores every `<id>.json` snapshot in `dir`, in filename order.
    /// Each artifact replays through the normal load path — manifest-free,
    /// but **re-gated through the hmdiv-analyze admission check** exactly
    /// like a fresh `load` — and the resulting content id must equal the
    /// filename stem, or the file is rejected as corrupt. Returns the
    /// restored ids. A missing directory restores nothing (empty result),
    /// so a cold start with a configured-but-unused snapshot dir is not
    /// an error.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] for unreadable or torn files and id
    /// mismatches; [`ServeError::Rejected`] when a snapshot no longer
    /// passes admission.
    pub fn restore_from_dir(&self, dir: &Path) -> Result<Vec<String>, ServeError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(snapshot_io("read", dir, &e)),
        };
        let mut files: Vec<std::path::PathBuf> = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| snapshot_io("read", dir, &e))?.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                files.push(path);
            }
        }
        files.sort();
        let mut ids = Vec::with_capacity(files.len());
        for path in files {
            let expected = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_owned();
            let text =
                std::fs::read_to_string(&path).map_err(|e| snapshot_io("read", &path, &e))?;
            let body = json::parse(&text).map_err(|e| ServeError::Snapshot {
                detail: format!("{}: {e}", path.display()),
            })?;
            let kind = protocol::required_str(&body, "kind").map_err(|e| ServeError::Snapshot {
                detail: format!("{}: {e}", path.display()),
            })?;
            let receipt = match kind {
                "sequential" => self.load_sequential(
                    protocol::parse_model_params(&body).map_err(|e| ServeError::Snapshot {
                        detail: format!("{}: {e}", path.display()),
                    })?,
                    None,
                )?,
                "detection" => self.load_detection(
                    protocol::parse_detection_params(&body).map_err(|e| ServeError::Snapshot {
                        detail: format!("{}: {e}", path.display()),
                    })?,
                    None,
                )?,
                "cohort" => self.load_cohort(
                    protocol::parse_cohort_members(&body).map_err(|e| ServeError::Snapshot {
                        detail: format!("{}: {e}", path.display()),
                    })?,
                    None,
                )?,
                other => {
                    return Err(ServeError::Snapshot {
                        detail: format!("{}: unknown snapshot kind `{other}`", path.display()),
                    })
                }
            };
            if receipt.id != expected {
                return Err(ServeError::Snapshot {
                    detail: format!(
                        "{}: content id mismatch (file says `{expected}`, payload hashes to \
                         `{}`)",
                        path.display(),
                        receipt.id
                    ),
                });
            }
            ids.push(receipt.id);
        }
        Ok(ids)
    }
}

/// Wraps an I/O failure on a snapshot path as a typed snapshot error.
fn snapshot_io(op: &str, path: &Path, e: &std::io::Error) -> ServeError {
    ServeError::Snapshot {
        detail: format!("{op} {}: {e}", path.display()),
    }
}

/// The per-class parameter map of a sequential model, in universe index
/// order, in the `load` wire shape.
fn sequential_classes_json(compiled: &CompiledModel) -> Json {
    let classes = compiled
        .universe()
        .classes()
        .iter()
        .zip(compiled.params_slice())
        .map(|(class, cp)| {
            (
                class.name().to_owned(),
                Json::Obj(vec![
                    ("p_mf".to_owned(), Json::Num(cp.p_mf().value())),
                    (
                        "p_hf_given_ms".to_owned(),
                        Json::Num(cp.p_hf_given_ms().value()),
                    ),
                    (
                        "p_hf_given_mf".to_owned(),
                        Json::Num(cp.p_hf_given_mf().value()),
                    ),
                ]),
            )
        })
        .collect();
    Json::Obj(classes)
}

/// Renders one artifact in the wire shape its load verb accepts, plus the
/// `kind` discriminator the restore path dispatches on.
fn snapshot_json(artifact: &Artifact) -> Json {
    match artifact {
        Artifact::Sequential(m) => Json::Obj(vec![
            ("kind".to_owned(), Json::str("sequential")),
            ("classes".to_owned(), sequential_classes_json(m.compiled())),
        ]),
        Artifact::Detection(m) => {
            let compiled = m.compiled();
            let classes = compiled
                .universe()
                .classes()
                .iter()
                .enumerate()
                .map(|(index, class)| {
                    #[allow(clippy::cast_possible_truncation)]
                    let dp = compiled.params_at(index as u32);
                    (
                        class.name().to_owned(),
                        Json::Obj(vec![
                            ("p_mf".to_owned(), Json::Num(dp.p_mf.value())),
                            ("p_h_miss".to_owned(), Json::Num(dp.p_h_miss.value())),
                            (
                                "p_h_misclass".to_owned(),
                                Json::Num(dp.p_h_misclass.value()),
                            ),
                        ]),
                    )
                })
                .collect();
            Json::Obj(vec![
                ("kind".to_owned(), Json::str("detection")),
                ("classes".to_owned(), Json::Obj(classes)),
            ])
        }
        Artifact::Cohort(c) => {
            let members = c
                .members()
                .iter()
                .map(|m| {
                    Json::Obj(vec![
                        ("name".to_owned(), Json::str(&m.name)),
                        ("weight".to_owned(), Json::Num(m.weight)),
                        (
                            "classes".to_owned(),
                            sequential_classes_json(m.model.compiled()),
                        ),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("kind".to_owned(), Json::str("cohort")),
                ("members".to_owned(), Json::Arr(members)),
            ])
        }
    }
}

fn verify_manifest(
    manifest: Option<&UniverseManifest>,
    universe: &hmdiv_core::ClassUniverse,
) -> Result<(), ServeError> {
    if let Some(m) = manifest {
        let pinned = m.restore().map_err(ServeError::Model)?;
        pinned
            .verify_compatible(universe)
            .map_err(ServeError::Model)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    fn paper_params() -> ModelParams {
        paper::example_model().unwrap().params().clone()
    }

    #[test]
    fn loading_is_idempotent_and_content_addressed() {
        let reg = Registry::new();
        let a = reg.load_sequential(paper_params(), None).unwrap();
        let b = reg.load_sequential(paper_params(), None).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert!(a.id.starts_with('m'));
        assert_eq!(a.classes, ["difficult", "easy"]);
        // A single-bit parameter change produces a different id.
        let tweaked = paper_params()
            .with_class_updated(&ClassId::new("easy"), |cp| {
                Ok(cp.with_p_mf(hmdiv_prob::Probability::new(f64::from_bits(
                    cp.p_mf().value().to_bits() + 1,
                ))?))
            })
            .unwrap();
        let c = reg.load_sequential(tweaked, None).unwrap();
        assert_ne!(a.id, c.id);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn manifest_gate_rejects_mismatched_universes() {
        let reg = Registry::new();
        let wrong = UniverseManifest::of(&hmdiv_core::ClassUniverse::from_names(["other"]));
        let err = reg
            .load_sequential(paper_params(), Some(&wrong))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Model(hmdiv_core::ModelError::UniverseMismatch { .. })
        ));
        assert!(reg.is_empty(), "rejected loads must not be admitted");
        // The right manifest is accepted.
        let model = paper::example_model().unwrap();
        let right = UniverseManifest::of(model.compiled().universe());
        assert!(reg.load_sequential(paper_params(), Some(&right)).is_ok());
    }

    #[test]
    fn analyzer_gate_rejects_mismatched_cohort_universes() {
        let reg = Registry::new();
        let alien = ModelParams::builder()
            .class(
                ClassId::new("alien"),
                hmdiv_core::ClassParams::new(
                    hmdiv_prob::Probability::new(0.1).unwrap(),
                    hmdiv_prob::Probability::new(0.2).unwrap(),
                    hmdiv_prob::Probability::new(0.3).unwrap(),
                ),
            )
            .build()
            .unwrap();
        let err = reg
            .load_cohort(
                vec![
                    CohortMember {
                        name: "r1".into(),
                        model: paper::example_model().unwrap(),
                        weight: 1.0,
                    },
                    CohortMember {
                        name: "r2".into(),
                        model: SequentialModel::new(alien),
                        weight: 1.0,
                    },
                ],
                None,
            )
            .unwrap_err();
        assert_eq!(err.code(), "HM030", "{err}");
        assert!(reg.is_empty(), "rejected loads must not be admitted");
    }

    #[test]
    fn clean_artifacts_analyze_without_errors_and_still_load() {
        let reg = Registry::new();
        let receipt = reg.load_sequential(paper_params(), None).unwrap();
        let artifact = reg.get(&receipt.id).unwrap();
        let report = artifact.analyze();
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn kinds_do_not_collide_and_listing_reports_them() {
        let reg = Registry::new();
        let seq = reg.load_sequential(paper_params(), None).unwrap();
        let det = reg
            .load_detection(
                vec![(
                    ClassId::new("easy"),
                    DetectionParams::new(
                        hmdiv_prob::Probability::new(0.07).unwrap(),
                        hmdiv_prob::Probability::new(0.2).unwrap(),
                        hmdiv_prob::Probability::new(0.05).unwrap(),
                    ),
                )],
                None,
            )
            .unwrap();
        let coh = reg
            .load_cohort(
                vec![CohortMember {
                    name: "r1".into(),
                    model: paper::example_model().unwrap(),
                    weight: 1.0,
                }],
                None,
            )
            .unwrap();
        assert_ne!(seq.id, det.id);
        assert!(coh.id.starts_with('c'));
        let rows = reg.list();
        assert_eq!(rows.len(), 3);
        let kinds: Vec<&str> = rows.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&"sequential"));
        assert!(kinds.contains(&"detection"));
        assert!(kinds.contains(&"cohort"));
        assert!(matches!(
            reg.get("m0000000000000000"),
            Err(ServeError::UnknownArtifact { .. })
        ));
        assert!(reg.get(&seq.id).is_ok());
    }

    /// A unique scratch directory under the system temp dir, removed when
    /// dropped.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> ScratchDir {
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("hmdiv-registry-{tag}-{}-{n}", std::process::id()));
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            drop(std::fs::remove_dir_all(&self.0));
        }
    }

    #[test]
    fn snapshots_round_trip_every_kind_with_identical_ids() {
        let reg = Registry::new();
        let seq = reg.load_sequential(paper_params(), None).unwrap();
        let det = reg
            .load_detection(
                vec![(
                    ClassId::new("easy"),
                    DetectionParams::new(
                        hmdiv_prob::Probability::new(0.07).unwrap(),
                        hmdiv_prob::Probability::new(0.2).unwrap(),
                        hmdiv_prob::Probability::new(0.05).unwrap(),
                    ),
                )],
                None,
            )
            .unwrap();
        let coh = reg
            .load_cohort(
                vec![
                    CohortMember {
                        name: "r1".into(),
                        model: paper::example_model().unwrap(),
                        weight: 2.0,
                    },
                    CohortMember {
                        name: "r2".into(),
                        model: paper::example_model().unwrap(),
                        weight: 1.0,
                    },
                ],
                None,
            )
            .unwrap();
        let scratch = ScratchDir::new("roundtrip");
        let saved = reg.save_to_dir(&scratch.0).unwrap();
        assert_eq!(saved.len(), 3);

        // A fresh registry restored from disk serves the same ids.
        let warm = Registry::new();
        let mut restored = warm.restore_from_dir(&scratch.0).unwrap();
        restored.sort();
        let mut expected = vec![seq.id.clone(), det.id.clone(), coh.id.clone()];
        expected.sort();
        assert_eq!(restored, expected, "restore must rebuild identical ids");
        assert!(warm.get(&seq.id).is_ok());
        assert!(warm.get(&det.id).is_ok());
        assert!(warm.get(&coh.id).is_ok());
        // The restored sequential model is bit-identical, not just
        // id-identical.
        let (orig, back) = (reg.get(&seq.id).unwrap(), warm.get(&seq.id).unwrap());
        let (Artifact::Sequential(a), Artifact::Sequential(b)) = (orig, back) else {
            panic!("expected sequential artifacts");
        };
        let profile = paper::field_profile().unwrap();
        let pa = a.compiled().bind_profile(&profile).unwrap();
        let pb = b.compiled().bind_profile(&profile).unwrap();
        assert_eq!(
            a.compiled().system_failure(&pa).value().to_bits(),
            b.compiled().system_failure(&pb).value().to_bits()
        );
    }

    #[test]
    fn export_wire_round_trips_through_the_load_path() {
        let reg = Registry::new();
        let receipt = reg.load_sequential(paper_params(), None).unwrap();
        let wire = reg.export_wire(&receipt.id).unwrap();
        // The id leads the object and matches the registry key.
        assert_eq!(wire.get("id").and_then(Json::as_str), Some(&*receipt.id));
        assert_eq!(wire.get("kind").and_then(Json::as_str), Some("sequential"));
        // Replaying the exported shape into a fresh registry rebuilds the
        // identical content id — the sync transfer invariant.
        let peer = Registry::new();
        let replayed = peer
            .load_sequential(protocol::parse_model_params(&wire).unwrap(), None)
            .unwrap();
        assert_eq!(replayed.id, receipt.id);
        assert!(matches!(
            reg.export_wire("m0000000000000000"),
            Err(ServeError::UnknownArtifact { .. })
        ));
    }

    #[test]
    fn missing_snapshot_dir_restores_nothing() {
        let reg = Registry::new();
        let scratch = ScratchDir::new("missing");
        assert_eq!(
            reg.restore_from_dir(&scratch.0).unwrap(),
            Vec::<String>::new()
        );
        assert!(reg.is_empty());
    }

    #[test]
    fn tampered_snapshots_are_rejected_by_the_id_check() {
        let reg = Registry::new();
        let receipt = reg.load_sequential(paper_params(), None).unwrap();
        let scratch = ScratchDir::new("tamper");
        reg.save_to_dir(&scratch.0).unwrap();
        // Rename the snapshot so the filename no longer matches the
        // payload's content hash: the restore must refuse it.
        let good = scratch.0.join(format!("{}.json", receipt.id));
        let forged = scratch.0.join("m00000000000000ff.json");
        std::fs::rename(&good, &forged).unwrap();
        let warm = Registry::new();
        let err = warm.restore_from_dir(&scratch.0).unwrap_err();
        assert_eq!(err.code(), "snapshot_error");
        assert!(err.to_string().contains("content id mismatch"), "{err}");
        // Garbage files are a typed error too, not a panic.
        std::fs::write(scratch.0.join(format!("{}.json", receipt.id)), "not json").unwrap();
        std::fs::remove_file(&forged).unwrap();
        let err = Registry::new().restore_from_dir(&scratch.0).unwrap_err();
        assert_eq!(err.code(), "snapshot_error");
    }
}
