//! The model registry: a content-hash-addressed store of loaded artifacts.
//!
//! Identical parameter tables load to the *same* id — loading is
//! idempotent, so clients can re-send `load` on reconnect without growing
//! the store. Ids are derived with FNV-1a over a canonical byte encoding
//! of the artifact (kind tag, universe content hash, every parameter's
//! `f64::to_bits`), so the id commits to the exact numerics: two models
//! that differ in the 52nd mantissa bit get different ids.
//!
//! Every artifact's dense [`CompiledModel`](hmdiv_core::CompiledModel)
//! form is pre-warmed at load, so the first `evaluate` on a fresh model
//! pays no compile latency inside the batch executor. If the caller
//! supplies a serialized universe manifest, compatibility is verified at
//! load and a [`hmdiv_core::ModelError::UniverseMismatch`] is reported
//! before the model is admitted.
//!
//! Every load also runs the `hmdiv-analyze` static analyzer over the
//! artifact's compiled form. An error-severity finding refuses admission
//! with [`ServeError::Rejected`], whose wire code is the stable `HM0xx`
//! diagnostic code — bad models are rejected at `load`, not discovered
//! mid-batch at `evaluate`. Warnings and notes never block a load; the
//! `analyze` verb reports them on demand.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use hmdiv_core::cohort::{CohortMember, ReaderCohort};
use hmdiv_core::{
    ClassId, DetectionParams, ModelParams, ParallelDetectionModel, SequentialModel,
    UniverseManifest,
};

use crate::error::ServeError;

/// FNV-1a offset basis (the same constants the core universe hash uses;
/// kept local so the registry id scheme is self-contained).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a hasher over canonical artifact bytes.
#[derive(Debug)]
struct Fnv(u64);

impl Fnv {
    fn new(kind: u8) -> Self {
        let mut h = Fnv(FNV_OFFSET);
        h.byte(kind);
        h
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
        // Separator so `("ab", "c")` and `("a", "bc")` hash differently.
        self.byte(0xFF);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A loaded artifact: the registry's unit of storage.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A sequential "machine first, human checks" model.
    Sequential(Arc<SequentialModel>),
    /// A parallel-detection model.
    Detection(Arc<ParallelDetectionModel>),
    /// A weighted reader cohort.
    Cohort(Arc<ReaderCohort>),
}

impl Artifact {
    /// The artifact's kind tag, as reported by the `models` verb.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Sequential(_) => "sequential",
            Artifact::Detection(_) => "detection",
            Artifact::Cohort(_) => "cohort",
        }
    }

    /// Runs the static analyzer over the artifact's compiled form. Pure:
    /// the same artifact always yields the same report.
    #[must_use]
    pub fn analyze(&self) -> hmdiv_analyze::Report {
        match self {
            Artifact::Sequential(m) => hmdiv_analyze::analyze_sequential(m),
            Artifact::Detection(m) => hmdiv_analyze::analyze_detection(m.compiled()),
            Artifact::Cohort(c) => hmdiv_analyze::analyze_cohort(c),
        }
    }
}

/// Turns an analyzer report into an admission decision: the first
/// error-severity diagnostic refuses the artifact with its `HM0xx` code
/// on the wire.
fn admit(report: &hmdiv_analyze::Report) -> Result<(), ServeError> {
    match report.first_error() {
        Some(d) => Err(ServeError::Rejected {
            code: d.code.to_owned(),
            detail: d.message.clone(),
        }),
        None => Ok(()),
    }
}

/// What a successful `load` reports back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReceipt {
    /// The content-addressed artifact id (`m…` for models, `c…` for
    /// cohorts).
    pub id: String,
    /// The class names of the artifact's universe, in index order.
    pub classes: Vec<String>,
    /// The universe content hash.
    pub universe_hash: u64,
}

/// One row of the `models` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRow {
    /// The artifact id.
    pub id: String,
    /// The kind tag (`sequential`, `detection`, `cohort`).
    pub kind: &'static str,
    /// Number of classes in the artifact's universe.
    pub classes: usize,
    /// The universe content hash.
    pub universe_hash: u64,
}

/// The content-addressed artifact store shared by all connections.
#[derive(Debug, Default)]
pub struct Registry {
    store: Mutex<BTreeMap<String, Artifact>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn store(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Artifact>> {
        // A poisoned lock means another connection thread panicked while
        // holding it; the map itself (Arc inserts only) is still coherent,
        // so recover rather than cascade the panic through every client.
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Loads (or re-finds) a sequential model, pre-warming its compiled
    /// form.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] with `UniverseMismatch` when `manifest` is
    /// given and does not match the model's interned universe.
    pub fn load_sequential(
        &self,
        params: ModelParams,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let model = SequentialModel::new(params);
        let compiled = Arc::clone(model.compiled());
        verify_manifest(manifest, compiled.universe())?;
        admit(&hmdiv_analyze::analyze_model(&compiled, None))?;
        let mut h = Fnv::new(b'S');
        h.u64(compiled.universe().content_hash());
        for cp in compiled.params_slice() {
            h.f64(cp.p_mf().value());
            h.f64(cp.p_hf_given_ms().value());
            h.f64(cp.p_hf_given_mf().value());
        }
        let id = format!("m{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: compiled
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: compiled.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Sequential(Arc::new(model)));
        Ok(receipt)
    }

    /// Loads (or re-finds) a parallel-detection model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for table validation failures
    /// (empty/duplicate) and manifest mismatches.
    pub fn load_detection(
        &self,
        classes: Vec<(ClassId, DetectionParams)>,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let mut builder = ParallelDetectionModel::builder();
        for (class, dp) in classes {
            builder = builder.class(class, dp);
        }
        let model = builder.build().map_err(ServeError::Model)?;
        let compiled = Arc::clone(model.compiled());
        verify_manifest(manifest, compiled.universe())?;
        admit(&hmdiv_analyze::analyze_detection(&compiled))?;
        let mut h = Fnv::new(b'D');
        h.u64(compiled.universe().content_hash());
        for index in 0..compiled.universe().len() as u32 {
            let dp = compiled.params_at(index);
            h.f64(dp.p_mf.value());
            h.f64(dp.p_h_miss.value());
            h.f64(dp.p_h_misclass.value());
        }
        let id = format!("m{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: compiled
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: compiled.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Detection(Arc::new(model)));
        Ok(receipt)
    }

    /// Loads (or re-finds) a reader cohort, pre-warming every member's
    /// compiled model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for cohort validation failures and manifest
    /// mismatches (checked against every member's universe).
    pub fn load_cohort(
        &self,
        members: Vec<CohortMember>,
        manifest: Option<&UniverseManifest>,
    ) -> Result<LoadReceipt, ServeError> {
        let cohort = ReaderCohort::new(members).map_err(ServeError::Model)?;
        admit(&hmdiv_analyze::analyze_cohort(&cohort))?;
        let mut h = Fnv::new(b'C');
        for m in cohort.members() {
            let compiled = m.model.compiled();
            verify_manifest(manifest, compiled.universe())?;
            h.bytes(m.name.as_bytes());
            h.f64(m.weight);
            h.u64(compiled.universe().content_hash());
            for cp in compiled.params_slice() {
                h.f64(cp.p_mf().value());
                h.f64(cp.p_hf_given_ms().value());
                h.f64(cp.p_hf_given_mf().value());
            }
        }
        // `ReaderCohort::new` rejects empty member lists, so index 0 exists.
        let first = cohort.members()[0].model.compiled();
        let id = format!("c{:016x}", h.finish());
        let receipt = LoadReceipt {
            id: id.clone(),
            classes: first
                .universe()
                .classes()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            universe_hash: first.universe().content_hash(),
        };
        self.store()
            .entry(id)
            .or_insert_with(|| Artifact::Cohort(Arc::new(cohort)));
        Ok(receipt)
    }

    /// Fetches an artifact by id (cheap: clones the inner `Arc`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownArtifact`] if nothing is loaded under `id`.
    pub fn get(&self, id: &str) -> Result<Artifact, ServeError> {
        self.store()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::UnknownArtifact { id: id.to_owned() })
    }

    /// Lists all loaded artifacts in id order.
    #[must_use]
    pub fn list(&self) -> Vec<ArtifactRow> {
        self.store()
            .iter()
            .map(|(id, artifact)| {
                let (classes, universe_hash) = match artifact {
                    Artifact::Sequential(m) => {
                        let u = m.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                    Artifact::Detection(m) => {
                        let u = m.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                    Artifact::Cohort(c) => {
                        let u = c.members()[0].model.compiled().universe();
                        (u.len(), u.content_hash())
                    }
                };
                ArtifactRow {
                    id: id.clone(),
                    kind: artifact.kind(),
                    classes,
                    universe_hash,
                }
            })
            .collect()
    }

    /// Number of loaded artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store().is_empty()
    }
}

fn verify_manifest(
    manifest: Option<&UniverseManifest>,
    universe: &hmdiv_core::ClassUniverse,
) -> Result<(), ServeError> {
    if let Some(m) = manifest {
        let pinned = m.restore().map_err(ServeError::Model)?;
        pinned
            .verify_compatible(universe)
            .map_err(ServeError::Model)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    fn paper_params() -> ModelParams {
        paper::example_model().unwrap().params().clone()
    }

    #[test]
    fn loading_is_idempotent_and_content_addressed() {
        let reg = Registry::new();
        let a = reg.load_sequential(paper_params(), None).unwrap();
        let b = reg.load_sequential(paper_params(), None).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert!(a.id.starts_with('m'));
        assert_eq!(a.classes, ["difficult", "easy"]);
        // A single-bit parameter change produces a different id.
        let tweaked = paper_params()
            .with_class_updated(&ClassId::new("easy"), |cp| {
                Ok(cp.with_p_mf(hmdiv_prob::Probability::new(f64::from_bits(
                    cp.p_mf().value().to_bits() + 1,
                ))?))
            })
            .unwrap();
        let c = reg.load_sequential(tweaked, None).unwrap();
        assert_ne!(a.id, c.id);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn manifest_gate_rejects_mismatched_universes() {
        let reg = Registry::new();
        let wrong = UniverseManifest::of(&hmdiv_core::ClassUniverse::from_names(["other"]));
        let err = reg
            .load_sequential(paper_params(), Some(&wrong))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Model(hmdiv_core::ModelError::UniverseMismatch { .. })
        ));
        assert!(reg.is_empty(), "rejected loads must not be admitted");
        // The right manifest is accepted.
        let model = paper::example_model().unwrap();
        let right = UniverseManifest::of(model.compiled().universe());
        assert!(reg.load_sequential(paper_params(), Some(&right)).is_ok());
    }

    #[test]
    fn analyzer_gate_rejects_mismatched_cohort_universes() {
        let reg = Registry::new();
        let alien = ModelParams::builder()
            .class(
                ClassId::new("alien"),
                hmdiv_core::ClassParams::new(
                    hmdiv_prob::Probability::new(0.1).unwrap(),
                    hmdiv_prob::Probability::new(0.2).unwrap(),
                    hmdiv_prob::Probability::new(0.3).unwrap(),
                ),
            )
            .build()
            .unwrap();
        let err = reg
            .load_cohort(
                vec![
                    CohortMember {
                        name: "r1".into(),
                        model: paper::example_model().unwrap(),
                        weight: 1.0,
                    },
                    CohortMember {
                        name: "r2".into(),
                        model: SequentialModel::new(alien),
                        weight: 1.0,
                    },
                ],
                None,
            )
            .unwrap_err();
        assert_eq!(err.code(), "HM030", "{err}");
        assert!(reg.is_empty(), "rejected loads must not be admitted");
    }

    #[test]
    fn clean_artifacts_analyze_without_errors_and_still_load() {
        let reg = Registry::new();
        let receipt = reg.load_sequential(paper_params(), None).unwrap();
        let artifact = reg.get(&receipt.id).unwrap();
        let report = artifact.analyze();
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn kinds_do_not_collide_and_listing_reports_them() {
        let reg = Registry::new();
        let seq = reg.load_sequential(paper_params(), None).unwrap();
        let det = reg
            .load_detection(
                vec![(
                    ClassId::new("easy"),
                    DetectionParams::new(
                        hmdiv_prob::Probability::new(0.07).unwrap(),
                        hmdiv_prob::Probability::new(0.2).unwrap(),
                        hmdiv_prob::Probability::new(0.05).unwrap(),
                    ),
                )],
                None,
            )
            .unwrap();
        let coh = reg
            .load_cohort(
                vec![CohortMember {
                    name: "r1".into(),
                    model: paper::example_model().unwrap(),
                    weight: 1.0,
                }],
                None,
            )
            .unwrap();
        assert_ne!(seq.id, det.id);
        assert!(coh.id.starts_with('c'));
        let rows = reg.list();
        assert_eq!(rows.len(), 3);
        let kinds: Vec<&str> = rows.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&"sequential"));
        assert!(kinds.contains(&"detection"));
        assert!(kinds.contains(&"cohort"));
        assert!(matches!(
            reg.get("m0000000000000000"),
            Err(ServeError::UnknownArtifact { .. })
        ));
        assert!(reg.get(&seq.id).is_ok());
    }
}
