//! The micro-batching executor: coalesces concurrent evaluation requests
//! into dense batch calls.
//!
//! Connection threads [`submit`](Batcher::submit) work into a **bounded**
//! queue and block on a [`Ticket`]; a single worker thread drains the
//! whole queue each wakeup and groups what it found:
//!
//! * profile evaluations against the same compiled model become one
//!   [`CompiledModel::evaluate_profiles_par`] call;
//! * scenario batches against the same model *and* profile become one
//!   [`CompiledModel::evaluate_scenarios_par`] call;
//! * everything else ([`Work::Direct`]) runs inline.
//!
//! Under light load a request flows through alone (batch of one); under
//! concurrent load batches form naturally from whatever queued while the
//! previous flush ran — no timers, no added latency floor.
//!
//! **Bit-identity:** each profile/scenario is evaluated independently and
//! the `_par` entry points are thread-count-invariant, so a batched result
//! is bit-for-bit the result a direct in-process call would produce. A
//! grouped scenario call that fails is re-run per job sequentially so each
//! ticket gets *its own* typed error, not its neighbour's.
//!
//! **Backpressure:** admission is **cost-based** — each job declares how
//! many scalar evaluations it expands to (one per profile, one per
//! scenario, cohort-member count for cohort work), and
//! [`submit`](Batcher::submit) fails fast with [`ServeError::Overloaded`]
//! once the queued cost would exceed capacity. One bulk request can no
//! longer monopolize a flush window while counting as a single queue slot;
//! memory stays flat under overload and the client learns to back off.
//!
//! **Wakeable tickets:** a [`Ticket`] can be waited on (blocking, for the
//! client library and tests) or polled with [`try_take`](Ticket::try_take)
//! by the event-driven connection poller; an optional [`Waker`] supplied
//! at submit time fires when the reply lands, so a poller thread sleeps
//! instead of spinning.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{CompiledModel, CompiledProfile};
use hmdiv_obs::{Stage, StageSet};
use hmdiv_prob::Probability;

use crate::error::ServeError;
use crate::json::Json;

/// A unit of work submitted to the executor.
pub enum Work {
    /// Evaluate eq. (8) for one bound profile — batchable per model.
    Profile {
        /// The compiled model (grouped by `Arc` identity).
        model: Arc<CompiledModel>,
        /// The bound profile to evaluate.
        profile: CompiledProfile,
    },
    /// Evaluate a batch of what-if scenarios — batchable per
    /// (model, profile) pair.
    Scenarios {
        /// The compiled model (grouped by `Arc` identity).
        model: Arc<CompiledModel>,
        /// The bound profile the scenarios are judged against.
        profile: CompiledProfile,
        /// The scenarios to evaluate, in order.
        scenarios: Vec<Scenario>,
    },
    /// Arbitrary work that runs inline on the executor thread (importance
    /// rankings, cohort evaluations, detection-model evaluations).
    Direct(Box<dyn FnOnce() -> Result<Outcome, ServeError> + Send>),
}

impl std::fmt::Debug for Work {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Work::Profile { .. } => f.write_str("Work::Profile"),
            Work::Scenarios { scenarios, .. } => {
                write!(f, "Work::Scenarios({})", scenarios.len())
            }
            Work::Direct(_) => f.write_str("Work::Direct"),
        }
    }
}

/// What a completed unit of work yields.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A single failure probability.
    One(Probability),
    /// One failure probability per scenario, in submission order.
    Many(Vec<Probability>),
    /// A pre-rendered JSON result (from [`Work::Direct`]).
    Value(Json),
}

type Reply = Result<Outcome, ServeError>;

/// A callback fired when a reply lands in its slot — the event-driven
/// poller registers one so a sleeping readiness thread learns that a
/// connection it owns has work to write, without polling every ticket.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// The write-once reply cell a [`Ticket`] and its [`ReplyHandle`] share.
struct ReplySlot {
    state: Mutex<SlotState>,
    bell: Condvar,
}

struct SlotState {
    reply: Option<Reply>,
    /// Set the first time the slot is filled and never cleared — a waiter
    /// taking the reply must not reopen the slot for a late
    /// `ShuttingDown` overwrite from the handle's drop.
    filled: bool,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            state: Mutex::new(SlotState {
                reply: None,
                filled: false,
            }),
            bell: Condvar::new(),
        })
    }

    /// First fill wins; returns whether this call was it.
    fn fill(&self, result: Reply) -> bool {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.filled {
            return false;
        }
        st.filled = true;
        st.reply = Some(result);
        drop(st);
        self.bell.notify_all();
        true
    }
}

/// A claim on a submitted unit of work.
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the executor replies.
    ///
    /// # Errors
    ///
    /// Whatever the work produced; [`ServeError::ShuttingDown`] if the
    /// executor stopped before replying.
    pub fn wait(self) -> Reply {
        let mut st = self
            .slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(reply) = st.reply.take() {
                return reply;
            }
            st = self
                .slot
                .bell
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the reply if it has landed, without blocking — the poller's
    /// entry point. Returns `None` while the work is still in flight.
    pub fn try_take(&self) -> Option<Reply> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reply
            .take()
    }
}

/// The reply half of a queued job, plus the request's stage stamps when
/// the connection admitted it with tracing on. Dropping an unfilled
/// handle (worker panic, drain race) delivers `ShuttingDown` so no ticket
/// waits forever.
struct ReplyHandle {
    enqueued: Instant,
    trace: Option<Arc<StageSet>>,
    slot: Arc<ReplySlot>,
    waker: Option<Waker>,
}

impl ReplyHandle {
    /// Fills the slot (first fill wins) and fires the waker.
    fn complete(&self, result: Reply) {
        if self.slot.fill(result) {
            if let Some(wake) = &self.waker {
                wake();
            }
        }
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        self.complete(Err(ServeError::ShuttingDown));
    }
}

/// One queued job.
struct Pending {
    work: Work,
    deadline: Option<Instant>,
    handle: ReplyHandle,
}

struct State {
    queue: VecDeque<Pending>,
    /// Total admission cost of everything queued (scalar evaluations, not
    /// request count) — the quantity the capacity bound is enforced on.
    queued_cost: usize,
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    bell: Condvar,
    capacity: usize,
    threads: usize,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The micro-batching executor.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("capacity", &self.shared.capacity)
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl Batcher {
    /// Starts the executor with a bounded queue of `capacity` jobs,
    /// evaluating dense batches on `threads` shards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the worker thread cannot be spawned.
    pub fn start(capacity: usize, threads: usize) -> Result<Batcher, ServeError> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                queued_cost: 0,
                draining: false,
            }),
            bell: Condvar::new(),
            capacity,
            threads: threads.max(1),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("hmdiv-serve-batcher".into())
            .spawn(move || run_worker(&worker_shared))?;
        Ok(Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Submits work with its admission `cost` — the number of scalar
    /// evaluations the job expands to (clamped to at least 1). A `trace`
    /// stage set, when supplied, learns the queue depth observed at
    /// admission and is stamped with queue/batch/eval stages as the job
    /// moves through the executor. A `waker`, when supplied, fires the
    /// moment the reply lands so an event-driven caller can sleep on its
    /// poller instead of blocking on the ticket.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Overloaded`] when admitting `cost` would push the
    ///   queued cost past capacity. A single job whose cost exceeds the
    ///   whole capacity is always shed — the bound is the contract.
    /// * [`ServeError::ShuttingDown`] when the executor is draining.
    pub fn submit(
        &self,
        work: Work,
        cost: usize,
        deadline: Option<Instant>,
        trace: Option<Arc<StageSet>>,
        waker: Option<Waker>,
    ) -> Result<Ticket, ServeError> {
        let cost = cost.max(1);
        let slot = ReplySlot::new();
        {
            let mut st = self.shared.lock();
            if st.draining {
                return Err(ServeError::ShuttingDown);
            }
            if st.queued_cost + cost > self.shared.capacity {
                hmdiv_obs::counter_add("serve.overloaded", 1);
                if let Some(t) = &trace {
                    t.set_queue_depth(st.queue.len() as u64);
                }
                return Err(ServeError::Overloaded {
                    capacity: self.shared.capacity,
                });
            }
            if let Some(t) = &trace {
                t.set_queue_depth(st.queue.len() as u64);
            }
            st.queued_cost += cost;
            st.queue.push_back(Pending {
                work,
                deadline,
                handle: ReplyHandle {
                    enqueued: Instant::now(),
                    trace,
                    slot: Arc::clone(&slot),
                    waker,
                },
            });
        }
        self.shared.bell.notify_one();
        Ok(Ticket { slot })
    }

    /// Jobs currently queued (for tests and the `metrics` verb; the bound
    /// is enforced by [`submit`](Batcher::submit) on cost, not count).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Total admission cost currently queued — the quantity bounded by
    /// capacity (for tests and the `metrics` verb).
    #[must_use]
    pub fn queue_cost(&self) -> usize {
        self.shared.lock().queued_cost
    }

    /// Stops accepting work, flushes everything already queued, and joins
    /// the worker. Idempotent.
    pub fn drain(&self) {
        {
            let mut st = self.shared.lock();
            st.draining = true;
        }
        self.shared.bell.notify_all();
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(worker) = handle {
            // A panicked worker already replied `ShuttingDown` to waiters
            // via dropped channels; nothing more to salvage here.
            drop(worker.join());
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain();
    }
}

fn run_worker(shared: &Shared) {
    loop {
        let batch: Vec<Pending> = {
            let mut st = shared.lock();
            while st.queue.is_empty() && !st.draining {
                st = shared
                    .bell
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if st.queue.is_empty() {
                return; // draining and nothing left
            }
            // The whole queue drains at once, so the queued cost resets
            // with it — capacity frees as a unit per flush.
            st.queued_cost = 0;
            st.queue.drain(..).collect()
        };
        flush(batch, shared.threads);
    }
}

/// Replies to one job, recording its queue-to-reply latency.
fn reply(h: ReplyHandle, result: Reply) {
    hmdiv_obs::observe_since("serve.request", h.enqueued);
    h.complete(result);
}

/// Default dense-batch size below which a group is evaluated on the worker
/// thread itself: spawning shard threads costs tens of microseconds,
/// while small groups evaluate in far less than that. The `_par` entry
/// points are thread-count-invariant, so this is purely a latency
/// policy — results are bit-identical either way.
const DEFAULT_PAR_THRESHOLD: usize = 1024;

/// The effective parallelism threshold: the `HMDIV_SERVE_PAR_THRESHOLD`
/// environment override when it parses as a positive integer, else
/// [`DEFAULT_PAR_THRESHOLD`]. Read once per process; the `metrics` verb
/// reports the effective value.
#[must_use]
pub fn par_threshold() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        parse_par_threshold(std::env::var("HMDIV_SERVE_PAR_THRESHOLD").ok().as_deref())
    })
}

/// Validates a raw `HMDIV_SERVE_PAR_THRESHOLD` value: unset, empty,
/// non-numeric, or zero values fall back to the default (zero would force
/// shard spawns for every batch of one).
fn parse_par_threshold(raw: Option<&str>) -> usize {
    match raw.map(str::trim).and_then(|s| s.parse::<usize>().ok()) {
        Some(v) if v > 0 => v,
        _ => DEFAULT_PAR_THRESHOLD,
    }
}

/// Shard count for one dense group: serial under the threshold.
fn group_threads(len: usize, threads: usize) -> usize {
    if len < par_threshold() {
        1
    } else {
        threads
    }
}

/// Stamps the batch-formation and evaluation stages for one dense group,
/// and tells each traced request how large its batch turned out to be.
fn stamp_group(
    traces: &[Option<Arc<StageSet>>],
    formed: Instant,
    eval_start: Instant,
    eval_end: Instant,
    batch_size: u64,
) {
    for t in traces.iter().flatten() {
        t.stamp(Stage::Batch, formed, eval_start);
        t.stamp(Stage::Eval, eval_start, eval_end);
        t.set_batch_size(batch_size);
    }
}

fn flush(batch: Vec<Pending>, threads: usize) {
    hmdiv_obs::counter_add("serve.batch.flushes", 1);
    hmdiv_obs::counter_add("serve.batch.jobs", batch.len() as u64);
    #[allow(clippy::cast_precision_loss)]
    hmdiv_obs::gauge_set("serve.batch.last_size", batch.len() as f64);
    // Satellite metrics sampled once per flush: how deep the queue was
    // when the worker woke (everything drained is everything that was
    // waiting) and the resulting batch size on the power-of-two ladder.
    #[allow(clippy::cast_precision_loss)]
    hmdiv_obs::gauge_set("serve.queue_depth", batch.len() as f64);
    hmdiv_obs::observe_count("serve.batch_size", batch.len() as u64);

    /// Profile jobs grouped by compiled-model identity.
    type ProfileGroup = (Arc<CompiledModel>, Vec<(CompiledProfile, ReplyHandle)>);
    /// Scenario jobs grouped by (compiled model, bound profile).
    type ScenarioGroup = (
        Arc<CompiledModel>,
        CompiledProfile,
        Vec<(Vec<Scenario>, ReplyHandle)>,
    );
    let now = Instant::now();
    let mut profile_groups: Vec<ProfileGroup> = Vec::new();
    let mut scenario_groups: Vec<ScenarioGroup> = Vec::new();

    for p in batch {
        // Everything drained spent `enqueued → now` waiting in the queue.
        if let Some(t) = &p.handle.trace {
            t.stamp(Stage::Queue, p.handle.enqueued, now);
        }
        if p.deadline.is_some_and(|d| now >= d) {
            hmdiv_obs::counter_add("serve.deadline_exceeded", 1);
            reply(p.handle, Err(ServeError::DeadlineExceeded));
            continue;
        }
        match p.work {
            Work::Profile { model, profile } => {
                match profile_groups
                    .iter_mut()
                    .find(|(m, _)| Arc::ptr_eq(m, &model))
                {
                    Some((_, jobs)) => jobs.push((profile, p.handle)),
                    None => profile_groups.push((model, vec![(profile, p.handle)])),
                }
            }
            Work::Scenarios {
                model,
                profile,
                scenarios,
            } => {
                match scenario_groups
                    .iter_mut()
                    .find(|(m, pr, _)| Arc::ptr_eq(m, &model) && *pr == profile)
                {
                    Some((_, _, jobs)) => jobs.push((scenarios, p.handle)),
                    None => scenario_groups.push((model, profile, vec![(scenarios, p.handle)])),
                }
            }
            Work::Direct(f) => {
                let eval_start = Instant::now();
                let result = f();
                if let Some(t) = &p.handle.trace {
                    t.stamp(Stage::Batch, now, eval_start);
                    t.stamp_since(Stage::Eval, eval_start);
                    t.set_batch_size(1);
                }
                reply(p.handle, result);
            }
        }
    }

    for (model, jobs) in profile_groups {
        let profiles: Vec<CompiledProfile> = jobs.iter().map(|(pr, _)| pr.clone()).collect();
        let traces: Vec<Option<Arc<StageSet>>> =
            jobs.iter().map(|(_, h)| h.trace.clone()).collect();
        let eval_start = Instant::now();
        let failures =
            model.evaluate_profiles_par(&profiles, group_threads(profiles.len(), threads));
        stamp_group(
            &traces,
            now,
            eval_start,
            Instant::now(),
            profiles.len() as u64,
        );
        for ((_, h), failure) in jobs.into_iter().zip(failures) {
            reply(h, Ok(Outcome::One(failure)));
        }
    }

    for (model, profile, jobs) in scenario_groups {
        let mut all = Vec::with_capacity(jobs.iter().map(|(s, _)| s.len()).sum());
        let mut ranges = Vec::with_capacity(jobs.len());
        for (scenarios, _) in &jobs {
            let start = all.len();
            all.extend(scenarios.iter().cloned());
            ranges.push(start..all.len());
        }
        let traces: Vec<Option<Arc<StageSet>>> =
            jobs.iter().map(|(_, h)| h.trace.clone()).collect();
        let eval_start = Instant::now();
        match model.evaluate_scenarios_par(&all, &profile, group_threads(all.len(), threads)) {
            Ok(failures) => {
                stamp_group(&traces, now, eval_start, Instant::now(), all.len() as u64);
                for ((_, h), range) in jobs.into_iter().zip(ranges) {
                    reply(h, Ok(Outcome::Many(failures[range].to_vec())));
                }
            }
            Err(_) => {
                // At least one job in the group is bad; re-run each alone
                // (sequentially — correctness over speed on the error path)
                // so every ticket gets its own typed error.
                stamp_group(&traces, now, eval_start, Instant::now(), all.len() as u64);
                for (scenarios, h) in jobs {
                    let result = model
                        .evaluate_scenarios(&scenarios, &profile)
                        .map(Outcome::Many)
                        .map_err(ServeError::Model);
                    reply(h, result);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;
    use hmdiv_core::ClassId;
    use std::sync::mpsc;
    use std::time::Duration;

    fn model_and_profile() -> (Arc<CompiledModel>, CompiledProfile) {
        let model = paper::example_model().unwrap();
        let compiled = Arc::clone(model.compiled());
        let profile = compiled
            .bind_profile(&paper::field_profile().unwrap())
            .unwrap();
        (compiled, profile)
    }

    // ReplySlot is the one lock-free-adjacent cell every reply crosses;
    // these focused tests are the CI Miri targets for it.

    #[test]
    fn reply_slot_first_fill_wins_and_never_reopens() {
        let slot = ReplySlot::new();
        assert!(slot.fill(Ok(Outcome::One(Probability::HALF))));
        // A late ShuttingDown overwrite (handle drop) must lose the race.
        assert!(!slot.fill(Err(ServeError::ShuttingDown)));
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        match ticket.try_take() {
            Some(Ok(Outcome::One(p))) => assert_eq!(p.value().to_bits(), 0.5_f64.to_bits()),
            other => panic!("expected the first fill, got {other:?}"),
        }
        // Taking the reply empties the cell but keeps it closed.
        assert!(!slot.fill(Ok(Outcome::One(Probability::ZERO))));
        let ticket = Ticket { slot };
        assert!(ticket.try_take().is_none());
    }

    #[test]
    fn reply_slot_concurrent_fillers_have_exactly_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for _ in 0..16 {
            let slot = ReplySlot::new();
            let wins = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let slot = Arc::clone(&slot);
                    let wins = &wins;
                    s.spawn(move || {
                        if slot.fill(Ok(Outcome::One(Probability::HALF))) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
            let ticket = Ticket { slot };
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn reply_slot_wait_observes_a_racing_fill() {
        let slot = ReplySlot::new();
        let filler = Arc::clone(&slot);
        let handle = std::thread::spawn(move || {
            filler.fill(Ok(Outcome::One(Probability::ONE)));
        });
        let ticket = Ticket { slot };
        // wait() must block (not spin-fail) until the fill lands, however
        // the threads interleave.
        assert!(ticket.wait().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn par_threshold_override_is_validated() {
        assert_eq!(parse_par_threshold(None), DEFAULT_PAR_THRESHOLD);
        assert_eq!(parse_par_threshold(Some("")), DEFAULT_PAR_THRESHOLD);
        assert_eq!(parse_par_threshold(Some("0")), DEFAULT_PAR_THRESHOLD);
        assert_eq!(parse_par_threshold(Some("-4")), DEFAULT_PAR_THRESHOLD);
        assert_eq!(parse_par_threshold(Some("lots")), DEFAULT_PAR_THRESHOLD);
        assert_eq!(parse_par_threshold(Some("256")), 256);
        assert_eq!(parse_par_threshold(Some(" 2048 ")), 2048);
    }

    #[test]
    fn single_profile_round_trips_bit_identically() {
        let (model, profile) = model_and_profile();
        let direct = model.system_failure(&profile);
        let batcher = Batcher::start(8, 2).unwrap();
        let ticket = batcher
            .submit(
                Work::Profile {
                    model: Arc::clone(&model),
                    profile,
                },
                1,
                None,
                None,
                None,
            )
            .unwrap();
        match ticket.wait().unwrap() {
            Outcome::One(p) => {
                assert_eq!(p.value().to_bits(), direct.value().to_bits());
            }
            other => panic!("expected One, got {other:?}"),
        }
    }

    #[test]
    fn grouped_scenarios_match_direct_evaluation() {
        let (model, profile) = model_and_profile();
        let scenarios: Vec<Scenario> = (1..=6)
            .map(|i| Scenario::new().improve_machine(ClassId::new("difficult"), f64::from(i) * 2.0))
            .collect();
        let direct = model.evaluate_scenarios(&scenarios, &profile).unwrap();
        let batcher = Batcher::start(16, 3).unwrap();
        // Submit in two chunks against the same model+profile so the worker
        // can coalesce them into one dense call.
        let t1 = batcher
            .submit(
                Work::Scenarios {
                    model: Arc::clone(&model),
                    profile: profile.clone(),
                    scenarios: scenarios[..3].to_vec(),
                },
                3,
                None,
                None,
                None,
            )
            .unwrap();
        let t2 = batcher
            .submit(
                Work::Scenarios {
                    model: Arc::clone(&model),
                    profile: profile.clone(),
                    scenarios: scenarios[3..].to_vec(),
                },
                3,
                None,
                None,
                None,
            )
            .unwrap();
        let (r1, r2) = (t1.wait().unwrap(), t2.wait().unwrap());
        let got: Vec<Probability> = match (r1, r2) {
            (Outcome::Many(a), Outcome::Many(b)) => a.into_iter().chain(b).collect(),
            other => panic!("expected Many+Many, got {other:?}"),
        };
        assert_eq!(got.len(), direct.len());
        for (g, d) in got.iter().zip(&direct) {
            assert_eq!(g.value().to_bits(), d.value().to_bits());
        }
    }

    #[test]
    fn scenario_errors_attribute_to_the_right_ticket() {
        let (model, profile) = model_and_profile();
        let good = vec![Scenario::new().improve_machine_everywhere(2.0)];
        let bad = vec![Scenario::new().improve_machine(ClassId::new("ghost"), 2.0)];
        let batcher = Batcher::start(16, 2).unwrap();
        let t_good = batcher
            .submit(
                Work::Scenarios {
                    model: Arc::clone(&model),
                    profile: profile.clone(),
                    scenarios: good,
                },
                1,
                None,
                None,
                None,
            )
            .unwrap();
        let t_bad = batcher
            .submit(
                Work::Scenarios {
                    model: Arc::clone(&model),
                    profile,
                    scenarios: bad,
                },
                1,
                None,
                None,
                None,
            )
            .unwrap();
        assert!(t_good.wait().is_ok(), "good job must not inherit the error");
        assert!(matches!(
            t_bad.wait(),
            Err(ServeError::Model(
                hmdiv_core::ModelError::UnknownClass { ref class }
            )) if class.name() == "ghost"
        ));
    }

    #[test]
    fn expired_deadlines_are_rejected_without_evaluation() {
        let (model, profile) = model_and_profile();
        let batcher = Batcher::start(8, 1).unwrap();
        // A deadline of "now" is already unmeetable by the time the worker
        // wakes: deterministic expiry, no sleeps.
        let ticket = batcher
            .submit(
                Work::Profile { model, profile },
                1,
                Some(Instant::now()),
                None,
                None,
            )
            .unwrap();
        assert!(matches!(ticket.wait(), Err(ServeError::DeadlineExceeded)));
    }

    #[test]
    fn full_queue_rejects_with_overloaded_and_stays_bounded() {
        let batcher = Batcher::start(2, 1).unwrap();
        // Rendezvous: a Direct job signals it started, then blocks until
        // released — the worker is busy and the queue is empty.
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let blocker = batcher
            .submit(
                Work::Direct(Box::new(move || {
                    started_tx.send(()).ok();
                    release_rx.recv().ok();
                    Ok(Outcome::Value(Json::Null))
                })),
                1,
                None,
                None,
                None,
            )
            .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker never started the blocker");
        // Fill the queue to capacity while the worker is held.
        let queued: Vec<Ticket> = (0..2)
            .map(|_| {
                batcher
                    .submit(
                        Work::Direct(Box::new(|| Ok(Outcome::Value(Json::Null)))),
                        1,
                        None,
                        None,
                        None,
                    )
                    .unwrap()
            })
            .collect();
        assert!(batcher.queue_len() <= 2, "queue must stay within capacity");
        // The next submit is shed, not buffered.
        let rejected = batcher.submit(
            Work::Direct(Box::new(|| Ok(Outcome::Value(Json::Null)))),
            1,
            None,
            None,
            None,
        );
        assert!(matches!(
            rejected,
            Err(ServeError::Overloaded { capacity: 2 })
        ));
        // Release the worker: everything accepted completes.
        release_tx.send(()).unwrap();
        assert!(blocker.wait().is_ok());
        for t in queued {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn drain_flushes_queued_work_then_rejects_new_work() {
        let (model, profile) = model_and_profile();
        let batcher = Batcher::start(8, 2).unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                batcher
                    .submit(
                        Work::Profile {
                            model: Arc::clone(&model),
                            profile: profile.clone(),
                        },
                        1,
                        None,
                        None,
                        None,
                    )
                    .unwrap()
            })
            .collect();
        batcher.drain();
        for t in tickets {
            assert!(t.wait().is_ok(), "in-flight work must complete on drain");
        }
        assert!(matches!(
            batcher.submit(
                Work::Profile {
                    model: Arc::clone(&model),
                    profile: profile.clone(),
                },
                1,
                None,
                None,
                None,
            ),
            Err(ServeError::ShuttingDown)
        ));
        batcher.drain(); // idempotent
    }

    #[test]
    fn batched_load_is_bit_identical_across_mixed_models() {
        // Two distinct models in one flush exercise the per-model grouping.
        let (model_a, profile_a) = model_and_profile();
        let model_b = {
            let params = paper::example_model()
                .unwrap()
                .params()
                .with_class_updated(&ClassId::new("easy"), |cp| cp.with_machine_improved(2.0))
                .unwrap();
            Arc::clone(hmdiv_core::SequentialModel::new(params).compiled())
        };
        let profile_b = model_b
            .bind_profile(&paper::field_profile().unwrap())
            .unwrap();
        let direct_a = model_a.system_failure(&profile_a);
        let direct_b = model_b.system_failure(&profile_b);
        let batcher = Batcher::start(64, 4).unwrap();
        let tickets: Vec<(Ticket, u64)> = (0..20)
            .map(|i| {
                let (m, pr, want) = if i % 2 == 0 {
                    (&model_a, &profile_a, direct_a)
                } else {
                    (&model_b, &profile_b, direct_b)
                };
                (
                    batcher
                        .submit(
                            Work::Profile {
                                model: Arc::clone(m),
                                profile: pr.clone(),
                            },
                            1,
                            None,
                            None,
                            None,
                        )
                        .unwrap(),
                    want.value().to_bits(),
                )
            })
            .collect();
        for (t, want) in tickets {
            match t.wait().unwrap() {
                Outcome::One(p) => assert_eq!(p.value().to_bits(), want),
                other => panic!("expected One, got {other:?}"),
            }
        }
    }
}
