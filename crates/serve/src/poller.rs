//! The readiness-poller pool: a small fixed set of threads multiplexing
//! every client connection over nonblocking `std::net` sockets.
//!
//! Accepted sockets are registered round-robin onto poller **shards**.
//! Each shard owns its connections outright — no cross-thread connection
//! state — and drives a per-connection state machine through four moves
//! per sweep:
//!
//! 1. **read**: drain readable bytes into the resumable
//!    [`LineReader`](crate::protocol::LineReader) (budgeted, and skipped
//!    while the write buffer is over the high-watermark — backpressure
//!    propagates to the client's TCP window instead of server memory);
//! 2. **route**: frame complete lines and route each into a
//!    [`RequestSlot`] (queued work carries a [`Waker`] that rings this
//!    shard's bell when the executor replies);
//! 3. **pump**: resolve the contiguous head of the in-order slot queue —
//!    inline answers immediately, queued answers via
//!    [`Ticket::try_take`](crate::batcher::Ticket::try_take) — and
//!    serialize them into the write buffer;
//! 4. **write**: push buffered bytes until the socket would block,
//!    completing trace records as their byte ranges reach the kernel.
//!
//! Responses stay in request order per connection (the slot queue is the
//! order book), so pipelined clients observe exactly the semantics of the
//! old thread-per-connection server — replies are bit-identical.
//!
//! With no readiness syscall available (std-only), idle shards sleep on a
//! condvar with exponential backoff (100µs → 2ms): wakers and the accept
//! loop ring the bell for instant wakeups on executor replies and new
//! connections, while fresh request bytes are discovered within one
//! backoff step. A shard that owns exactly one quiescent connection drops
//! into a short blocking read instead — the common single-client case
//! keeps its thread-per-connection latency.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::batcher::Waker;
use crate::error::ServeError;
use crate::protocol::{LineEvent, LineReader};
use crate::server::{self, Ctx, PendingTrace, RequestSlot};

/// Read budget per connection per sweep, so one firehose client cannot
/// starve its shard-mates.
const READ_BUDGET: usize = 256 * 1024;
/// Per-read chunk size.
const CHUNK: usize = 16 * 1024;
/// Buffered-response bytes above which a connection stops being read —
/// the slow-consumer backpressure threshold.
const WRITE_HIGH_WATERMARK: usize = 1 << 20;
/// Idle backoff bounds for the shard sleep.
const BACKOFF_MIN: Duration = Duration::from_micros(100);
const BACKOFF_MAX: Duration = Duration::from_millis(2);
/// Blocking-read timeout for the single-quiescent-connection fast path.
const SOLO_READ_TIMEOUT: Duration = Duration::from_millis(5);

/// New-connection handoff plus the shard's wakeup bell.
struct Inbox {
    conns: Vec<TcpStream>,
    /// Set by [`Shard::wake`]; cleared when the shard adopts the inbox.
    /// Checked before sleeping so a wake that lands mid-sweep is never
    /// lost.
    notified: bool,
}

/// One poller shard's shared half: the accept loop and executor wakers
/// talk to the shard thread exclusively through this.
struct Shard {
    inbox: Mutex<Inbox>,
    bell: Condvar,
}

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inbox> {
        self.inbox
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wake(&self) {
        self.lock().notified = true;
        self.bell.notify_all();
    }
}

/// The fixed pool of readiness-poller threads.
pub(crate) struct PollerPool {
    shards: Vec<Arc<Shard>>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl std::fmt::Debug for PollerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollerPool")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl PollerPool {
    /// Spawns `threads` poller shards (at least one).
    pub(crate) fn start(threads: usize, ctx: &Arc<Ctx>) -> Result<PollerPool, ServeError> {
        let threads = threads.max(1);
        let mut shards = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let shard = Arc::new(Shard {
                inbox: Mutex::new(Inbox {
                    conns: Vec::new(),
                    notified: false,
                }),
                bell: Condvar::new(),
            });
            let thread_shard = Arc::clone(&shard);
            let thread_ctx = Arc::clone(ctx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hmdiv-serve-poll-{i}"))
                    .spawn(move || run_shard(&thread_shard, &thread_ctx))?,
            );
            shards.push(shard);
        }
        Ok(PollerPool {
            shards,
            handles,
            next: AtomicUsize::new(0),
        })
    }

    /// Hands an accepted socket to the next shard, round-robin.
    pub(crate) fn register(&self, stream: TcpStream) {
        let shard = &self.shards[self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len()];
        shard.lock().conns.push(stream);
        shard.wake();
    }

    /// Rings every shard (the shutdown signal is already latched) and
    /// joins them; each shard finishes writing the responses it owes
    /// before exiting.
    pub(crate) fn stop_and_join(self) {
        for shard in &self.shards {
            shard.wake();
        }
        for handle in self.handles {
            drop(handle.join());
        }
    }
}

fn run_shard(shard: &Arc<Shard>, ctx: &Arc<Ctx>) {
    let mut conns: Vec<Conn> = Vec::new();
    let waker: Waker = {
        let shard = Arc::clone(shard);
        Arc::new(move || shard.wake())
    };
    let mut backoff = BACKOFF_MIN;
    loop {
        hmdiv_obs::counter_add("serve.poll.wakeups", 1);
        let shutdown = ctx.signal.is_requested();
        // Adopt newcomers and collect the bell state in one lock.
        let (newcomers, notified) = {
            let mut inbox = shard.lock();
            let notified = inbox.notified;
            inbox.notified = false;
            (std::mem::take(&mut inbox.conns), notified)
        };
        let mut progress = notified;
        for stream in newcomers {
            match Conn::adopt(stream, ctx.max_line_bytes) {
                Some(conn) => {
                    conns.push(conn);
                    server::connection_opened(ctx);
                    progress = true;
                }
                None => hmdiv_obs::counter_add("serve.conn_setup_failures", 1),
            }
        }
        for conn in &mut conns {
            progress |= conn.sweep(ctx, &waker, shutdown);
        }
        conns.retain(|conn| {
            if conn.done(shutdown) {
                server::connection_closed(ctx);
                false
            } else {
                true
            }
        });
        if shutdown && conns.is_empty() && shard.lock().conns.is_empty() {
            return;
        }
        if progress {
            backoff = BACKOFF_MIN;
            continue;
        }
        // Fast path: a lone idle connection gets a real blocking read so
        // a single-client request–response loop pays no poll latency.
        if !shutdown && conns.len() == 1 && conns[0].quiescent() && shard.lock().conns.is_empty() {
            if conns[0].blocking_read(SOLO_READ_TIMEOUT) {
                backoff = BACKOFF_MIN;
            }
            continue;
        }
        // Idle: sleep on the bell unless a wake already landed.
        {
            let inbox = shard.lock();
            if !inbox.notified && inbox.conns.is_empty() {
                drop(
                    shard
                        .bell
                        .wait_timeout(inbox, backoff)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
            }
        }
        backoff = (backoff * 2).min(BACKOFF_MAX);
    }
}

/// A byte range of the write buffer whose flush completes a traced
/// request: once `end` bytes have reached the kernel, the record's write
/// stage is stamped and it lands in the flight recorder.
struct WriteMark {
    end: u64,
    trace: PendingTrace,
}

/// The buffered, backpressured write half of a connection.
struct OutBuf {
    buf: Vec<u8>,
    cursor: usize,
    /// Total bytes ever appended / flushed to the kernel — mark ranges are
    /// absolute offsets on this monotone scale, surviving buffer resets.
    appended: u64,
    flushed: u64,
    marks: VecDeque<WriteMark>,
    /// When the oldest still-buffered response started waiting — the
    /// write-stage start for every mark completed in this drain cycle.
    write_start: Option<Instant>,
}

impl OutBuf {
    fn new() -> OutBuf {
        OutBuf {
            buf: Vec::new(),
            cursor: 0,
            appended: 0,
            flushed: 0,
            marks: VecDeque::new(),
            write_start: None,
        }
    }

    fn pending(&self) -> usize {
        self.buf.len() - self.cursor
    }

    fn append(&mut self, bytes: &[u8], trace: Option<PendingTrace>) {
        if self.write_start.is_none() {
            self.write_start = Some(Instant::now());
        }
        self.buf.extend_from_slice(bytes);
        self.appended += bytes.len() as u64;
        if let Some(trace) = trace {
            self.marks.push_back(WriteMark {
                end: self.appended,
                trace,
            });
        }
    }
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    reader: LineReader,
    chunk: Vec<u8>,
    /// In-order request slots; responses resolve head-first so pipelined
    /// replies keep request order.
    slots: VecDeque<RequestSlot>,
    out: OutBuf,
    /// First socket bytes of the current read batch (the read-stage start
    /// for the requests they frame).
    read_start: Option<Instant>,
    peer_closed: bool,
    dead: bool,
}

impl Conn {
    /// Puts the socket into multiplexed mode; `None` if setup syscalls
    /// fail (the stream drops, resetting the connection).
    fn adopt(stream: TcpStream, max_line_bytes: usize) -> Option<Conn> {
        // Nagle would defeat micro-batching's latency win on small lines.
        drop(stream.set_nodelay(true));
        stream.set_nonblocking(true).ok()?;
        Some(Conn {
            stream,
            reader: LineReader::new(max_line_bytes),
            chunk: vec![0_u8; CHUNK],
            slots: VecDeque::new(),
            out: OutBuf::new(),
            read_start: None,
            peer_closed: false,
            dead: false,
        })
    }

    /// One full state-machine pass; returns whether anything moved.
    fn sweep(&mut self, ctx: &Ctx, waker: &Waker, shutdown: bool) -> bool {
        let mut progress = false;
        if !self.dead && !self.peer_closed && !shutdown && self.out.pending() < WRITE_HIGH_WATERMARK
        {
            progress |= self.read_some();
        }
        progress |= self.route_new_lines(ctx, waker);
        progress |= self.pump();
        progress |= self.write_some(ctx);
        progress
    }

    /// Nothing in flight, nothing buffered: safe to block on this
    /// connection alone.
    fn quiescent(&self) -> bool {
        !self.dead
            && !self.peer_closed
            && self.slots.is_empty()
            && self.out.pending() == 0
            && self.out.marks.is_empty()
            && self.reader.buffered() == 0
    }

    /// Everything owed has been written (or can never be): drop the
    /// connection. A dead connection lingers until its in-flight slots
    /// resolve so their trace records still complete.
    fn done(&self, shutdown: bool) -> bool {
        if !self.slots.is_empty() {
            return false;
        }
        if self.dead {
            return true;
        }
        self.out.pending() == 0 && self.out.marks.is_empty() && (self.peer_closed || shutdown)
    }

    /// Fast path: one idle connection on the shard reads blockingly with
    /// a short timeout instead of poll-sleeping. Returns whether bytes
    /// arrived (or the peer state changed).
    fn blocking_read(&mut self, timeout: Duration) -> bool {
        if self.stream.set_nonblocking(false).is_err()
            || self.stream.set_read_timeout(Some(timeout)).is_err()
        {
            self.dead = true;
            return true;
        }
        let moved = match self.stream.read(&mut self.chunk) {
            Ok(0) => {
                self.peer_closed = true;
                true
            }
            Ok(n) => {
                self.read_start.get_or_insert_with(Instant::now);
                self.reader.push(&self.chunk[..n]);
                true
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => false,
            Err(e) if e.kind() == ErrorKind::Interrupted => false,
            Err(_) => {
                self.dead = true;
                true
            }
        };
        if self.stream.set_nonblocking(true).is_err() {
            self.dead = true;
        }
        moved
    }

    /// Drains readable bytes (budgeted) into the line reader.
    fn read_some(&mut self) -> bool {
        let mut total = 0;
        loop {
            match self.stream.read(&mut self.chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return true;
                }
                Ok(n) => {
                    self.read_start.get_or_insert_with(Instant::now);
                    self.reader.push(&self.chunk[..n]);
                    total += n;
                    if total >= READ_BUDGET {
                        return true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return total > 0,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
    }

    /// Frames buffered bytes into lines and routes each into a slot.
    /// Framing faults become error slots — the connection survives both
    /// over-limit lines (the reader resyncs to the next newline) and
    /// invalid UTF-8.
    fn route_new_lines(&mut self, ctx: &Ctx, waker: &Waker) -> bool {
        let mut events = Vec::new();
        while let Some(event) = self.reader.next_event() {
            events.push(event);
        }
        if events.is_empty() {
            return false;
        }
        // One receive timestamp for the whole batch, as in the threaded
        // server: everything framed together traces the same read span.
        let received = Instant::now();
        let read_start = self.read_start.take();
        for event in events {
            let slot = match event {
                LineEvent::Line(line) => {
                    server::route_line(&line, received, read_start, ctx, Some(Arc::clone(waker)))
                }
                LineEvent::TooLong { limit } => {
                    hmdiv_obs::counter_add("serve.line_too_long", 1);
                    RequestSlot::framing_error(ServeError::LineTooLong { limit })
                }
                LineEvent::InvalidUtf8 => RequestSlot::framing_error(ServeError::Parse {
                    detail: "request line is not valid UTF-8".to_owned(),
                }),
            };
            self.slots.push_back(slot);
        }
        true
    }

    /// Resolves the contiguous head of the slot queue into response
    /// bytes. Stops at the first slot still waiting on the executor so
    /// responses keep request order.
    fn pump(&mut self) -> bool {
        let mut progress = false;
        while let Some(front) = self.slots.front() {
            let reply = match front.pending_ticket() {
                Some(ticket) => match ticket.try_take() {
                    Some(reply) => Some(reply),
                    None => break, // head still in flight
                },
                None => None,
            };
            let slot = self
                .slots
                .pop_front()
                .expect("front() just returned this slot");
            let (line, trace) = server::finish_slot(slot, reply);
            self.out.append(line.as_bytes(), trace);
            progress = true;
        }
        progress
    }

    /// Writes buffered bytes until the socket would block, completing
    /// trace records whose byte ranges have fully reached the kernel. A
    /// dead connection completes its records without a write stamp — the
    /// replies never made it, but sheds stay observable.
    fn write_some(&mut self, ctx: &Ctx) -> bool {
        if self.out.pending() == 0 && self.out.marks.is_empty() {
            return false;
        }
        let mut progress = false;
        if !self.dead {
            while self.out.cursor < self.out.buf.len() {
                match self.stream.write(&self.out.buf[self.out.cursor..]) {
                    Ok(0) => {
                        self.dead = true;
                        break;
                    }
                    Ok(n) => {
                        self.out.cursor += n;
                        self.out.flushed += n as u64;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                }
            }
            if self.out.cursor == self.out.buf.len() && self.out.cursor > 0 {
                self.out.buf.clear();
                self.out.cursor = 0;
                drop(self.stream.flush());
            }
        }
        let now = Instant::now();
        let mut shed = false;
        while self
            .out
            .marks
            .front()
            .is_some_and(|m| m.end <= self.out.flushed)
        {
            let mark = self
                .out
                .marks
                .pop_front()
                .expect("front() just matched this mark");
            let span = self.out.write_start.map(|start| (start, now));
            shed |= server::complete_trace(ctx, mark.trace, span);
            progress = true;
        }
        if self.dead {
            self.out.buf.clear();
            self.out.cursor = 0;
            while let Some(mark) = self.out.marks.pop_front() {
                shed |= server::complete_trace(ctx, mark.trace, None);
                progress = true;
            }
        }
        if shed {
            server::dump_on_shed(ctx);
        }
        if self.out.pending() == 0 && self.out.marks.is_empty() {
            self.out.write_start = None;
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    //! Socket-free tests of the shard handoff protocol — the CI Miri
    //! targets for the poller's lock/condvar core.

    use super::*;

    fn shard() -> Arc<Shard> {
        Arc::new(Shard {
            inbox: Mutex::new(Inbox {
                conns: Vec::new(),
                notified: false,
            }),
            bell: Condvar::new(),
        })
    }

    /// The shard loop's adopt step: take newcomers and the bell state in
    /// one lock, clearing both (mirrors `run_shard`).
    fn adopt(shard: &Shard) -> (Vec<TcpStream>, bool) {
        let mut inbox = shard.lock();
        let notified = inbox.notified;
        inbox.notified = false;
        (std::mem::take(&mut inbox.conns), notified)
    }

    #[test]
    fn wake_sets_the_flag_and_adopt_clears_it() {
        let shard = shard();
        assert!(!adopt(&shard).1, "fresh shard is quiet");
        shard.wake();
        assert!(adopt(&shard).1, "wake must be visible to adopt");
        assert!(!adopt(&shard).1, "adopt consumes the wake");
    }

    #[test]
    fn wake_landing_mid_sweep_prevents_the_sleep() {
        // A wake that arrives after adopt cleared the flag but before the
        // shard re-checks it at the sleep site must keep the shard awake:
        // the sleep guard re-reads `notified` under the same lock.
        let shard = shard();
        let (_, notified) = adopt(&shard);
        assert!(!notified);
        shard.wake();
        let inbox = shard.lock();
        assert!(
            inbox.notified || !inbox.conns.is_empty(),
            "sleep guard must see the mid-sweep wake"
        );
    }

    #[test]
    fn concurrent_wakes_are_coalesced_but_never_lost() {
        let shard = shard();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shard = Arc::clone(&shard);
                s.spawn(move || {
                    for _ in 0..25 {
                        shard.wake();
                    }
                });
            }
        });
        // 100 wakes may fold into one flag, but at least one must survive.
        assert!(adopt(&shard).1);
        assert!(!adopt(&shard).1);
    }

    #[test]
    fn sleeping_shard_is_woken_by_the_bell() {
        let shard = shard();
        let sleeper = Arc::clone(&shard);
        let handle = std::thread::spawn(move || {
            // The shard loop's idle path: sleep only while quiet, bounded
            // by the backoff timeout so a missed bell cannot hang the test.
            loop {
                let inbox = sleeper.lock();
                if inbox.notified {
                    return true;
                }
                let (inbox, _) = sleeper
                    .bell
                    .wait_timeout(inbox, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if inbox.notified {
                    return true;
                }
            }
        });
        shard.wake();
        assert!(handle.join().expect("sleeper panicked"));
    }
}
