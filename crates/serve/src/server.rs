//! The TCP server: accept loop, event-driven connection multiplexing, and
//! verb routing into the registry and the batch executor.
//!
//! Connections are **not** given their own threads. The accept loop
//! registers each socket with a small fixed [`PollerPool`] of readiness
//! threads (see [`crate::poller`]); every connection is a state machine
//! multiplexed over nonblocking reads, in-order request slots, and
//! buffered backpressured writes. A client that pipelines N requests gets
//! them framed together and coalesced into dense batch evaluations, and
//! concurrent clients coalesce with each other through the shared
//! [`Batcher`] queue — exactly as under the old thread-per-connection
//! design, with bit-identical replies, but thousands of mostly-idle
//! keep-alive connections now cost buffer space instead of OS threads.
//!
//! When started with a snapshot directory, the server **warm-starts**: it
//! restores every artifact persisted by a previous `save`, re-gated
//! through the hmdiv-analyze admission check, under identical content
//! ids.
//!
//! Graceful shutdown: the `shutdown` verb (or
//! [`Server::request_shutdown`]) latches the shutdown signal. The accept
//! loop stops taking connections, poller shards finish writing every
//! response they owe and release their sockets, and the executor drains
//! everything already queued before the server joins.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hmdiv_core::extrapolate::Scenario;
use hmdiv_obs::{FlightRecorder, RequestRecord, Stage, StageSet, TraceId, TraceOutcome};

use crate::batcher::{Batcher, Outcome, Ticket, Waker, Work};
use crate::error::ServeError;
use crate::json::{self, Json};
use crate::poller::PollerPool;
use crate::protocol::{self, Envelope};
use crate::registry::{Artifact, LoadReceipt, Registry};
use crate::shutdown::ShutdownSignal;

/// How long the accept loop naps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Bound on queued admission **cost** in the executor (scalar
    /// evaluations, not request count); submissions beyond it are
    /// rejected with the `overloaded` wire error.
    pub queue_capacity: usize,
    /// Shard count for dense batch evaluation (results are identical at
    /// any value).
    pub threads: usize,
    /// Readiness-poller threads multiplexing the connections. A handful
    /// is enough for thousands of keep-alive sockets.
    pub poller_threads: usize,
    /// Longest accepted request line; longer lines get the
    /// `line_too_long` error and the connection stays open (framing
    /// resyncs at the next newline).
    pub max_line_bytes: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Flight-recorder capacity: how many completed-request records the
    /// ring keeps for the `trace` verb. `0` (the default) disables
    /// request tracing entirely — no stage stamping, no recording.
    pub trace_capacity: usize,
    /// Where to dump the flight recorder's contents (as the `trace`
    /// verb's JSON) whenever a request sheds — `overloaded` or
    /// `deadline_exceeded`. `None` disables automatic dumps.
    pub trace_dump: Option<PathBuf>,
    /// Registry snapshot directory. When set, the server restores every
    /// artifact found there at startup (warm start with identical
    /// content ids) and the `save`/`restore` verbs default to it.
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_capacity: 1024,
            threads: 4,
            poller_threads: 4,
            max_line_bytes: 1 << 20,
            default_deadline_ms: None,
            trace_capacity: 0,
            trace_dump: None,
            snapshot_dir: None,
        }
    }
}

/// The request-tracing half of the server: the flight recorder plus the
/// shed-triggered dump sink.
struct Tracer {
    recorder: FlightRecorder,
    dump_path: Option<PathBuf>,
    /// Serialises automatic dumps so two concurrent shed events do not
    /// interleave writes into the same file.
    dump_lock: Mutex<()>,
}

impl Tracer {
    /// Writes the recorder's current contents (oldest first, same JSON as
    /// the `trace` verb) to the configured dump path, if any. Best
    /// effort: a failed write only bumps a counter.
    fn dump_on_shed(&self) {
        let Some(path) = &self.dump_path else { return };
        let _guard = self
            .dump_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let records = self.recorder.peek();
        let mut text = String::new();
        trace_report_json(&records, &self.recorder).write(&mut text);
        text.push('\n');
        if std::fs::write(path, text).is_ok() {
            hmdiv_obs::counter_add("serve.trace.dumps", 1);
        } else {
            hmdiv_obs::counter_add("serve.trace.dump_failures", 1);
        }
    }
}

/// Everything the poller shards and verb router need, shared behind one
/// `Arc`.
pub(crate) struct Ctx {
    pub(crate) signal: Arc<ShutdownSignal>,
    pub(crate) registry: Arc<Registry>,
    pub(crate) batcher: Batcher,
    pub(crate) threads: usize,
    pub(crate) max_line_bytes: usize,
    pub(crate) default_deadline_ms: Option<u64>,
    pub(crate) snapshot_dir: Option<PathBuf>,
    pub(crate) poller_threads: usize,
    /// Live open sockets, mirrored into the `serve.connections` gauge.
    pub(crate) live_connections: AtomicI64,
    tracer: Option<Tracer>,
}

/// Bumps the live-connection count and gauge for a newly adopted socket.
#[allow(clippy::cast_precision_loss)]
pub(crate) fn connection_opened(ctx: &Ctx) {
    let live = ctx.live_connections.fetch_add(1, Ordering::Relaxed) + 1;
    hmdiv_obs::gauge_set("serve.connections", live as f64);
}

/// Drops the live-connection count and gauge for a released socket.
#[allow(clippy::cast_precision_loss)]
pub(crate) fn connection_closed(ctx: &Ctx) {
    let live = ctx.live_connections.fetch_sub(1, Ordering::Relaxed) - 1;
    hmdiv_obs::gauge_set("serve.connections", live as f64);
}

/// A running evaluation server.
pub struct Server {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    registry: Arc<Registry>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, spawns the poller pool, the accept loop, and the batch
    /// executor, restores any registry snapshot, and returns immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding or thread spawning fails;
    /// [`ServeError::Snapshot`]/[`ServeError::Rejected`] if a configured
    /// snapshot directory holds artifacts that no longer restore cleanly.
    pub fn start(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(ShutdownSignal::new());
        let registry = Arc::new(Registry::new());
        if let Some(dir) = &config.snapshot_dir {
            registry.restore_from_dir(dir)?;
        }
        let batcher = Batcher::start(config.queue_capacity, config.threads)?;
        let tracer = (config.trace_capacity > 0).then(|| Tracer {
            recorder: FlightRecorder::with_capacity(config.trace_capacity),
            dump_path: config.trace_dump.clone(),
            dump_lock: Mutex::new(()),
        });
        let ctx = Arc::new(Ctx {
            signal: Arc::clone(&signal),
            registry: Arc::clone(&registry),
            batcher,
            threads: config.threads,
            max_line_bytes: config.max_line_bytes,
            default_deadline_ms: config.default_deadline_ms,
            snapshot_dir: config.snapshot_dir.clone(),
            poller_threads: config.poller_threads.max(1),
            live_connections: AtomicI64::new(0),
            tracer,
        });
        hmdiv_obs::gauge_set("serve.connections", 0.0);
        let pool = PollerPool::start(ctx.poller_threads, &ctx)?;
        let accept = std::thread::Builder::new()
            .name("hmdiv-serve-accept".into())
            .spawn(move || accept_loop(&listener, &ctx, pool))?;
        Ok(Server {
            addr,
            signal,
            registry,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared model registry (for in-process preloading).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Latches the shutdown signal without waiting for the drain.
    pub fn request_shutdown(&self) {
        self.signal.request();
    }

    /// Blocks until the server has shut down (via the `shutdown` verb or
    /// [`Server::request_shutdown`]) and every in-flight request has
    /// drained.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            drop(accept.join());
        }
    }

    /// Requests shutdown and waits for the drain.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal.request();
        if let Some(accept) = self.accept.take() {
            drop(accept.join());
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, pool: PollerPool) {
    while !ctx.signal.is_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                hmdiv_obs::counter_add("serve.connections_accepted", 1);
                pool.register(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                ctx.signal.wait_timeout(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly.
                ctx.signal.wait_timeout(ACCEPT_POLL);
            }
        }
    }
    // Drain order matters: the pollers first (they finish writing every
    // response they owe — the executor is still live to answer their
    // outstanding tickets), then the executor (which flushes whatever is
    // still queued).
    pool.stop_and_join();
    ctx.batcher.drain();
}

/// A traced request awaiting its final write stamp: records complete
/// *after* the response bytes hit the socket, so the write stage and the
/// true outcome are both in the flight recorder.
pub(crate) struct PendingTrace {
    trace_id: TraceId,
    verb: String,
    model: Option<String>,
    stages: Arc<StageSet>,
    outcome: TraceOutcome,
}

/// Stamps the write stage (when the bytes reached the socket), lands the
/// completed record in the flight recorder, and feeds the `serve.stage.*`
/// latency histograms. Returns whether the record is a shed outcome, so
/// the caller can trigger one recorder dump per write batch.
pub(crate) fn complete_trace(
    ctx: &Ctx,
    p: PendingTrace,
    write: Option<(Instant, Instant)>,
) -> bool {
    let Some(tracer) = &ctx.tracer else {
        return false;
    };
    if let Some((start, end)) = write {
        p.stages.stamp(Stage::Write, start, end);
    }
    let record = RequestRecord {
        trace_id: p.trace_id,
        verb: p.verb,
        model: p.model,
        batch_size: p.stages.batch_size(),
        queue_depth: p.stages.queue_depth(),
        stages: p.stages.finish(),
        outcome: p.outcome,
    };
    if hmdiv_obs::enabled() {
        for span in record.stages.iter().flatten() {
            hmdiv_obs::observe_ns(&format!("serve.stage.{}", span.stage.name()), span.dur_ns);
        }
    }
    let shed = record.outcome.is_shed();
    tracer.recorder.record(record);
    shed
}

/// Dumps the flight recorder to the configured shed-dump path, if any.
pub(crate) fn dump_on_shed(ctx: &Ctx) {
    if let Some(tracer) = &ctx.tracer {
        tracer.dump_on_shed();
    }
}

/// How a queued outcome renders into the verb's result object.
enum Render {
    /// `{"failure": p}` from [`Outcome::One`].
    Failure,
    /// `{"failures": [p…]}` from [`Outcome::Many`].
    Failures,
    /// `{"before", "after", "improvement"}` from a two-element
    /// [`Outcome::Many`].
    Extrapolate,
    /// The [`Outcome::Value`] JSON as-is.
    Value,
}

/// A routed request: either answered inline or pending in the executor.
enum Routed {
    Ready(Json),
    Queued { ticket: Ticket, render: Render },
}

/// Verbs the server understands (unknown verbs share one metrics bucket
/// to keep counter cardinality bounded).
const VERBS: [&str; 18] = [
    "ping",
    "metrics",
    "models",
    "manifest",
    "fetch",
    "shutdown",
    "load",
    "load_cohort",
    "analyze",
    "compare",
    "evaluate",
    "scenarios",
    "extrapolate",
    "importance",
    "cohort",
    "trace",
    "save",
    "restore",
];

/// One parsed request waiting for its response to render.
pub(crate) struct RequestSlot {
    id: Json,
    /// The trace id to echo in the response envelope.
    echo: Option<TraceId>,
    /// Tracing context when the server records flights.
    trace: Option<(TraceId, Arc<StageSet>, String, Option<String>)>,
    routed: Result<Routed, ServeError>,
}

impl RequestSlot {
    /// A slot for a line that never parsed into an envelope (over-limit,
    /// invalid UTF-8): renders the typed error, no trace, no id echo.
    pub(crate) fn framing_error(e: ServeError) -> RequestSlot {
        RequestSlot {
            id: Json::Null,
            echo: None,
            trace: None,
            routed: Err(e),
        }
    }

    /// The executor ticket when this slot is still waiting on queued
    /// work; `None` once resolvable inline.
    pub(crate) fn pending_ticket(&self) -> Option<&Ticket> {
        match &self.routed {
            Ok(Routed::Queued { ticket, .. }) => Some(ticket),
            _ => None,
        }
    }
}

/// Parses and routes one request line into a slot, stamping read/parse
/// stages exactly as the threaded server did: `received` is the batch's
/// framing instant, `read_start` the first socket bytes that contributed
/// to it.
pub(crate) fn route_line(
    line: &str,
    received: Instant,
    read_start: Option<Instant>,
    ctx: &Ctx,
    waker: Option<Waker>,
) -> RequestSlot {
    let parse_start = Instant::now();
    match protocol::parse_request(line) {
        Ok(env) => {
            let parse_end = Instant::now();
            if VERBS.contains(&env.verb.as_str()) {
                hmdiv_obs::counter_add(&format!("serve.verb.{}", env.verb), 1);
            } else {
                hmdiv_obs::counter_add("serve.verb.unknown", 1);
            }
            let id = env.id.clone();
            // With tracing on, every request gets a stage set and an
            // id (client-supplied or minted); with it off, a client
            // trace id is still echoed for correlation.
            let trace = ctx.tracer.as_ref().map(|_| {
                let tid = env.trace_id.unwrap_or_else(TraceId::mint);
                let set = Arc::new(StageSet::new(received));
                if let Some(rs) = read_start {
                    set.stamp(Stage::Read, rs, received);
                }
                set.stamp(Stage::Parse, parse_start, parse_end);
                let model = env
                    .body
                    .get("model")
                    .or_else(|| env.body.get("cohort"))
                    .and_then(Json::as_str)
                    .map(str::to_owned);
                (tid, set, env.verb.clone(), model)
            });
            let echo = trace.as_ref().map(|(tid, ..)| *tid).or(env.trace_id);
            let stage_set = trace.as_ref().map(|(_, set, ..)| Arc::clone(set));
            let routed = route(&env, received, ctx, stage_set.clone(), waker);
            if let Some(set) = &stage_set {
                // Queued verbs spend `route` binding and submitting —
                // count that as parse; inline verbs do their whole
                // evaluation inside `route` — count that as eval.
                match &routed {
                    Ok(Routed::Queued { .. }) => {
                        set.stamp(Stage::Parse, parse_start, Instant::now());
                    }
                    _ => set.stamp_since(Stage::Eval, parse_end),
                }
            }
            RequestSlot {
                id,
                echo,
                trace,
                routed,
            }
        }
        Err(e) => {
            // Best effort: echo the id even when the envelope is bad.
            let id = json::parse(line)
                .ok()
                .and_then(|j| j.get("id").cloned())
                .unwrap_or(Json::Null);
            RequestSlot {
                id,
                echo: None,
                trace: None,
                routed: Err(e),
            }
        }
    }
}

/// Renders a resolved slot into its wire line, stamping the serialize
/// stage and producing the pending trace record (write-stamped later,
/// when its bytes reach the socket). `reply` carries the executor's
/// answer for queued slots; inline and error slots pass `None`.
pub(crate) fn finish_slot(
    slot: RequestSlot,
    reply: Option<Result<Outcome, ServeError>>,
) -> (String, Option<PendingTrace>) {
    let (ser_start, line, outcome) = match slot.routed {
        Ok(Routed::Ready(result)) => {
            let s = Instant::now();
            (
                s,
                protocol::ok_line(&slot.id, slot.echo, result),
                TraceOutcome::Ok,
            )
        }
        Ok(Routed::Queued { ticket, render }) => {
            // The poller hands over the reply it already took; fall back
            // to a blocking wait for any caller that did not.
            let reply = reply.unwrap_or_else(|| ticket.wait());
            let s = Instant::now();
            match reply.and_then(|o| render_outcome(&render, o)) {
                Ok(result) => (
                    s,
                    protocol::ok_line(&slot.id, slot.echo, result),
                    TraceOutcome::Ok,
                ),
                Err(e) => {
                    let outcome = e.trace_outcome();
                    (s, protocol::err_line(&slot.id, slot.echo, &e), outcome)
                }
            }
        }
        Err(e) => {
            hmdiv_obs::counter_add("serve.errors", 1);
            let s = Instant::now();
            let outcome = e.trace_outcome();
            (s, protocol::err_line(&slot.id, slot.echo, &e), outcome)
        }
    };
    let pending = slot.trace.map(|(trace_id, stages, verb, model)| {
        stages.stamp_since(Stage::Serialize, ser_start);
        PendingTrace {
            trace_id,
            verb,
            model,
            stages,
            outcome,
        }
    });
    (line, pending)
}

fn render_outcome(render: &Render, outcome: Outcome) -> Result<Json, ServeError> {
    match (render, outcome) {
        (Render::Failure, Outcome::One(p)) => Ok(Json::Obj(vec![(
            "failure".to_owned(),
            Json::Num(p.value()),
        )])),
        (Render::Failures, Outcome::Many(failures)) => Ok(Json::Obj(vec![(
            "failures".to_owned(),
            Json::Arr(failures.iter().map(|p| Json::Num(p.value())).collect()),
        )])),
        (Render::Extrapolate, Outcome::Many(pair)) if pair.len() == 2 => {
            let (before, after) = (pair[0].value(), pair[1].value());
            Ok(Json::Obj(vec![
                ("before".to_owned(), Json::Num(before)),
                ("after".to_owned(), Json::Num(after)),
                ("improvement".to_owned(), Json::Num(before - after)),
            ]))
        }
        (Render::Value, Outcome::Value(v)) => Ok(v),
        _ => Err(ServeError::Io {
            detail: "executor returned a mismatched outcome shape".to_owned(),
        }),
    }
}

/// Renders an analyzer report as the `analyze` verb's result object.
fn report_json(report: &hmdiv_analyze::Report) -> Json {
    let diags = report
        .diagnostics()
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("code".to_owned(), Json::str(d.code)),
                ("severity".to_owned(), Json::str(d.severity.label())),
                ("pass".to_owned(), Json::str(d.pass)),
                ("message".to_owned(), Json::str(d.message.as_str())),
            ])
        })
        .collect();
    let (errors, warnings, notes) = report.counts();
    Json::Obj(vec![
        ("diagnostics".to_owned(), Json::Arr(diags)),
        ("errors".to_owned(), Json::Num(errors as f64)),
        ("warnings".to_owned(), Json::Num(warnings as f64)),
        ("notes".to_owned(), Json::Num(notes as f64)),
        ("summary".to_owned(), Json::str(report.summary_line())),
    ])
}

/// Renders a differential comparison as the `compare` verb's result
/// object: the verdict, the scope of its certificate, per-class and
/// per-profile gap bounds, and the full diagnostic report.
fn comparison_json(cmp: &hmdiv_analyze::Comparison) -> Json {
    let class_gaps = cmp
        .class_gaps
        .iter()
        .map(|g| {
            Json::Obj(vec![
                ("class".to_owned(), Json::str(g.class.as_str())),
                ("shared".to_owned(), Json::Bool(g.shared)),
                ("gap_lo".to_owned(), Json::Num(g.gap.lo)),
                ("gap_hi".to_owned(), Json::Num(g.gap.hi)),
            ])
        })
        .collect();
    let profile_gaps = cmp
        .profile_gaps
        .iter()
        .map(|g| Json::Arr(vec![Json::Num(g.lo), Json::Num(g.hi)]))
        .collect();
    Json::Obj(vec![
        ("verdict".to_owned(), Json::str(cmp.verdict.label())),
        (
            "uniform".to_owned(),
            match cmp.uniform {
                Some(u) => Json::str(u.label()),
                None => Json::Null,
            },
        ),
        ("class_gaps".to_owned(), Json::Arr(class_gaps)),
        ("profile_gaps".to_owned(), Json::Arr(profile_gaps)),
        ("report".to_owned(), report_json(&cmp.report)),
    ])
}

fn receipt_json(receipt: &LoadReceipt) -> Json {
    Json::Obj(vec![
        ("model_id".to_owned(), Json::str(receipt.id.as_str())),
        (
            "classes".to_owned(),
            Json::Arr(
                receipt
                    .classes
                    .iter()
                    .map(|c| Json::str(c.as_str()))
                    .collect(),
            ),
        ),
        (
            "universe_hash".to_owned(),
            Json::str(protocol::render_hash(receipt.universe_hash)),
        ),
    ])
}

/// Renders one flight-recorder record as the `trace` verb's JSON row:
/// identity and admission facts, a `stages` object of stamped spans, and
/// the parented `spans` tree.
#[allow(clippy::cast_precision_loss)]
fn trace_record_json(r: &RequestRecord) -> Json {
    let stages = r
        .stages
        .iter()
        .flatten()
        .map(|s| {
            (
                s.stage.name().to_owned(),
                Json::Obj(vec![
                    ("start_ns".to_owned(), Json::Num(s.start_ns as f64)),
                    ("dur_ns".to_owned(), Json::Num(s.dur_ns as f64)),
                ]),
            )
        })
        .collect();
    let spans = r
        .spans()
        .into_iter()
        .map(|n| {
            Json::Obj(vec![
                ("id".to_owned(), Json::Num(f64::from(n.id))),
                (
                    "parent".to_owned(),
                    n.parent.map_or(Json::Null, |p| Json::Num(f64::from(p))),
                ),
                ("name".to_owned(), Json::str(n.name)),
                ("start_ns".to_owned(), Json::Num(n.start_ns as f64)),
                ("dur_ns".to_owned(), Json::Num(n.dur_ns as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("trace_id".to_owned(), Json::str(r.trace_id.to_hex())),
        ("verb".to_owned(), Json::str(r.verb.as_str())),
        (
            "model".to_owned(),
            r.model.as_deref().map_or(Json::Null, Json::str),
        ),
        ("batch_size".to_owned(), Json::Num(r.batch_size as f64)),
        ("queue_depth".to_owned(), Json::Num(r.queue_depth as f64)),
        ("outcome".to_owned(), Json::str(r.outcome.label())),
        ("total_ns".to_owned(), Json::Num(r.total_ns() as f64)),
        ("stages".to_owned(), Json::Obj(stages)),
        ("spans".to_owned(), Json::Arr(spans)),
    ])
}

/// The `trace` verb's result (also the shed-dump file's content): the
/// records oldest first plus the recorder's bookkeeping.
#[allow(clippy::cast_precision_loss)]
fn trace_report_json(records: &[RequestRecord], recorder: &FlightRecorder) -> Json {
    Json::Obj(vec![
        (
            "records".to_owned(),
            Json::Arr(records.iter().map(trace_record_json).collect()),
        ),
        ("capacity".to_owned(), Json::Num(recorder.capacity() as f64)),
        ("recorded".to_owned(), Json::Num(recorder.recorded() as f64)),
        ("dropped".to_owned(), Json::Num(recorder.contended() as f64)),
    ])
}

/// Resolves the directory a `save`/`restore` request targets: the
/// request's `dir` member, else the server's configured snapshot dir.
fn snapshot_dir_for(body: &Json, ctx: &Ctx, verb: &str) -> Result<PathBuf, ServeError> {
    body.get("dir")
        .and_then(Json::as_str)
        .map(PathBuf::from)
        .or_else(|| ctx.snapshot_dir.clone())
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!(
                "`{verb}` needs a `dir` string (or start the server with a snapshot dir)"
            ),
        })
}

/// The `save`/`restore` result object: the directory, how many artifacts
/// moved, and their content ids.
#[allow(clippy::cast_precision_loss)]
fn snapshot_result_json(dir: &Path, action: &str, ids: &[String]) -> Json {
    Json::Obj(vec![
        ("dir".to_owned(), Json::str(dir.display().to_string())),
        (action.to_owned(), Json::Num(ids.len() as f64)),
        (
            "ids".to_owned(),
            Json::Arr(ids.iter().map(|id| Json::str(id.as_str())).collect()),
        ),
    ])
}

fn route(
    env: &Envelope,
    received: Instant,
    ctx: &Ctx,
    trace: Option<Arc<StageSet>>,
    waker: Option<Waker>,
) -> Result<Routed, ServeError> {
    let deadline = env
        .deadline_ms
        .or(ctx.default_deadline_ms)
        .map(|ms| received + Duration::from_millis(ms));
    let body = &env.body;
    match env.verb.as_str() {
        "ping" => Ok(Routed::Ready(Json::Obj(vec![(
            "pong".to_owned(),
            Json::Bool(true),
        )]))),
        "metrics" => {
            let snapshot = hmdiv_obs::snapshot();
            #[allow(clippy::cast_precision_loss)]
            let par_threshold = crate::batcher::par_threshold() as f64;
            // Histogram summaries (count, sum, and interpolated
            // percentiles) for every registered histogram, `serve.*`
            // stage latencies included, in deterministic name order.
            #[allow(clippy::cast_precision_loss)]
            let histograms = snapshot
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        Json::Obj(vec![
                            ("unit".to_owned(), Json::str(h.unit.label())),
                            ("count".to_owned(), Json::Num(h.count as f64)),
                            ("sum".to_owned(), Json::Num(h.sum as f64)),
                            ("p50".to_owned(), Json::Num(h.p50())),
                            ("p95".to_owned(), Json::Num(h.p95())),
                            ("p99".to_owned(), Json::Num(h.p99())),
                        ]),
                    )
                })
                .collect();
            #[allow(clippy::cast_precision_loss)]
            let queue_depth = ctx.batcher.queue_len() as f64;
            #[allow(clippy::cast_precision_loss)]
            let queue_cost = ctx.batcher.queue_cost() as f64;
            #[allow(clippy::cast_precision_loss)]
            let connections = ctx.live_connections.load(Ordering::Relaxed) as f64;
            #[allow(clippy::cast_precision_loss)]
            let pollers = ctx.poller_threads as f64;
            Ok(Routed::Ready(Json::Obj(vec![
                (
                    "prometheus".to_owned(),
                    Json::str(hmdiv_obs::export::to_prometheus(&snapshot)),
                ),
                ("histograms".to_owned(), Json::Obj(histograms)),
                // The effective batcher parallelism threshold (default or
                // HMDIV_SERVE_PAR_THRESHOLD override).
                ("par_threshold".to_owned(), Json::Num(par_threshold)),
                ("queue_depth".to_owned(), Json::Num(queue_depth)),
                ("queue_cost".to_owned(), Json::Num(queue_cost)),
                ("connections".to_owned(), Json::Num(connections)),
                ("pollers".to_owned(), Json::Num(pollers)),
            ])))
        }
        "trace" => {
            let tracer = ctx.tracer.as_ref().ok_or(ServeError::TraceDisabled)?;
            let records = tracer.recorder.drain();
            Ok(Routed::Ready(trace_report_json(&records, &tracer.recorder)))
        }
        "models" => {
            let rows = ctx
                .registry
                .list()
                .into_iter()
                .map(|row| {
                    Json::Obj(vec![
                        ("id".to_owned(), Json::str(row.id)),
                        ("kind".to_owned(), Json::str(row.kind)),
                        ("classes".to_owned(), Json::Num(row.classes as f64)),
                        (
                            "universe_hash".to_owned(),
                            Json::str(protocol::render_hash(row.universe_hash)),
                        ),
                    ])
                })
                .collect();
            Ok(Routed::Ready(Json::Obj(vec![(
                "models".to_owned(),
                Json::Arr(rows),
            )])))
        }
        "manifest" => {
            // The fleet sync inventory: content ids + kinds only, in
            // BTreeMap id order, so two replicas with the same artifacts
            // render byte-identical manifests.
            let rows: Vec<Json> = ctx
                .registry
                .list()
                .into_iter()
                .map(|row| {
                    Json::Obj(vec![
                        ("id".to_owned(), Json::str(row.id)),
                        ("kind".to_owned(), Json::str(row.kind)),
                    ])
                })
                .collect();
            #[allow(clippy::cast_precision_loss)]
            let count = rows.len() as f64;
            Ok(Routed::Ready(Json::Obj(vec![
                ("artifacts".to_owned(), Json::Arr(rows)),
                ("count".to_owned(), Json::Num(count)),
            ])))
        }
        "fetch" => {
            // The sync transfer format: the load-verb wire shape plus the
            // content id, so the receiving side can replay it through its
            // own load path and verify the recomputed id.
            let id = protocol::required_str(body, "model")?;
            Ok(Routed::Ready(ctx.registry.export_wire(id)?))
        }
        "shutdown" => {
            ctx.signal.request();
            Ok(Routed::Ready(Json::Obj(vec![(
                "draining".to_owned(),
                Json::Bool(true),
            )])))
        }
        "save" => {
            let dir = snapshot_dir_for(body, ctx, "save")?;
            let ids = ctx.registry.save_to_dir(&dir)?;
            Ok(Routed::Ready(snapshot_result_json(&dir, "saved", &ids)))
        }
        "restore" => {
            let dir = snapshot_dir_for(body, ctx, "restore")?;
            let ids = ctx.registry.restore_from_dir(&dir)?;
            Ok(Routed::Ready(snapshot_result_json(&dir, "restored", &ids)))
        }
        "load" => {
            let manifest = protocol::parse_manifest(body)?;
            let kind = body
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("sequential");
            let receipt = match kind {
                "sequential" => ctx
                    .registry
                    .load_sequential(protocol::parse_model_params(body)?, manifest.as_ref())?,
                "detection" => ctx
                    .registry
                    .load_detection(protocol::parse_detection_params(body)?, manifest.as_ref())?,
                other => {
                    return Err(ServeError::BadRequest {
                        detail: format!("unknown model kind `{other}`"),
                    })
                }
            };
            Ok(Routed::Ready(receipt_json(&receipt)))
        }
        "load_cohort" => {
            let manifest = protocol::parse_manifest(body)?;
            let members = protocol::parse_cohort_members(body)?;
            let receipt = ctx.registry.load_cohort(members, manifest.as_ref())?;
            Ok(Routed::Ready(receipt_json(&receipt)))
        }
        "analyze" => {
            // Loaded artifacts passed admission, so this reports the
            // warnings and notes the gate let through. Pure and fast, so
            // answered inline rather than queued.
            let artifact = ctx.registry.get(protocol::required_str(body, "model")?)?;
            Ok(Routed::Ready(report_json(&artifact.analyze())))
        }
        "compare" => {
            // Differential comparison of two loaded artifacts. Pure and
            // fast like `analyze`, so answered inline; error-severity
            // findings (universe mismatch, domain faults) reject with
            // their stable HM code, mirroring load admission.
            let baseline = sequential_artifact(ctx, protocol::required_str(body, "baseline")?)?;
            let candidate = sequential_artifact(ctx, protocol::required_str(body, "candidate")?)?;
            let profiles = match body.get("profile") {
                Some(_) => {
                    let profile = protocol::parse_profile(body)?;
                    vec![baseline
                        .compiled()
                        .bind_profile(&profile)
                        .map_err(ServeError::Model)?]
                }
                None => Vec::new(),
            };
            let cmp = hmdiv_analyze::compare(baseline.compiled(), candidate.compiled(), &profiles);
            if let Some(d) = cmp.report.first_error() {
                return Err(ServeError::Rejected {
                    code: d.code.to_owned(),
                    detail: d.message.clone(),
                });
            }
            Ok(Routed::Ready(comparison_json(&cmp)))
        }
        "evaluate" => {
            let artifact = ctx.registry.get(protocol::required_str(body, "model")?)?;
            let profile = protocol::parse_profile(body)?;
            match artifact {
                Artifact::Sequential(model) => {
                    let compiled = Arc::clone(model.compiled());
                    let bound = compiled.bind_profile(&profile).map_err(ServeError::Model)?;
                    let ticket = ctx.batcher.submit(
                        Work::Profile {
                            model: compiled,
                            profile: bound,
                        },
                        1,
                        deadline,
                        trace.clone(),
                        waker,
                    )?;
                    Ok(Routed::Queued {
                        ticket,
                        render: Render::Failure,
                    })
                }
                Artifact::Detection(model) => {
                    let compiled = Arc::clone(model.compiled());
                    let ticket = ctx.batcher.submit(
                        Work::Direct(Box::new(move || {
                            let bound =
                                compiled.bind_profile(&profile).map_err(ServeError::Model)?;
                            Ok(Outcome::One(compiled.system_failure(&bound)))
                        })),
                        1,
                        deadline,
                        trace.clone(),
                        waker,
                    )?;
                    Ok(Routed::Queued {
                        ticket,
                        render: Render::Failure,
                    })
                }
                Artifact::Cohort(_) => Err(ServeError::BadRequest {
                    detail: "cohort artifacts are evaluated with the `cohort` verb".to_owned(),
                }),
            }
        }
        "scenarios" => {
            let (compiled, bound) = sequential_binding(body, ctx)?;
            let scenarios = protocol::parse_scenarios(body)?;
            // Admission cost: one scalar evaluation per scenario, so a
            // bulk batch cannot monopolize a flush window for free.
            let cost = scenarios.len();
            let ticket = ctx.batcher.submit(
                Work::Scenarios {
                    model: compiled,
                    profile: bound,
                    scenarios,
                },
                cost,
                deadline,
                trace.clone(),
                waker,
            )?;
            Ok(Routed::Queued {
                ticket,
                render: Render::Failures,
            })
        }
        "extrapolate" => {
            let (compiled, bound) = sequential_binding(body, ctx)?;
            let scenario = protocol::parse_scenario(protocol::required(body, "scenario")?)?;
            let ticket = ctx.batcher.submit(
                Work::Scenarios {
                    model: compiled,
                    profile: bound,
                    scenarios: vec![Scenario::new(), scenario],
                },
                2,
                deadline,
                trace.clone(),
                waker,
            )?;
            Ok(Routed::Queued {
                ticket,
                render: Render::Extrapolate,
            })
        }
        "importance" => {
            let artifact = ctx.registry.get(protocol::required_str(body, "model")?)?;
            let Artifact::Sequential(model) = artifact else {
                return Err(ServeError::BadRequest {
                    detail: "`importance` needs a sequential model".to_owned(),
                });
            };
            let ticket = ctx.batcher.submit(
                Work::Direct(Box::new(move || {
                    let lines = hmdiv_core::importance::machine_response_lines(&model)
                        .into_iter()
                        .map(|line| {
                            Json::Obj(vec![
                                ("class".to_owned(), Json::str(line.class().name())),
                                (
                                    "lower_bound".to_owned(),
                                    Json::Num(line.lower_bound().value()),
                                ),
                                (
                                    "coherence_index".to_owned(),
                                    Json::Num(line.coherence_index()),
                                ),
                                (
                                    "current_p_mf".to_owned(),
                                    Json::Num(line.current_p_mf().value()),
                                ),
                            ])
                        })
                        .collect();
                    Ok(Outcome::Value(Json::Obj(vec![(
                        "lines".to_owned(),
                        Json::Arr(lines),
                    )])))
                })),
                1,
                deadline,
                trace.clone(),
                waker,
            )?;
            Ok(Routed::Queued {
                ticket,
                render: Render::Value,
            })
        }
        "cohort" => {
            let artifact = ctx.registry.get(protocol::required_str(body, "cohort")?)?;
            let Artifact::Cohort(cohort) = artifact else {
                return Err(ServeError::BadRequest {
                    detail: "`cohort` needs a cohort artifact (id `c…`)".to_owned(),
                });
            };
            let profile = protocol::parse_profile(body)?;
            let threads = ctx.threads;
            // Admission cost: one member-model evaluation per reader in
            // the cohort.
            let cost = cohort.members().len();
            let ticket = ctx.batcher.submit(
                Work::Direct(Box::new(move || {
                    let summary = cohort
                        .evaluate_par(&profile, threads)
                        .map_err(ServeError::Model)?;
                    let rows = summary
                        .rows
                        .iter()
                        .map(|row| {
                            Json::Obj(vec![
                                ("name".to_owned(), Json::str(row.name.as_str())),
                                ("share".to_owned(), Json::Num(row.share)),
                                ("failure".to_owned(), Json::Num(row.failure.value())),
                            ])
                        })
                        .collect();
                    Ok(Outcome::Value(Json::Obj(vec![
                        ("mean".to_owned(), Json::Num(summary.mean.value())),
                        ("best".to_owned(), Json::Num(summary.best.value())),
                        ("worst".to_owned(), Json::Num(summary.worst.value())),
                        ("spread".to_owned(), Json::Num(summary.spread())),
                        ("rows".to_owned(), Json::Arr(rows)),
                    ])))
                })),
                cost,
                deadline,
                trace.clone(),
                waker,
            )?;
            Ok(Routed::Queued {
                ticket,
                render: Render::Value,
            })
        }
        other => Err(ServeError::UnknownVerb {
            verb: other.to_owned(),
        }),
    }
}

/// Resolves a registry id that must name a sequential model.
fn sequential_artifact(
    ctx: &Ctx,
    id: &str,
) -> Result<Arc<hmdiv_core::SequentialModel>, ServeError> {
    let Artifact::Sequential(model) = ctx.registry.get(id)? else {
        return Err(ServeError::BadRequest {
            detail: "this verb needs a sequential model".to_owned(),
        });
    };
    Ok(model)
}

/// Resolves a sequential model id and binds the request's profile to it.
fn sequential_binding(
    body: &Json,
    ctx: &Ctx,
) -> Result<(Arc<hmdiv_core::CompiledModel>, hmdiv_core::CompiledProfile), ServeError> {
    let artifact = ctx.registry.get(protocol::required_str(body, "model")?)?;
    let Artifact::Sequential(model) = artifact else {
        return Err(ServeError::BadRequest {
            detail: "this verb needs a sequential model".to_owned(),
        });
    };
    let profile = protocol::parse_profile(body)?;
    let compiled = Arc::clone(model.compiled());
    let bound = compiled.bind_profile(&profile).map_err(ServeError::Model)?;
    Ok((compiled, bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_documented_shape() {
        let c = ServerConfig::default();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.queue_capacity, 1024);
        assert_eq!(c.poller_threads, 4, "a handful of pollers by default");
        assert_eq!(c.max_line_bytes, 1 << 20);
        assert!(c.default_deadline_ms.is_none());
        assert_eq!(c.trace_capacity, 0, "tracing is opt-in");
        assert!(c.trace_dump.is_none());
        assert!(c.snapshot_dir.is_none(), "persistence is opt-in");
    }
}
