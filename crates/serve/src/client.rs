//! A small blocking client for the JSON-lines protocol.
//!
//! One request per call with [`Client::request`], or many at once with
//! [`Client::pipeline`] — the latter writes every request before reading
//! any response, which is what lets the server's executor coalesce them
//! into dense batch evaluations.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ServeError;
use crate::json::{self, Json};

/// A blocking connection to an evaluation server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// `fields` are the verb's body members; `id` and `verb` are filled
    /// in automatically. Returns the `result` object of a successful
    /// response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carrying the server's wire error;
    /// [`ServeError::Io`]/[`ServeError::Parse`] for transport failures.
    pub fn request(&mut self, verb: &str, fields: Vec<(String, Json)>) -> Result<Json, ServeError> {
        let mut results = self.pipeline(vec![(verb.to_owned(), fields)])?;
        results.pop().ok_or_else(|| ServeError::Io {
            detail: "server closed without responding".to_owned(),
        })?
    }

    /// Sends every request before reading any response, then returns the
    /// per-request outcomes in order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`]/[`ServeError::Parse`] for transport failures;
    /// per-request server errors come back inside the result vector.
    #[allow(clippy::type_complexity)]
    pub fn pipeline(
        &mut self,
        requests: Vec<(String, Vec<(String, Json)>)>,
    ) -> Result<Vec<Result<Json, ServeError>>, ServeError> {
        Ok(self
            .pipeline_traced(requests)?
            .into_iter()
            .map(|r| r.result)
            .collect())
    }

    /// [`Client::pipeline`], keeping each response's echoed `trace_id` so
    /// callers can correlate replies with server-side flight-recorder
    /// records. The id is `None` when the server echoed none (tracing
    /// disabled and no client-supplied `trace_id` field).
    ///
    /// # Errors
    ///
    /// As [`Client::pipeline`].
    pub fn pipeline_traced(
        &mut self,
        requests: Vec<(String, Vec<(String, Json)>)>,
    ) -> Result<Vec<TracedResponse>, ServeError> {
        let mut wire = String::new();
        let count = requests.len();
        for (verb, fields) in requests {
            let mut members = vec![
                ("id".to_owned(), Json::Num(self.next_id as f64)),
                ("verb".to_owned(), Json::str(verb)),
            ];
            self.next_id += 1;
            members.extend(fields);
            Json::Obj(members).write(&mut wire);
            wire.push('\n');
        }
        self.stream.write_all(wire.as_bytes())?;
        self.stream.flush()?;
        let mut results = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            results.push(TracedResponse {
                trace_id: decode_trace_id(&line),
                result: decode_response(&line),
            });
        }
        Ok(results)
    }

    /// Reads one newline-terminated response line.
    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut chunk = [0_u8; 8 * 1024];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                return String::from_utf8(line).map_err(|_| ServeError::Parse {
                    detail: "response line is not valid UTF-8".to_owned(),
                });
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ServeError::Io {
                    detail: "server closed the connection mid-response".to_owned(),
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One pipelined response plus the trace id the server echoed, if any.
#[derive(Debug)]
pub struct TracedResponse {
    /// The response envelope's `trace_id` member (16 hex digits),
    /// verbatim.
    pub trace_id: Option<String>,
    /// The decoded result, as [`Client::pipeline`] returns it.
    pub result: Result<Json, ServeError>,
}

/// Pulls the echoed `trace_id` out of a response line, if present.
fn decode_trace_id(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("trace_id")?
        .as_str()
        .map(str::to_owned)
}

/// Decodes one response line into the `result` object or a typed error.
fn decode_response(line: &str) -> Result<Json, ServeError> {
    let response = json::parse(line).map_err(|e| ServeError::Parse {
        detail: format!("bad response line: {e}"),
    })?;
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => response
            .get("result")
            .cloned()
            .ok_or_else(|| ServeError::Parse {
                detail: "ok response without `result`".to_owned(),
            }),
        Some(false) => {
            let error = response.get("error").ok_or_else(|| ServeError::Parse {
                detail: "error response without `error`".to_owned(),
            })?;
            Err(ServeError::Remote {
                code: error
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: error
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            })
        }
        None => Err(ServeError::Parse {
            detail: "response without boolean `ok`".to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_success_and_wire_errors() {
        let ok = decode_response(r#"{"id":1,"ok":true,"result":{"pong":true}}"#).unwrap();
        assert_eq!(ok.get("pong").and_then(Json::as_bool), Some(true));
        let err =
            decode_response(r#"{"id":2,"ok":false,"error":{"code":"overloaded","message":"x"}}"#)
                .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Remote { ref code, .. } if code == "overloaded"
        ));
        assert!(decode_response("garbage").is_err());
        assert!(decode_response(r#"{"id":3}"#).is_err());
    }

    #[test]
    fn trace_ids_decode_when_echoed() {
        assert_eq!(
            decode_trace_id(r#"{"id":1,"trace_id":"00000000000000ff","ok":true,"result":{}}"#)
                .as_deref(),
            Some("00000000000000ff")
        );
        assert_eq!(decode_trace_id(r#"{"id":1,"ok":true,"result":{}}"#), None);
        assert_eq!(decode_trace_id("garbage"), None);
    }
}
