//! A small blocking client for the JSON-lines protocol.
//!
//! One request per call with [`Client::request`], or many at once with
//! [`Client::pipeline`] — the latter writes every request before reading
//! any response, which is what lets the server's executor coalesce them
//! into dense batch evaluations.
//!
//! Reconnection is **off by default**: a connection failure surfaces as a
//! typed [`ServeError::Io`]. Opting in with [`Client::with_retry`] makes
//! the client survive a server restart (or a fleet failover) by
//! reconnecting with jittered exponential backoff and replaying the
//! in-flight pipeline — safe because every verb in the protocol is
//! idempotent (loads are content-addressed, evaluations are pure).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;
use crate::json::{self, Json};

/// Bounded reconnect-with-backoff policy for [`Client::with_retry`].
///
/// On a retryable transport failure (`ConnectionRefused`,
/// `ConnectionReset`, `ConnectionAborted`, `BrokenPipe`, or the server
/// closing mid-response) the client sleeps `base_delay * 2^(attempt-1)`
/// — capped at `max_delay` and jittered to 50–100% of the nominal value
/// by a [`StdRng`] seeded from `seed`, so a herd of restarted clients
/// does not reconnect in lockstep — then reconnects and replays the
/// whole pipeline. After `budget` failed attempts the original error
/// surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum reconnect attempts per exchange (and per initial connect
    /// in [`Client::connect_with_retry`]).
    pub budget: u32,
    /// Nominal delay before the first retry; doubles every attempt.
    pub base_delay: Duration,
    /// Upper bound on the nominal backoff delay.
    pub max_delay: Duration,
    /// Seed for the jitter RNG (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(500),
            seed: 2003,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff delay before retry `attempt` (1-based).
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let nominal = self
            .base_delay
            .saturating_mul(1_u32 << doublings)
            .min(self.max_delay);
        nominal.mul_f64(rng.gen_range(0.5..=1.0))
    }
}

/// Whether a transport failure is worth a reconnect: the kinds a server
/// restart or a fleet failover produces, as opposed to protocol bugs.
fn retryable(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
    )
}

/// A transport-level exchange failure, split into the kinds a reconnect
/// can cure and the ones it cannot (malformed responses).
enum ExchangeError {
    Transport(std::io::Error),
    Fatal(ServeError),
}

/// A blocking connection to an evaluation server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The resolved peer address, kept so reconnects hit the same server.
    addr: SocketAddr,
    buf: Vec<u8>,
    next_id: u64,
    retry: Option<(RetryPolicy, StdRng)>,
}

impl Client {
    /// Connects to a server. No reconnection: transport failures surface
    /// immediately (see [`Client::with_retry`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = connect_stream(addr)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            buf: Vec::new(),
            next_id: 1,
            retry: None,
        })
    }

    /// Connects with `policy` applied to the initial connection *and* to
    /// every later exchange, so a client started before its server (or
    /// pointed at a restarting replica) rides out the gap.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] once the retry budget is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<Client, ServeError> {
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut attempt = 0_u32;
        let stream = loop {
            match connect_stream(&addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    let ServeError::Io { .. } = &e else {
                        return Err(e);
                    };
                    if attempt >= policy.budget {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(policy.delay(attempt, &mut rng));
                }
            }
        };
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            buf: Vec::new(),
            next_id: 1,
            retry: Some((policy, rng)),
        })
    }

    /// Enables reconnect-with-backoff on an existing client.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        let rng = StdRng::seed_from_u64(policy.seed);
        self.retry = Some((policy, rng));
        self
    }

    /// Sends one request and waits for its response.
    ///
    /// `fields` are the verb's body members; `id` and `verb` are filled
    /// in automatically. Returns the `result` object of a successful
    /// response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carrying the server's wire error;
    /// [`ServeError::Io`]/[`ServeError::Parse`] for transport failures.
    pub fn request(&mut self, verb: &str, fields: Vec<(String, Json)>) -> Result<Json, ServeError> {
        let mut results = self.pipeline(vec![(verb.to_owned(), fields)])?;
        results.pop().ok_or_else(|| ServeError::Io {
            detail: "server closed without responding".to_owned(),
        })?
    }

    /// Sends every request before reading any response, then returns the
    /// per-request outcomes in order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`]/[`ServeError::Parse`] for transport failures;
    /// per-request server errors come back inside the result vector.
    #[allow(clippy::type_complexity)]
    pub fn pipeline(
        &mut self,
        requests: Vec<(String, Vec<(String, Json)>)>,
    ) -> Result<Vec<Result<Json, ServeError>>, ServeError> {
        Ok(self
            .pipeline_traced(requests)?
            .into_iter()
            .map(|r| r.result)
            .collect())
    }

    /// [`Client::pipeline`], keeping each response's echoed `trace_id` so
    /// callers can correlate replies with server-side flight-recorder
    /// records. The id is `None` when the server echoed none (tracing
    /// disabled and no client-supplied `trace_id` field).
    ///
    /// # Errors
    ///
    /// As [`Client::pipeline`].
    pub fn pipeline_traced(
        &mut self,
        requests: Vec<(String, Vec<(String, Json)>)>,
    ) -> Result<Vec<TracedResponse>, ServeError> {
        let mut wire = String::new();
        let count = requests.len();
        for (verb, fields) in requests {
            let mut members = vec![
                ("id".to_owned(), Json::Num(self.next_id as f64)),
                ("verb".to_owned(), Json::str(verb)),
            ];
            self.next_id += 1;
            members.extend(fields);
            Json::Obj(members).write(&mut wire);
            wire.push('\n');
        }
        let mut attempt = 0_u32;
        let lines = loop {
            match self.exchange(&wire, count) {
                Ok(lines) => break lines,
                Err(ExchangeError::Fatal(e)) => return Err(e),
                Err(ExchangeError::Transport(e)) => {
                    let can_retry = self
                        .retry
                        .as_ref()
                        .is_some_and(|(policy, _)| attempt < policy.budget)
                        && retryable(e.kind());
                    if !can_retry {
                        return Err(e.into());
                    }
                    attempt += 1;
                    // Partial responses from the dead connection are
                    // stale; the replay reads a fresh, complete set.
                    self.buf.clear();
                    if let Some((policy, rng)) = self.retry.as_mut() {
                        std::thread::sleep(policy.delay(attempt, rng));
                    }
                    match TcpStream::connect(self.addr) {
                        Ok(stream) => {
                            stream.set_nodelay(true).map_err(ServeError::from)?;
                            self.stream = stream;
                        }
                        // A refused reconnect burns an attempt and loops:
                        // the next exchange's write fails fast and lands
                        // back here until the budget runs out.
                        Err(e) if retryable(e.kind()) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        };
        Ok(lines
            .iter()
            .map(|line| TracedResponse {
                trace_id: decode_trace_id(line),
                result: decode_response(line),
            })
            .collect())
    }

    /// One write-then-read-all exchange over the current stream.
    fn exchange(&mut self, wire: &str, count: usize) -> Result<Vec<String>, ExchangeError> {
        self.stream
            .write_all(wire.as_bytes())
            .map_err(ExchangeError::Transport)?;
        self.stream.flush().map_err(ExchangeError::Transport)?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            lines.push(self.read_line()?);
        }
        Ok(lines)
    }

    /// Reads one newline-terminated response line.
    fn read_line(&mut self) -> Result<String, ExchangeError> {
        let mut chunk = [0_u8; 8 * 1024];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                return String::from_utf8(line).map_err(|_| {
                    ExchangeError::Fatal(ServeError::Parse {
                        detail: "response line is not valid UTF-8".to_owned(),
                    })
                });
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(ExchangeError::Transport)?;
            if n == 0 {
                return Err(ExchangeError::Transport(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Connects and sets `TCP_NODELAY` (request lines are latency-sensitive).
fn connect_stream(addr: impl ToSocketAddrs) -> Result<TcpStream, ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One pipelined response plus the trace id the server echoed, if any.
#[derive(Debug)]
pub struct TracedResponse {
    /// The response envelope's `trace_id` member (16 hex digits),
    /// verbatim.
    pub trace_id: Option<String>,
    /// The decoded result, as [`Client::pipeline`] returns it.
    pub result: Result<Json, ServeError>,
}

/// Pulls the echoed `trace_id` out of a response line, if present.
fn decode_trace_id(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("trace_id")?
        .as_str()
        .map(str::to_owned)
}

/// Decodes one response line into the `result` object or a typed error.
fn decode_response(line: &str) -> Result<Json, ServeError> {
    let response = json::parse(line).map_err(|e| ServeError::Parse {
        detail: format!("bad response line: {e}"),
    })?;
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => response
            .get("result")
            .cloned()
            .ok_or_else(|| ServeError::Parse {
                detail: "ok response without `result`".to_owned(),
            }),
        Some(false) => {
            let error = response.get("error").ok_or_else(|| ServeError::Parse {
                detail: "error response without `error`".to_owned(),
            })?;
            Err(ServeError::Remote {
                code: error
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: error
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            })
        }
        None => Err(ServeError::Parse {
            detail: "response without boolean `ok`".to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_success_and_wire_errors() {
        let ok = decode_response(r#"{"id":1,"ok":true,"result":{"pong":true}}"#).unwrap();
        assert_eq!(ok.get("pong").and_then(Json::as_bool), Some(true));
        let err =
            decode_response(r#"{"id":2,"ok":false,"error":{"code":"overloaded","message":"x"}}"#)
                .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Remote { ref code, .. } if code == "overloaded"
        ));
        assert!(decode_response("garbage").is_err());
        assert!(decode_response(r#"{"id":3}"#).is_err());
    }

    #[test]
    fn trace_ids_decode_when_echoed() {
        assert_eq!(
            decode_trace_id(r#"{"id":1,"trace_id":"00000000000000ff","ok":true,"result":{}}"#)
                .as_deref(),
            Some("00000000000000ff")
        );
        assert_eq!(decode_trace_id(r#"{"id":1,"ok":true,"result":{}}"#), None);
        assert_eq!(decode_trace_id("garbage"), None);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let policy = RetryPolicy {
            budget: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            seed: 7,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        for (attempt, nominal_ms) in [(1_u32, 10.0_f64), (2, 20.0), (3, 35.0), (4, 35.0)] {
            let d = policy.delay(attempt, &mut rng).as_secs_f64() * 1e3;
            assert!(
                d >= nominal_ms * 0.5 - 1e-9 && d <= nominal_ms + 1e-9,
                "attempt {attempt}: {d}ms outside [{:.1}, {nominal_ms}]",
                nominal_ms * 0.5
            );
        }
        // Determinism: the same seed replays the same jitter sequence.
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        assert_eq!(policy.delay(2, &mut a), policy.delay(2, &mut b));
    }

    #[test]
    fn retryable_kinds_are_exactly_the_restart_signatures() {
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(retryable(kind), "{kind:?}");
        }
        assert!(!retryable(ErrorKind::PermissionDenied));
        assert!(!retryable(ErrorKind::InvalidData));
    }

    #[test]
    fn exhausted_budget_surfaces_the_connect_error() {
        // Nothing listens on a bound-then-dropped port most of the time;
        // either way the budget bounds the attempts and a typed Io error
        // (never a panic or a hang) comes back.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            budget: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            seed: 1,
        };
        match Client::connect_with_retry(addr, policy) {
            Err(ServeError::Io { .. }) => {}
            Err(other) => panic!("expected Io, got {other:?}"),
            // The OS may hand the port to someone else between bind and
            // connect; a successful connect is not a retry-logic failure.
            Ok(_) => {}
        }
    }
}
