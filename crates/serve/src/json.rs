//! A minimal JSON value type with a hand-rolled parser and renderer.
//!
//! The workspace's vendored `serde` is an offline marker stub with no
//! derive-driven serialization, so the wire layer rolls its own JSON, the
//! way `hmdiv_obs::export` already does for snapshots. Two properties
//! matter for the serve protocol and are guaranteed here:
//!
//! * **Objects preserve key order** ([`Json::Obj`] is a `Vec` of pairs, not
//!   a map). A demand profile arrives as a JSON object, and
//!   [`hmdiv_core::DemandProfile`] accumulates eq. (8) in *insertion*
//!   order — preserving wire order end to end is what makes server results
//!   bit-identical to direct in-process evaluation.
//! * **Numbers round-trip.** Finite `f64`s render via Rust's shortest
//!   round-trip `Display`, so `parse(render(x)) == x` bit-for-bit.
//!
//! The parser is a recursive-descent scanner over bytes with a nesting
//! depth limit (a hostile request must exhaust the depth budget, not the
//! stack) and byte-offset error reporting.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The member of an object, if this is an object containing `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits `u64` exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in order, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders onto `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Renders a number. Finite values use Rust's shortest round-trip `Display`
/// (so re-parsing restores the exact bits); non-finite values — which the
/// protocol never produces, since probabilities live in `[0, 1]` — degrade
/// to `null` rather than emitting invalid JSON.
fn write_number(v: f64, out: &mut String) {
    use fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Renders a string with the mandatory JSON escapes.
fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub detail: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.detail, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with a byte offset on any syntax violation, nesting
/// beyond the depth limit, or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            detail: detail.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            // `hex4` pre-increments: it expects `pos` on the
                            // `u` (or on the last digit of a previous group)
                            // and leaves it on the final digit it read.
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired escape.
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2; // onto the second `u`
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // `hex4` leaves `pos` on the last digit; the
                            // common `pos += 1` below advances past it.
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume the maximal run of unescaped bytes in one
                    // slice. A run only stops at ASCII bytes (`"`, `\`,
                    // controls), never inside a multi-byte sequence, so
                    // both ends are char boundaries and the slice is
                    // valid UTF-8 (the input arrived as a `&str`).
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads four hex digits starting after the current position; leaves
    /// `pos` on the final digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            value = (value << 4) | d;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| JsonError {
            detail: format!("invalid number `{text}`"),
            at: start,
        })?;
        if !v.is_finite() {
            return Err(JsonError {
                detail: format!("number `{text}` overflows f64"),
                at: start,
            });
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e-9",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(text).unwrap();
            let rendered = v.to_string();
            assert_eq!(parse(&rendered).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse("{\"z\":1,\"a\":2,\"m\":3}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2,\"m\":3}");
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for v in [0.18902, 0.1428, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78] {
            let mut s = String::new();
            Json::Num(v).write(&mut s);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t control\u{1} snowman\u{2603}";
        let mut s = String::new();
        write_string(original, &mut s);
        assert_eq!(parse(&s).unwrap().as_str().unwrap(), original);
        // Unicode escapes parse too, including surrogate pairs.
        assert_eq!(
            parse("\"\\u0041\\ud83d\\ude00\"")
                .unwrap()
                .as_str()
                .unwrap(),
            "A\u{1F600}"
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "[1] trailing",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.detail.contains("deep"), "{err}");
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
