//! Benchmarks of analytic model evaluation: eq. (8) system failure,
//! scenario prediction, covariance decomposition, and uncertainty
//! propagation, across class counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmdiv_core::decomposition::decompose;
use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::uncertainty::{propagate, ClassPosterior, ModelPosterior};
use hmdiv_core::{paper, ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic model with `n` classes of varied parameters.
fn synthetic_model(n: usize) -> (SequentialModel, DemandProfile) {
    let p = |v: f64| Probability::new(v).expect("valid");
    let mut params = ModelParams::builder();
    let mut profile = DemandProfile::builder();
    for i in 0..n {
        let f = i as f64 / n as f64;
        let name = format!("class{i}");
        params = params.class(
            name.as_str(),
            ClassParams::new(p(0.05 + 0.4 * f), p(0.1 + 0.3 * f), p(0.2 + 0.7 * f)),
        );
        profile = profile.class(name.as_str(), 1.0 + f);
    }
    (
        SequentialModel::new(params.build().expect("non-empty")),
        profile.build().expect("non-empty"),
    )
}

fn bench_system_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_failure_eq8");
    for n in [2usize, 8, 32, 128] {
        let (model, profile) = synthetic_model(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.system_failure(&profile).expect("covered"));
        });
    }
    group.finish();
}

fn bench_scenario_prediction(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let field = paper::field_profile().expect("paper profile");
    c.bench_function("scenario_improve_difficult_x10", |b| {
        b.iter(|| {
            Scenario::new()
                .improve_machine(ClassId::new("difficult"), 10.0)
                .predict(&model, &field)
                .expect("valid scenario")
        });
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq10_decomposition");
    for n in [2usize, 32, 128] {
        let (model, profile) = synthetic_model(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| decompose(&model, &profile).expect("covered"));
        });
    }
    group.finish();
}

fn bench_uncertainty(c: &mut Criterion) {
    let posterior = ModelPosterior::new()
        .with_class(
            "easy",
            ClassPosterior::from_counts((14, 200), (26, 186), (3, 14)).expect("valid counts"),
        )
        .with_class(
            "difficult",
            ClassPosterior::from_counts((82, 200), (47, 118), (74, 82)).expect("valid counts"),
        );
    let field = paper::field_profile().expect("paper profile");
    c.bench_function("uncertainty_propagate_1000_draws", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| propagate(&posterior, &field, 1000, &mut rng).expect("valid"));
    });
}

fn bench_aggregation(c: &mut Criterion) {
    let (model, profile) = synthetic_model(32);
    let members: Vec<ClassId> = model.params().classes().take(16).cloned().collect();
    c.bench_function("merge_16_of_32_classes", |b| {
        b.iter(|| {
            hmdiv_core::aggregation::merge_classes(&model, &profile, &members).expect("valid")
        });
    });
}

fn bench_rounds(c: &mut Criterion) {
    let (model, profile) = synthetic_model(32);
    c.bench_function("screening_rounds_32_classes_5_rounds", |b| {
        b.iter(|| hmdiv_core::rounds::screening_rounds(&model, &profile, 5, 0.8).expect("valid"));
    });
}

fn bench_interval_bounds(c: &mut Criterion) {
    let (model, profile) = synthetic_model(32);
    let im = hmdiv_core::interval::IntervalModel::from_point(&model);
    c.bench_function("interval_bounds_32_classes", |b| {
        b.iter(|| im.system_failure_bounds(&profile).expect("valid"));
    });
}

criterion_group!(
    benches,
    bench_system_failure,
    bench_scenario_prediction,
    bench_decomposition,
    bench_uncertainty,
    bench_aggregation,
    bench_rounds,
    bench_interval_bounds
);
criterion_main!(benches);
