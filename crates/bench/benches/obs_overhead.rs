//! Guard bench for the `hmdiv-obs` overhead budget: with observability
//! disabled, the instrumented hot paths must stay within 2% of their cost —
//! the disabled path is one relaxed atomic load and a branch per *run*,
//! never per sample. The enabled cost is also measured for the record
//! (`BENCH_pr2.json`); it is allowed to be visible but must stay small,
//! since recording happens per run, not per case.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::monte_carlo::monte_carlo_failure;
use hmdiv_rbd::{Block, RbdError};
use hmdiv_serve::{json, Client, Json, Server, ServerConfig};
use hmdiv_sim::engine::{SimConfig, Simulation};
use hmdiv_sim::scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MC_SAMPLES: u64 = 200_000;
const SIM_CASES: u64 = 20_000;

/// Pipelined evaluations per measured iteration of the serve group.
const SERVE_REQS: usize = 64;

fn fig2() -> Block {
    Block::series(vec![
        Block::parallel(vec![
            Block::component("Hdetect"),
            Block::component("Mdetect"),
        ]),
        Block::component("Hclassify"),
    ])
}

fn failure_of(name: &str) -> Result<Probability, RbdError> {
    Ok(Probability::clamped(match name {
        "Hdetect" => 0.2,
        "Mdetect" => 0.07,
        _ => 0.1,
    }))
}

fn mc_run() -> f64 {
    let mut rng = StdRng::seed_from_u64(42);
    monte_carlo_failure(&fig2(), failure_of, MC_SAMPLES, &mut rng)
        .expect("estimate succeeds")
        .failure
        .value()
}

/// The same sampling work as [`mc_run`], hand-rolled over the public
/// `CompiledBlock` API with no observability gate anywhere on the path —
/// the true uninstrumented baseline the <2% disabled budget is judged
/// against.
fn mc_run_direct() -> f64 {
    let block = fig2();
    let compiled = CompiledBlock::compile(&block).expect("compiles");
    let probs: Vec<f64> = compiled
        .failure_probabilities(failure_of)
        .expect("probabilities resolve")
        .iter()
        .map(|p| p.value())
        .collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut state = vec![false; compiled.component_count()];
    let mut stack = Vec::with_capacity(compiled.max_stack());
    let mut failures = 0u64;
    for _ in 0..MC_SAMPLES {
        for (slot, &q) in state.iter_mut().zip(&probs) {
            *slot = rng.gen::<f64>() >= q;
        }
        if !compiled.eval_with(&state, &mut stack) {
            failures += 1;
        }
    }
    failures as f64 / MC_SAMPLES as f64
}

fn sim_run() -> u64 {
    let world = scenario::trial_world().expect("scenario builds");
    Simulation::new(
        world,
        SimConfig {
            cases: SIM_CASES,
            seed: 7,
            threads: 4,
        },
    )
    .run()
    .expect("run succeeds")
    .total_cases()
}

fn bench_mc_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/compiled_mc");
    group.throughput(Throughput::Elements(MC_SAMPLES));
    group.bench_function("direct", |b| b.iter(|| black_box(mc_run_direct())));
    hmdiv_obs::set_enabled(false);
    group.bench_function("disabled", |b| b.iter(|| black_box(mc_run())));
    hmdiv_obs::set_enabled(true);
    group.bench_function("enabled", |b| b.iter(|| black_box(mc_run())));
    hmdiv_obs::set_enabled(false);
    group.finish();
}

fn bench_sim_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/sim_engine");
    group.throughput(Throughput::Elements(SIM_CASES));
    hmdiv_obs::set_enabled(false);
    group.bench_function("disabled", |b| b.iter(|| black_box(sim_run())));
    hmdiv_obs::set_enabled(true);
    group.bench_function("enabled", |b| b.iter(|| black_box(sim_run())));
    hmdiv_obs::set_enabled(false);
    group.finish();
}

/// Starts a server with the given trace capacity, loads the paper model,
/// and returns a connected client plus the model id.
fn serve_fixture(trace_capacity: usize) -> (Server, Client, String) {
    let server = Server::start(ServerConfig {
        trace_capacity,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let receipt = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(
                    r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                        "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
                )
                .expect("static JSON"),
            )],
        )
        .expect("load paper model");
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned();
    (server, client, model_id)
}

/// One measured iteration: `SERVE_REQS` pipelined evaluates.
fn serve_round(client: &mut Client, model_id: &str) {
    let requests = (0..SERVE_REQS)
        .map(|_| {
            (
                "evaluate".to_owned(),
                vec![
                    ("model".to_owned(), Json::str(model_id)),
                    (
                        "profile".to_owned(),
                        json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON"),
                    ),
                ],
            )
        })
        .collect();
    for outcome in client.pipeline(requests).expect("pipeline") {
        outcome.expect("evaluate");
    }
}

/// The tentpole's overhead guard on the serve path: pipelined loopback
/// evaluations against an untraced server (`trace_capacity: 0`, the
/// stage-stamping branches all dead) vs a traced one with the flight
/// recorder on. The untraced/disabled delta is covered by the <2% budget;
/// the traced cost is recorded in `BENCH_pr7.json`.
fn bench_serve_trace_overhead(c: &mut Criterion) {
    hmdiv_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_overhead/serve_trace");
    group.throughput(Throughput::Elements(SERVE_REQS as u64));
    let (server, mut client, model_id) = serve_fixture(0);
    group.bench_function("untraced", |b| {
        b.iter(|| serve_round(&mut client, &model_id));
    });
    server.shutdown();
    let (server, mut client, model_id) = serve_fixture(256);
    group.bench_function("traced", |b| {
        b.iter(|| serve_round(&mut client, &model_id));
    });
    server.shutdown();
    group.finish();
}

criterion_group!(
    benches,
    bench_mc_overhead,
    bench_sim_overhead,
    bench_serve_trace_overhead
);
criterion_main!(benches);
