//! Benchmarks of the Monte-Carlo machinery: table-driven sampling and the
//! behavioural screening engine (single- and multi-threaded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hmdiv_core::paper;
use hmdiv_sim::engine::{SimConfig, Simulation};
use hmdiv_sim::{scenario, table_driven};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table_driven(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let profile = paper::trial_profile().expect("paper profile");
    let mut group = c.benchmark_group("table_driven_sampling");
    for cases in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(cases));
        group.bench_with_input(BenchmarkId::from_parameter(cases), &cases, |b, &cases| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| table_driven::simulate(&model, &profile, cases, &mut rng).expect("valid"));
        });
    }
    group.finish();
}

fn bench_behavioural_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("behavioural_engine");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let world = scenario::trial_world().expect("trial world");
        let cases = 20_000u64;
        group.throughput(Throughput::Elements(cases));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Simulation::new(
                        world.clone(),
                        SimConfig {
                            cases,
                            seed: 3,
                            threads,
                        },
                    )
                    .run()
                    .expect("valid run")
                });
            },
        );
    }
    group.finish();
}

fn bench_single_case_screen(c: &mut Criterion) {
    let world = scenario::default_world().expect("default world");
    let mut rng = StdRng::seed_from_u64(5);
    let case = world.population.sample_cancer_case(0, &mut rng);
    c.bench_function("screen_one_cancer_case", |b| {
        b.iter(|| world.team.screen(&case, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_table_driven,
    bench_behavioural_engine,
    bench_single_case_screen
);
criterion_main!(benches);
