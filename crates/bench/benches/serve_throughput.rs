//! Loopback throughput of the `hmdiv-serve` JSON-lines server.
//!
//! Two questions, both over real TCP on 127.0.0.1:
//!
//! 1. `round_trips`: requests/second at 1, 4 and 8 concurrent
//!    connections, comparing one-request-per-round-trip clients
//!    (`unbatched`) against pipelined clients whose requests the server's
//!    micro-batching executor can coalesce (`batched`).
//! 2. `scenarios_1k`: a 1000-scenario design sweep issued as 1000
//!    synchronous round trips vs 1000 pipelined single-scenario requests
//!    vs one request carrying all 1000 scenarios. The pipelined/batched
//!    ratio is the PR-4 acceptance gate recorded in `BENCH_pr4.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hmdiv_serve::{json, Client, Json, Server, ServerConfig};

/// Requests per measured iteration of the `round_trips` group.
const ROUND_TRIP_REQS: usize = 64;

/// The paper's two-class machine parameters as a `load` body.
fn paper_classes() -> Json {
    json::parse(
        r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
            "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
    )
    .expect("static JSON")
}

/// The paper's field demand profile as a request member.
fn field_profile() -> Json {
    json::parse(r#"{"easy":0.9,"difficult":0.1}"#).expect("static JSON")
}

/// Starts a server and loads the paper model, returning its registry id.
fn start_loaded_server() -> (Server, String) {
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let receipt = client
        .request("load", vec![("classes".into(), paper_classes())])
        .expect("load paper model");
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned();
    (server, model_id)
}

/// Body of one `evaluate` request against the field profile.
fn evaluate_fields(model_id: &str) -> Vec<(String, Json)> {
    vec![
        ("model".into(), Json::str(model_id)),
        ("profile".into(), field_profile()),
    ]
}

/// A 1000-scenario sweep: machine improvement factors fanned over the
/// two classes, one scenario per element.
fn sweep_scenarios() -> Vec<Json> {
    (0..1000)
        .map(|i| {
            let class = if i % 2 == 0 { "difficult" } else { "easy" };
            let factor = 1.5 + (i / 2) as f64 * 0.01;
            json::parse(&format!(
                r#"[{{"op":"improve_machine","class":"{class}","factor":{factor}}}]"#
            ))
            .expect("static JSON")
        })
        .collect()
}

/// Body of one `scenarios` request carrying the given scenario list.
fn scenarios_fields(model_id: &str, scenarios: Vec<Json>) -> Vec<(String, Json)> {
    vec![
        ("model".into(), Json::str(model_id)),
        ("profile".into(), field_profile()),
        ("scenarios".into(), Json::Arr(scenarios)),
    ]
}

fn bench_round_trips(c: &mut Criterion) {
    let (server, model_id) = start_loaded_server();
    let addr = server.addr();
    let mut group = c.benchmark_group("serve_round_trips");
    group.throughput(Throughput::Elements(ROUND_TRIP_REQS as u64));
    for conns in [1usize, 4, 8] {
        let per_conn = ROUND_TRIP_REQS / conns;
        let mut clients: Vec<Client> = (0..conns)
            .map(|_| Client::connect(addr).expect("connect"))
            .collect();
        group.bench_with_input(BenchmarkId::new("unbatched", conns), &conns, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in clients.iter_mut() {
                        let model_id = model_id.as_str();
                        scope.spawn(move || {
                            for _ in 0..per_conn {
                                client
                                    .request("evaluate", evaluate_fields(model_id))
                                    .expect("evaluate");
                            }
                        });
                    }
                });
            });
        });
        let mut clients: Vec<Client> = (0..conns)
            .map(|_| Client::connect(addr).expect("connect"))
            .collect();
        group.bench_with_input(BenchmarkId::new("batched", conns), &conns, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in clients.iter_mut() {
                        let model_id = model_id.as_str();
                        scope.spawn(move || {
                            let requests = (0..per_conn)
                                .map(|_| ("evaluate".to_owned(), evaluate_fields(model_id)))
                                .collect();
                            for outcome in client.pipeline(requests).expect("pipeline") {
                                outcome.expect("evaluate");
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
    server.shutdown();
}

fn bench_scenarios_1k(c: &mut Criterion) {
    let (server, model_id) = start_loaded_server();
    let addr = server.addr();
    let scenarios = sweep_scenarios();
    let mut group = c.benchmark_group("serve_scenarios_1k");
    group.throughput(Throughput::Elements(scenarios.len() as u64));

    let mut client = Client::connect(addr).expect("connect");
    group.bench_function("unbatched_round_trips", |b| {
        b.iter(|| {
            for scenario in &scenarios {
                client
                    .request(
                        "scenarios",
                        scenarios_fields(&model_id, vec![scenario.clone()]),
                    )
                    .expect("scenarios");
            }
        });
    });

    let mut client = Client::connect(addr).expect("connect");
    group.bench_function("batched_pipeline", |b| {
        b.iter(|| {
            let requests = scenarios
                .iter()
                .map(|scenario| {
                    (
                        "scenarios".to_owned(),
                        scenarios_fields(&model_id, vec![scenario.clone()]),
                    )
                })
                .collect();
            for outcome in client.pipeline(requests).expect("pipeline") {
                outcome.expect("scenarios");
            }
        });
    });

    let mut client = Client::connect(addr).expect("connect");
    group.bench_function("single_bulk_request", |b| {
        b.iter(|| {
            client
                .request("scenarios", scenarios_fields(&model_id, scenarios.clone()))
                .expect("scenarios");
        });
    });

    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_round_trips, bench_scenarios_1k);
criterion_main!(benches);
