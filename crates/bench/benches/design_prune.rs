//! Pruned vs unpruned greedy improvement-budget allocation.
//!
//! Measures what the PR-10 certified pre-pruning stage buys on the
//! budget-sweep workload: `unpruned` is the original
//! [`allocate_improvement_budget`] greedy loop (every candidate patch
//! evaluated through the compiled core each round), `pruned` is
//! [`allocate_improvement_budget_pruned`], which discards candidates whose
//! closed-form benefit bound provably cannot reach the round's frontier
//! before any compiled evaluation happens. The two must agree
//! bit-for-bit — pruning is an evaluation-count optimisation, never an
//! answer change.
//!
//! Setting `HMDIV_BENCH_GUARD=1` skips the criterion groups and instead
//! runs the self-contained acceptance gate: bit-identical allocations at
//! thread counts 1, 2 and 7, plus at least
//! `HMDIV_BENCH_GUARD_MIN_SAVE` (default 0.25) of candidate evaluations
//! pruned away. `HMDIV_BENCH_GUARD_OUT=<path>` additionally writes the
//! measurements as JSON for CI artifact upload; `HMDIV_BENCH_GUARD_MS`
//! overrides the per-variant measurement window (default 2000 ms).

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};

use hmdiv_core::design::{
    allocate_improvement_budget, allocate_improvement_budget_pruned, PruneStats,
};
use hmdiv_core::{ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;

/// A synthetic model with `n` classes of varied parameters (same shape as
/// the `compiled_core` bench, kept local so the benches stay independent).
fn synthetic_model(n: usize) -> (SequentialModel, DemandProfile) {
    let p = |v: f64| Probability::new(v).expect("valid");
    let mut params = ModelParams::builder();
    let mut profile = DemandProfile::builder();
    for i in 0..n {
        let f = i as f64 / n as f64;
        let name = format!("class{i:03}");
        params = params.class(
            name.as_str(),
            ClassParams::new(p(0.05 + 0.4 * f), p(0.1 + 0.3 * f), p(0.2 + 0.7 * f)),
        );
        profile = profile.class(name.as_str(), 1.0 + f);
    }
    (
        SequentialModel::new(params.build().expect("non-empty")),
        profile.build().expect("non-empty"),
    )
}

/// The budget-sweep workload: a quarter of the class count, so later
/// rounds run with meaningfully reshaped frontiers.
fn sweep_budget(n: usize) -> usize {
    (n / 4).max(4)
}

fn bench_budget_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_sweep");
    group.sample_size(10);
    for n in [23usize, 64] {
        let (model, profile) = synthetic_model(n);
        let budget = sweep_budget(n);
        group.bench_with_input(BenchmarkId::new("unpruned", n), &n, |b, _| {
            b.iter(|| allocate_improvement_budget(&model, &profile, budget, 2.0).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &n, |b, _| {
            b.iter(|| {
                allocate_improvement_budget_pruned(&model, &profile, budget, 2.0, 1).expect("valid")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget_sweep);

/// Mean microseconds per call over a fixed wall-clock window (one warmup
/// call first). Coarser than criterion but self-contained and ratio-stable:
/// both guard variants are measured back-to-back in the same process.
fn time_per_call_us(window: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let mut calls = 0u64;
    let start = Instant::now();
    loop {
        f();
        calls += 1;
        if start.elapsed() >= window {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / calls as f64
}

fn guard_env_ms() -> u64 {
    std::env::var("HMDIV_BENCH_GUARD_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(2000)
}

fn guard_min_save() -> f64 {
    std::env::var("HMDIV_BENCH_GUARD_MIN_SAVE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0 && *v < 1.0)
        .unwrap_or(0.25)
}

/// Bit-identity first: the guard must never certify a pruning stage that
/// changed the greedy answer, at any thread count.
fn assert_identical(n: usize, budget: usize) -> PruneStats {
    let (model, profile) = synthetic_model(n);
    let reference = allocate_improvement_budget(&model, &profile, budget, 2.0).expect("valid");
    let mut stats = PruneStats::default();
    for threads in [1usize, 2, 7] {
        let (pruned, s) =
            allocate_improvement_budget_pruned(&model, &profile, budget, 2.0, threads)
                .expect("valid");
        assert_eq!(
            reference.allocation, pruned.allocation,
            "pruned allocation drifted (n={n}, threads={threads})"
        );
        assert_eq!(
            reference.before.to_bits(),
            pruned.before.to_bits(),
            "pruned `before` drifted (n={n}, threads={threads})"
        );
        assert_eq!(
            reference.after.to_bits(),
            pruned.after.to_bits(),
            "pruned `after` drifted (n={n}, threads={threads})"
        );
        assert_eq!(
            reference.model.params(),
            pruned.model.params(),
            "pruned improved model drifted (n={n}, threads={threads})"
        );
        stats = s;
    }
    stats
}

/// The CI bench guard: pruning must save `min_save` of the compiled
/// candidate evaluations on this very workload while staying bit-identical
/// to the unpruned greedy loop.
fn run_guard() {
    let window = Duration::from_millis(guard_env_ms());
    let min_save = guard_min_save();
    let mut entries = Vec::new();
    let mut worst: f64 = f64::INFINITY;
    for n in [23usize, 64] {
        let budget = sweep_budget(n);
        let stats = assert_identical(n, budget);
        let saved = stats.pruned as f64 / stats.candidates as f64;
        worst = worst.min(saved);
        let (model, profile) = synthetic_model(n);
        let unpruned_us = time_per_call_us(window, || {
            std::hint::black_box(
                allocate_improvement_budget(&model, &profile, budget, 2.0).expect("valid"),
            );
        });
        let pruned_us = time_per_call_us(window, || {
            std::hint::black_box(
                allocate_improvement_budget_pruned(&model, &profile, budget, 2.0, 1)
                    .expect("valid"),
            );
        });
        let ratio = unpruned_us / pruned_us;
        println!(
            "bench-guard budget_sweep/classes_{n}: {} of {} candidates pruned \
             ({:.1}%, min {:.1}%), unpruned {unpruned_us:.1} us, pruned {pruned_us:.1} us, \
             ratio {ratio:.2}x",
            stats.pruned,
            stats.candidates,
            saved * 100.0,
            min_save * 100.0
        );
        entries.push(format!(
            "    \"classes_{n}\": {{ \"budget\": {budget}, \"candidates\": {}, \
             \"evaluated\": {}, \"pruned\": {}, \"saved\": {saved:.4}, \
             \"unpruned_us\": {unpruned_us:.1}, \"pruned_us\": {pruned_us:.1}, \
             \"ratio\": {ratio:.2} }}",
            stats.candidates, stats.evaluated, stats.pruned,
        ));
    }
    let pass = worst >= min_save;
    if let Ok(path) = std::env::var("HMDIV_BENCH_GUARD_OUT") {
        let json = format!(
            "{{\n  \"guard\": \"pruned_vs_unpruned_budget_allocation\",\n  \
             \"bench\": \"design_prune/budget_sweep\",\n  \
             \"bit_identical_threads\": [1, 2, 7],\n  \
             \"window_ms\": {},\n  \"min_save\": {min_save},\n  \"results\": {{\n{}\n  }},\n  \
             \"pass\": {pass}\n}}\n",
            window.as_millis(),
            entries.join(",\n"),
        );
        std::fs::write(&path, json).expect("guard output path writable");
        println!("bench-guard wrote {path}");
    }
    assert!(
        pass,
        "bench-guard FAILED: pruning saved only {:.1}% of candidate evaluations \
         (required {:.1}%)",
        worst * 100.0,
        min_save * 100.0
    );
    println!(
        "bench-guard PASSED: worst save {:.1}% >= {:.1}%",
        worst * 100.0,
        min_save * 100.0
    );
}

fn main() {
    if std::env::var("HMDIV_BENCH_GUARD").is_ok_and(|v| v.trim() == "1") {
        run_guard();
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
    c.final_summary();
}
