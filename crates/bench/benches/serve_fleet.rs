//! Throughput scaling of the replicated fleet: the same loadgen sweep
//! driven through the `hmdiv-fleet` consistent-hash router at 1, 2, and
//! 4 replicas.
//!
//! Each replica is pinned to a *single* executor thread and a single
//! poller (`threads: 1, poller_threads: 1`), so adding replicas is the
//! only way the fleet gains compute — the scaling curve measures the
//! router's fan-out, not incidental intra-replica parallelism. On a
//! multi-core host the served-rate ratio at 4 replicas vs 1 approaches
//! the core count; on a single-core host the replicas time-slice one
//! CPU and the ratio stays near 1, which is why `host_parallelism` is
//! recorded alongside the curve.
//!
//! Not a criterion microbenchmark — the quantity of interest is the
//! sustained served rate per fleet size, one JSON row each. The default
//! run is smoke-sized for CI; set `HMDIV_FLEET=1` for the full
//! acceptance sweep and `HMDIV_FLEET_OUT=PATH` to write the JSON report
//! — the source of `BENCH_pr9.json`.

use std::io::Write as _;
use std::time::Duration;

use hmdiv_fleet::{Router, RouterConfig};
use hmdiv_serve::loadgen::{self, LoadgenConfig};
use hmdiv_serve::{json, Client, Json, Server, ServerConfig};

/// Starts `n` single-threaded replicas plus the router, and loads the
/// paper model through the router (a broadcast, so every replica admits
/// it under the same content id).
fn start_fleet(n: usize) -> (Vec<Server>, Router, String) {
    let replicas: Vec<Server> = (0..n)
        .map(|_| {
            Server::start(ServerConfig {
                threads: 1,
                poller_threads: 1,
                queue_capacity: 4096,
                ..ServerConfig::default()
            })
            .expect("bind replica")
        })
        .collect();
    let router = Router::start(RouterConfig {
        backends: replicas.iter().map(Server::addr).collect(),
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.addr()).expect("connect router");
    let receipt = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(
                    r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                        "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
                )
                .expect("static JSON"),
            )],
        )
        .expect("broadcast load");
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned();
    (replicas, router, model_id)
}

fn main() {
    let full = std::env::var("HMDIV_FLEET").is_ok_and(|v| v == "1");
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let (connections, requests_per_connection) = if full { (64, 256) } else { (16, 16) };

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for replicas in [1_usize, 2, 4] {
        let (servers, router, model_id) = start_fleet(replicas);
        let request_line = format!(
            "{{\"id\":0,\"verb\":\"evaluate\",\"model\":\"{model_id}\",\
             \"profile\":{{\"easy\":0.9,\"difficult\":0.1}},\"deadline_ms\":10000}}\n"
        );
        let report = loadgen::run(&LoadgenConfig {
            targets: vec![router.addr()],
            connections,
            pipeline_depth: 8,
            requests_per_connection,
            request_line,
            timeout: Duration::from_secs(300),
        })
        .expect("loadgen run");
        assert_eq!(
            report.replies(),
            report.sent,
            "every request must be accounted for"
        );
        assert_eq!(report.errors, 0, "a healthy fleet sheds, never errors");
        router.shutdown();
        for server in servers {
            server.shutdown();
        }
        let secs = report.elapsed_ns as f64 / 1e9;
        #[allow(clippy::cast_precision_loss)]
        let rate = report.served as f64 / secs;
        rates.push(rate);
        let row = format!(
            "{{\"replicas\": {replicas}, \"connections\": {connections}, \
             \"sent\": {}, \"served\": {}, \"shed_overloaded\": {}, \
             \"shed_deadline\": {}, \"elapsed_s\": {secs:.3}, \"served_per_s\": {rate:.0}}}",
            report.sent, report.served, report.shed_overloaded, report.shed_deadline,
        );
        println!("serve_fleet: {row}");
        rows.push(row);
    }

    let scaling_4v1 = if rates[0] > 0.0 {
        rates[2] / rates[0]
    } else {
        0.0
    };
    println!("serve_fleet: host_parallelism={host_parallelism} scaling_4v1={scaling_4v1:.2}");
    let report = format!(
        "{{\"host_parallelism\": {host_parallelism},\n \"scaling_4v1\": {scaling_4v1:.2},\n \
         \"curve\": [\n  {}\n]}}\n",
        rows.join(",\n  ")
    );
    if let Ok(path) = std::env::var("HMDIV_FLEET_OUT") {
        let mut file = std::fs::File::create(&path).expect("open HMDIV_FLEET_OUT");
        file.write_all(report.as_bytes()).expect("write curve");
        println!("serve_fleet: curve written to {path}");
    }
}
