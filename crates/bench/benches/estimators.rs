//! Benchmarks of the statistics substrate: confidence intervals, beta
//! quantiles, bootstrap resampling, and streaming accumulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmdiv_prob::bayes::Beta;
use hmdiv_prob::bootstrap::Bootstrap;
use hmdiv_prob::estimate::{BinomialEstimate, CiMethod};
use hmdiv_prob::seq::{RunningCovariance, RunningMoments};
use hmdiv_prob::special::{beta_quantile, normal_quantile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ci_methods(c: &mut Criterion) {
    let est = BinomialEstimate::new(82, 200).expect("valid counts");
    let mut group = c.benchmark_group("binomial_ci");
    for method in [
        CiMethod::Wald,
        CiMethod::Wilson,
        CiMethod::ClopperPearson,
        CiMethod::AgrestiCoull,
        CiMethod::Jeffreys,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method}")),
            &method,
            |b, &method| {
                b.iter(|| est.interval(method, 0.95).expect("valid level"));
            },
        );
    }
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("beta_quantile", |b| {
        b.iter(|| beta_quantile(82.5, 118.5, 0.975));
    });
    c.bench_function("normal_quantile", |b| {
        b.iter(|| normal_quantile(0.975));
    });
}

fn bench_beta_sampling(c: &mut Criterion) {
    let beta = Beta::new(82.5, 118.5).expect("valid shapes");
    c.bench_function("beta_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| beta.sample(&mut rng));
    });
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<f64> = (0..500)
        .map(|_| f64::from(rand::Rng::gen::<f64>(&mut rng) < 0.3))
        .collect();
    c.bench_function("bootstrap_500x200", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            Bootstrap::run(&data, 200, &mut rng, |xs| {
                xs.iter().sum::<f64>() / xs.len() as f64
            })
            .expect("valid")
        });
    });
}

fn bench_streaming_accumulators(c: &mut Criterion) {
    let data: Vec<(f64, f64)> = (0..10_000)
        .map(|i| ((i as f64).sin(), (i as f64 * 0.7).cos()))
        .collect();
    c.bench_function("running_moments_10k", |b| {
        b.iter(|| {
            let mut acc = RunningMoments::new();
            for &(x, _) in &data {
                acc.push(x);
            }
            acc.sample_variance()
        });
    });
    c.bench_function("running_covariance_10k", |b| {
        b.iter(|| {
            let mut acc = RunningCovariance::new();
            for &(x, y) in &data {
                acc.push(x, y);
            }
            acc.sample_covariance()
        });
    });
}

criterion_group!(
    benches,
    bench_ci_methods,
    bench_special_functions,
    bench_beta_sampling,
    bench_bootstrap,
    bench_streaming_accumulators
);
criterion_main!(benches);
