//! Concurrency scaling of the event-driven serve core: shed-vs-served
//! curves under hundreds-to-thousands of concurrent keep-alive
//! connections, driven by the crate's own single-threaded
//! [`hmdiv_serve::loadgen`] event loop against a fixed poller pool.
//!
//! Not a criterion microbenchmark — the quantity of interest is the
//! admission ledger (served / shed-overloaded / shed-deadline and the
//! sustained request rate) at each concurrency step, so this harness
//! prints one JSON report per step instead of timing distributions.
//!
//! Default run (what `cargo bench` / `cargo bench -- --test` executes) is
//! a smoke-sized sweep so CI stays fast. Set `HMDIV_LOADGEN=1` for the
//! full curve (1024 connections on an 8-thread-or-fewer poller pool, the
//! PR-8 acceptance run) and `HMDIV_LOADGEN_OUT=PATH` to also write the
//! JSON report to a file — the source of `BENCH_pr8.json`.

use std::io::Write as _;
use std::time::Duration;

use hmdiv_serve::loadgen::{self, LoadgenConfig};
use hmdiv_serve::{json, Client, Json, Server, ServerConfig};

/// One concurrency step of the sweep.
struct Step {
    connections: usize,
    pipeline_depth: usize,
    requests_per_connection: usize,
}

/// Starts a server sized like the acceptance run and loads the paper
/// model, returning its registry id.
fn start_loaded_server(queue_capacity: usize, pollers: usize) -> (Server, String) {
    let server = Server::start(ServerConfig {
        queue_capacity,
        poller_threads: pollers,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let receipt = client
        .request(
            "load",
            vec![(
                "classes".into(),
                json::parse(
                    r#"{"easy":      {"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
                        "difficult": {"p_mf":0.41,"p_hf_given_ms":0.40,"p_hf_given_mf":0.90}}"#,
                )
                .expect("static JSON"),
            )],
        )
        .expect("load paper model");
    let model_id = receipt
        .get("model_id")
        .and_then(Json::as_str)
        .expect("receipt carries model_id")
        .to_owned();
    (server, model_id)
}

fn main() {
    let full = std::env::var("HMDIV_LOADGEN").is_ok_and(|v| v == "1");
    let pollers = 8_usize.min(
        std::thread::available_parallelism()
            .map_or(4, usize::from)
            .max(2),
    );
    let steps: Vec<Step> = if full {
        // The acceptance curve: hold >=1000 keep-alive sockets on <=8
        // poller threads and sweep pipeline depth so load rises past the
        // admission capacity, exposing the shed knee.
        [1, 2, 4, 8]
            .into_iter()
            .map(|depth| Step {
                connections: 1024,
                pipeline_depth: depth,
                requests_per_connection: 16,
            })
            .collect()
    } else {
        // Smoke-sized: same machinery, two quick steps.
        vec![
            Step {
                connections: 128,
                pipeline_depth: 1,
                requests_per_connection: 4,
            },
            Step {
                connections: 128,
                pipeline_depth: 4,
                requests_per_connection: 8,
            },
        ]
    };

    let (server, model_id) = start_loaded_server(1024, pollers);
    let request_line = format!(
        "{{\"id\":0,\"verb\":\"evaluate\",\"model\":\"{model_id}\",\
         \"profile\":{{\"easy\":0.9,\"difficult\":0.1}},\"deadline_ms\":2000}}\n"
    );

    let mut rows = Vec::new();
    for step in &steps {
        let report = loadgen::run(&LoadgenConfig {
            targets: vec![server.addr()],
            connections: step.connections,
            pipeline_depth: step.pipeline_depth,
            requests_per_connection: step.requests_per_connection,
            request_line: request_line.clone(),
            timeout: Duration::from_secs(120),
        })
        .expect("loadgen run");
        assert_eq!(
            report.replies(),
            report.sent,
            "every request must be accounted for"
        );
        let secs = report.elapsed_ns as f64 / 1e9;
        #[allow(clippy::cast_precision_loss)]
        let rate = report.replies() as f64 / secs;
        let row = format!(
            "{{\"connections\": {}, \"pipeline_depth\": {}, \"pollers\": {}, \
             \"sent\": {}, \"served\": {}, \"shed_overloaded\": {}, \
             \"shed_deadline\": {}, \"errors\": {}, \"completed_connections\": {}, \
             \"elapsed_s\": {:.3}, \"replies_per_s\": {:.0}}}",
            report.connections,
            step.pipeline_depth,
            pollers,
            report.sent,
            report.served,
            report.shed_overloaded,
            report.shed_deadline,
            report.errors,
            report.completed_connections,
            secs,
            rate,
        );
        println!("serve_loadgen: {row}");
        rows.push(row);
    }
    server.shutdown();

    let report = format!("{{\"curve\": [\n  {}\n]}}\n", rows.join(",\n  "));
    if let Ok(path) = std::env::var("HMDIV_LOADGEN_OUT") {
        let mut file = std::fs::File::create(&path).expect("open HMDIV_LOADGEN_OUT");
        file.write_all(report.as_bytes()).expect("write curve");
        println!("serve_loadgen: curve written to {path}");
    }
}
