//! One benchmark per paper artefact: regenerating each table and figure.
//!
//! These measure the cost of the exact computation behind each published
//! number — they are the `cargo bench` face of the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use hmdiv_bench::{fig4_series, table2_rows, table3_rows};
use hmdiv_core::decomposition::decompose;
use hmdiv_core::multi_reader::{CombinationRule, ReaderSkill, TeamModel};
use hmdiv_core::{paper, ClassId};
use hmdiv_prob::Probability;
use hmdiv_sim::table_driven;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_parameters", |b| {
        b.iter(|| {
            let model = paper::example_model().expect("paper model");
            let trial = paper::trial_profile().expect("profile");
            let field = paper::field_profile().expect("profile");
            (model, trial, field)
        });
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_failure_probabilities", |b| {
        b.iter(|| table2_rows().expect("valid"));
    });
}

fn bench_table2_monte_carlo(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let trial = paper::trial_profile().expect("profile");
    let mut group = c.benchmark_group("table2_monte_carlo_cross_check");
    group.sample_size(10);
    group.bench_function("100k_cases", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| table_driven::cross_check(&model, &trial, 100_000, &mut rng).expect("valid"));
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_improvement_scenarios", |b| {
        b.iter(|| table3_rows().expect("valid"));
    });
}

fn bench_fig4(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let difficult = ClassId::new("difficult");
    c.bench_function("fig4_sweep_101_points", |b| {
        b.iter(|| fig4_series(&model, &difficult, 101).expect("valid"));
    });
}

fn bench_eq10(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let trial = paper::trial_profile().expect("profile");
    c.bench_function("eq10_decomposition", |b| {
        b.iter(|| decompose(&model, &trial).expect("valid"));
    });
}

fn bench_multireader_table(c: &mut Criterion) {
    let p = |v: f64| Probability::new(v).expect("valid");
    let expert = ReaderSkill::builder()
        .class("easy", p(0.14), p(0.18))
        .class("difficult", p(0.4), p(0.9))
        .build()
        .expect("valid skill");
    let team = TeamModel::builder()
        .machine("easy", p(0.07))
        .machine("difficult", p(0.41))
        .reader(expert.clone())
        .reader(expert.clone())
        .rule(CombinationRule::Arbitrated { arbiter: expert })
        .build()
        .expect("valid team");
    let field = paper::field_profile().expect("profile");
    c.bench_function("multireader_arbitrated_field", |b| {
        b.iter(|| team.system_failure(&field).expect("covered"));
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table2_monte_carlo,
    bench_table3,
    bench_fig4,
    bench_eq10,
    bench_multireader_table
);
criterion_main!(benches);
