//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * alias-method categorical sampling vs a linear-scan baseline;
//! * exact factoring vs Monte-Carlo estimation on shared-component RBDs;
//! * Wilson vs Clopper–Pearson in the trial estimation hot loop;
//! * analytic eq. (8) vs table-driven Monte-Carlo for a table-2-sized
//!   question (why the library computes instead of simulating when it can).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmdiv_core::paper;
use hmdiv_prob::estimate::{BinomialEstimate, CiMethod};
use hmdiv_prob::Categorical;
use hmdiv_rbd::monte_carlo::monte_carlo_failure;
use hmdiv_rbd::reliability::system_failure;
use hmdiv_rbd::{Block, RbdError};
use hmdiv_sim::table_driven;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_alias_vs_linear_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("categorical_sampling");
    for n in [4usize, 64, 1024] {
        let weights: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0 + (i % 7) as f64)).collect();
        let dist = Categorical::new(weights.clone()).expect("valid");
        // Warm the alias table outside the measurement.
        let mut rng = StdRng::seed_from_u64(1);
        let _ = dist.sample_index(&mut rng);
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| dist.sample_index(&mut rng));
        });
        // Linear-scan baseline over the same weights.
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut u = rng.gen::<f64>() * total;
                let mut idx = 0;
                for (i, (_, w)) in weights.iter().enumerate() {
                    if u < *w {
                        idx = i;
                        break;
                    }
                    u -= w;
                }
                idx
            });
        });
    }
    group.finish();
}

fn shared_ladder(n: usize) -> Block {
    let mut stages = Vec::with_capacity(n);
    for i in 0..n {
        let a = Block::component(format!("a{i}"));
        let b = if i > 0 {
            Block::component(format!("a{}", i - 1))
        } else {
            Block::component("b0")
        };
        stages.push(Block::parallel(vec![a, b]));
    }
    Block::series(stages)
}

fn fail_of(name: &str) -> Result<hmdiv_prob::Probability, RbdError> {
    let h: u32 = name
        .bytes()
        .fold(3u32, |acc, b| acc.wrapping_mul(37).wrapping_add(b.into()));
    Ok(hmdiv_prob::Probability::clamped(
        0.05 + f64::from(h % 60) / 150.0,
    ))
}

fn bench_exact_vs_monte_carlo_rbd(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbd_exact_vs_monte_carlo");
    group.sample_size(20);
    let sys = shared_ladder(10);
    group.bench_function("exact_factoring", |b| {
        b.iter(|| system_failure(&sys, fail_of).expect("valid"));
    });
    group.bench_function("monte_carlo_10k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| monte_carlo_failure(&sys, fail_of, 10_000, &mut rng).expect("valid"));
    });
    group.finish();
}

fn bench_ci_method_in_estimation_loop(c: &mut Criterion) {
    // The trial harness computes ~3 intervals per class per estimate; this
    // shows why Wilson is the default over the exact method.
    let counts: Vec<BinomialEstimate> = (1..=50u64)
        .map(|k| BinomialEstimate::new(k, 100 + k).expect("valid"))
        .collect();
    let mut group = c.benchmark_group("estimation_loop_50_classes");
    for method in [CiMethod::Wilson, CiMethod::ClopperPearson] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method}")),
            &method,
            |b, &method| {
                b.iter(|| {
                    counts
                        .iter()
                        .map(|e| e.interval(method, 0.95).expect("valid").width())
                        .sum::<f64>()
                });
            },
        );
    }
    group.finish();
}

fn bench_analytic_vs_simulation_for_table2(c: &mut Criterion) {
    let model = paper::example_model().expect("paper model");
    let trial = paper::trial_profile().expect("profile");
    let mut group = c.benchmark_group("table2_analytic_vs_simulated");
    group.sample_size(20);
    group.bench_function("analytic_eq8", |b| {
        b.iter(|| model.system_failure(&trial).expect("covered"));
    });
    group.bench_function("monte_carlo_30k_cases", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| table_driven::cross_check(&model, &trial, 30_000, &mut rng).expect("valid"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alias_vs_linear_sampling,
    bench_exact_vs_monte_carlo_rbd,
    bench_ci_method_in_estimation_loop,
    bench_analytic_vs_simulation_for_table2
);
criterion_main!(benches);
