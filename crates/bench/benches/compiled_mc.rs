//! Benchmarks of the compiled structure-function pipeline against the
//! interpreted per-sample baseline it replaced, plus thread sweeps of the
//! deterministic parallel entry points.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hmdiv_prob::bootstrap::Bootstrap;
use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::monte_carlo::{monte_carlo_failure, monte_carlo_failure_par};
use hmdiv_rbd::structure::works;
use hmdiv_rbd::{Block, RbdError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-of-3 voting layer feeding the paper's Fig. 2 shape: 9 components,
/// representative of the diagrams the Monte-Carlo path exists for.
fn test_system() -> Block {
    let stage = |i: usize| {
        Block::parallel(vec![
            Block::component(format!("h{i}")),
            Block::component(format!("m{i}")),
        ])
    };
    Block::series(vec![
        Block::k_of_n(2, vec![stage(0), stage(1), stage(2)]),
        Block::component("classify"),
        Block::parallel(vec![Block::component("h0"), Block::component("arbiter")]),
    ])
}

fn failure_of(name: &str) -> Result<Probability, RbdError> {
    let h: u32 = name
        .bytes()
        .fold(17u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b.into()));
    Ok(Probability::clamped(0.05 + f64::from(h % 90) / 200.0))
}

/// The pre-compilation sampler: per-sample `BTreeMap` state and the
/// recursive structure function. Kept inline as the regression baseline.
fn interpreted_failure_count(
    block: &Block,
    probs: &BTreeMap<String, f64>,
    samples: u64,
    rng: &mut StdRng,
) -> u64 {
    let names = block.component_names();
    let mut failures = 0u64;
    for _ in 0..samples {
        let mut state: BTreeMap<&str, bool> = BTreeMap::new();
        for &name in &names {
            state.insert(name, rng.gen::<f64>() >= probs[name]);
        }
        if !works(block, &state).expect("valid state") {
            failures += 1;
        }
    }
    failures
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let sys = test_system();
    let probs: BTreeMap<String, f64> = sys
        .component_names()
        .iter()
        .map(|&n| {
            (
                n.to_string(),
                failure_of(n).expect("named component").value(),
            )
        })
        .collect();
    let samples = 100_000u64;
    let mut group = c.benchmark_group("mc_sampler");
    group.throughput(Throughput::Elements(samples));
    group.bench_function("interpreted_btreemap", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| interpreted_failure_count(&sys, &probs, samples, &mut rng));
    });
    group.bench_function("compiled_postfix", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| monte_carlo_failure(&sys, failure_of, samples, &mut rng).expect("valid"));
    });
    group.finish();
}

fn bench_compile_once(c: &mut Criterion) {
    let sys = test_system();
    c.bench_function("compile_block", |b| {
        b.iter(|| CompiledBlock::compile(&sys).expect("valid"));
    });
}

fn bench_parallel_thread_sweep(c: &mut Criterion) {
    let sys = test_system();
    let samples = 1_000_000u64;
    let mut group = c.benchmark_group("mc_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(samples));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    monte_carlo_failure_par(&sys, failure_of, samples, 42, threads).expect("valid")
                });
            },
        );
    }
    group.finish();
}

fn bench_bootstrap_parallel(c: &mut Criterion) {
    let data: Vec<f64> = (0..2_000).map(|i| f64::from(i % 13)).collect();
    let stat = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| Bootstrap::run(&data, 2_000, &mut rng, stat).expect("valid"));
    });
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| Bootstrap::run_par(&data, 2_000, 3, threads, stat).expect("valid"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compiled_vs_interpreted,
    bench_compile_once,
    bench_parallel_thread_sweep,
    bench_bootstrap_parallel
);
criterion_main!(benches);
