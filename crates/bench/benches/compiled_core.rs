//! Map-based vs compiled vs lane-blocked model evaluation.
//!
//! Measures what the PR-3 compiled layer bought — a single eq. (8)
//! evaluation (map walk vs dense indexed sum) and a 1000-scenario design
//! sweep (clone-a-`BTreeMap`-model per scenario vs batch patch/restore over
//! one scratch buffer) — and what the PR-6 lane-blocked kernels buy on top:
//! `compiled_scalar` is the PR-3 one-scenario-at-a-time inner loop
//! (reproduced here via the public [`CompiledModel::apply_scenario_into`]),
//! `compiled` is the lane-blocked [`CompiledModel::evaluate_scenarios`]
//! batch. The sweep ratios are the acceptance gates recorded in
//! `BENCH_pr6.json`.
//!
//! Setting `HMDIV_BENCH_GUARD=1` skips the criterion groups and instead
//! runs a self-contained measured comparison of the scalar-compiled and
//! lane-blocked sweeps on the same process, failing (exit 1) if the
//! lane-blocked path is not at least `HMDIV_BENCH_GUARD_MIN_RATIO` (default
//! 1.5) times faster. `HMDIV_BENCH_GUARD_OUT=<path>` additionally writes
//! the guard measurements as JSON for CI artifact upload;
//! `HMDIV_BENCH_GUARD_MS` overrides the per-variant measurement window
//! (default 2000 ms).

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};

use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{
    ClassId, ClassParams, CompiledModel, CompiledProfile, DemandProfile, ModelParams,
    SequentialModel,
};
use hmdiv_prob::Probability;

/// A synthetic model with `n` classes of varied parameters (same shape as
/// `model_eval.rs`, kept local so the two benches stay independent).
fn synthetic_model(n: usize) -> (SequentialModel, DemandProfile) {
    let p = |v: f64| Probability::new(v).expect("valid");
    let mut params = ModelParams::builder();
    let mut profile = DemandProfile::builder();
    for i in 0..n {
        let f = i as f64 / n as f64;
        let name = format!("class{i}");
        params = params.class(
            name.as_str(),
            ClassParams::new(p(0.05 + 0.4 * f), p(0.1 + 0.3 * f), p(0.2 + 0.7 * f)),
        );
        profile = profile.class(name.as_str(), 1.0 + f);
    }
    (
        SequentialModel::new(params.build().expect("non-empty")),
        profile.build().expect("non-empty"),
    )
}

/// The pre-PR-3 eq. (8): walk the profile, look each class up in the
/// `BTreeMap` parameter table.
fn map_system_failure(model: &SequentialModel, profile: &DemandProfile) -> Probability {
    let mut total = 0.0;
    for (class, weight) in profile.iter() {
        let cp = model.params().class(class).expect("covered");
        total += weight.value() * cp.class_failure().value();
    }
    Probability::clamped(total)
}

/// A 1000-scenario design sweep: improvement factors fanned over classes.
fn sweep_scenarios(n_classes: usize) -> Vec<Scenario> {
    (0..1000)
        .map(|i| {
            let class = ClassId::new(format!("class{}", i % n_classes));
            let factor = 1.5 + (i / n_classes) as f64 * 0.05;
            Scenario::new().improve_machine(class, factor)
        })
        .collect()
}

/// Eq. (8) over a patched scratch table — the PR-3 scalar inner loop's
/// evaluation half (one multiply-add per profile entry, no lanes).
fn scalar_failure_over(scratch: &[ClassParams], bound: &CompiledProfile) -> Probability {
    let mut total = 0.0;
    for (idx, w) in bound.iter() {
        total += w * scratch[idx as usize].class_failure().value();
    }
    Probability::clamped(total)
}

/// The PR-3 compiled sweep: apply each scenario to the dense scratch table
/// and evaluate it alone — no lane blocking, no multi-patch fusion.
fn scalar_compiled_sweep(
    compiled: &CompiledModel,
    bound: &CompiledProfile,
    scenarios: &[Scenario],
    scratch: &mut Vec<ClassParams>,
) -> Vec<Probability> {
    let mut out = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        compiled
            .apply_scenario_into(scenario, scratch)
            .expect("valid");
        out.push(scalar_failure_over(scratch, bound));
    }
    out
}

fn bench_single_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_eval");
    for n in [8usize, 32, 128] {
        let (model, profile) = synthetic_model(n);
        group.bench_with_input(BenchmarkId::new("map", n), &n, |b, _| {
            b.iter(|| map_system_failure(&model, &profile));
        });
        let compiled = model.compiled().clone();
        let bound = compiled.bind_profile(&profile).expect("covered");
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| compiled.system_failure(&bound));
        });
    }
    group.finish();
}

fn bench_scenario_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep_1k");
    for n in [8usize, 32] {
        let (model, profile) = synthetic_model(n);
        let scenarios = sweep_scenarios(n);
        group.bench_with_input(BenchmarkId::new("map", n), &n, |b, _| {
            b.iter(|| {
                scenarios
                    .iter()
                    .map(|s| {
                        let applied = s.apply(&model).expect("valid");
                        map_system_failure(&applied, &profile)
                    })
                    .collect::<Vec<_>>()
            });
        });
        let compiled = model.compiled().clone();
        let bound = compiled.bind_profile(&profile).expect("covered");
        let mut scratch: Vec<ClassParams> = Vec::new();
        group.bench_with_input(BenchmarkId::new("compiled_scalar", n), &n, |b, _| {
            b.iter(|| scalar_compiled_sweep(&compiled, &bound, &scenarios, &mut scratch));
        });
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                compiled
                    .evaluate_scenarios(&scenarios, &bound)
                    .expect("valid")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_eval, bench_scenario_sweep);

/// Mean microseconds per call over a fixed wall-clock window (one warmup
/// call first). Coarser than criterion but self-contained and ratio-stable:
/// both guard variants are measured back-to-back in the same process.
fn time_per_call_us(window: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let mut calls = 0u64;
    let start = Instant::now();
    loop {
        f();
        calls += 1;
        if start.elapsed() >= window {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / calls as f64
}

fn guard_env_ms() -> u64 {
    std::env::var("HMDIV_BENCH_GUARD_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(2000)
}

fn guard_min_ratio() -> f64 {
    std::env::var("HMDIV_BENCH_GUARD_MIN_RATIO")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(1.5)
}

/// The CI bench guard: lane-blocked sweep must beat the scalar compiled
/// sweep by `min_ratio` on this very machine, same process, same inputs.
fn run_guard() {
    let window = Duration::from_millis(guard_env_ms());
    let min_ratio = guard_min_ratio();
    let mut entries = Vec::new();
    let mut worst: f64 = f64::INFINITY;
    for n in [8usize, 32] {
        let (model, profile) = synthetic_model(n);
        let scenarios = sweep_scenarios(n);
        let compiled = model.compiled().clone();
        let bound = compiled.bind_profile(&profile).expect("covered");
        // Equal outputs first: the guard must never certify a kernel that
        // drifted from the scalar path.
        let mut scratch: Vec<ClassParams> = Vec::new();
        let scalar_out = scalar_compiled_sweep(&compiled, &bound, &scenarios, &mut scratch);
        let lane_out = compiled
            .evaluate_scenarios(&scenarios, &bound)
            .expect("valid");
        assert_eq!(scalar_out.len(), lane_out.len());
        for (i, (s, l)) in scalar_out.iter().zip(&lane_out).enumerate() {
            assert_eq!(
                s.value().to_bits(),
                l.value().to_bits(),
                "lane kernel drifted from scalar at scenario {i} (n={n})"
            );
        }
        let scalar_us = time_per_call_us(window, || {
            std::hint::black_box(scalar_compiled_sweep(
                &compiled,
                &bound,
                &scenarios,
                &mut scratch,
            ));
        });
        let lane_us = time_per_call_us(window, || {
            std::hint::black_box(
                compiled
                    .evaluate_scenarios(&scenarios, &bound)
                    .expect("valid"),
            );
        });
        let ratio = scalar_us / lane_us;
        worst = worst.min(ratio);
        println!(
            "bench-guard scenario_sweep_1k/classes_{n}: scalar {scalar_us:.1} us, \
             lane-blocked {lane_us:.1} us, ratio {ratio:.2}x (min {min_ratio:.2}x)"
        );
        entries.push(format!(
            "    \"classes_{n}\": {{ \"scalar_us\": {scalar_us:.1}, \
             \"lane_blocked_us\": {lane_us:.1}, \"ratio\": {ratio:.2} }}"
        ));
    }
    let pass = worst >= min_ratio;
    if let Ok(path) = std::env::var("HMDIV_BENCH_GUARD_OUT") {
        let json = format!(
            "{{\n  \"guard\": \"lane_blocked_vs_scalar_compiled\",\n  \
             \"bench\": \"compiled_core/scenario_sweep_1k\",\n  \
             \"window_ms\": {},\n  \"min_ratio\": {min_ratio},\n  \"results\": {{\n{}\n  }},\n  \
             \"pass\": {pass}\n}}\n",
            window.as_millis(),
            entries.join(",\n"),
        );
        std::fs::write(&path, json).expect("guard output path writable");
        println!("bench-guard wrote {path}");
    }
    assert!(
        pass,
        "bench-guard FAILED: lane-blocked sweep only {worst:.2}x over the scalar \
         compiled path (required {min_ratio:.2}x)"
    );
    println!("bench-guard PASSED: worst ratio {worst:.2}x >= {min_ratio:.2}x");
}

fn main() {
    if std::env::var("HMDIV_BENCH_GUARD").is_ok_and(|v| v.trim() == "1") {
        run_guard();
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
    c.final_summary();
}
