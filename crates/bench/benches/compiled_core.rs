//! Map-based vs compiled model evaluation.
//!
//! Measures what the PR-3 compiled layer buys: a single eq. (8) evaluation
//! (map walk vs dense indexed sum) and a 1000-scenario design sweep
//! (clone-a-`BTreeMap`-model per scenario vs batch patch/restore over one
//! scratch buffer). The sweep ratio is the acceptance gate recorded in
//! `BENCH_pr3.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;

/// A synthetic model with `n` classes of varied parameters (same shape as
/// `model_eval.rs`, kept local so the two benches stay independent).
fn synthetic_model(n: usize) -> (SequentialModel, DemandProfile) {
    let p = |v: f64| Probability::new(v).expect("valid");
    let mut params = ModelParams::builder();
    let mut profile = DemandProfile::builder();
    for i in 0..n {
        let f = i as f64 / n as f64;
        let name = format!("class{i}");
        params = params.class(
            name.as_str(),
            ClassParams::new(p(0.05 + 0.4 * f), p(0.1 + 0.3 * f), p(0.2 + 0.7 * f)),
        );
        profile = profile.class(name.as_str(), 1.0 + f);
    }
    (
        SequentialModel::new(params.build().expect("non-empty")),
        profile.build().expect("non-empty"),
    )
}

/// The pre-PR-3 eq. (8): walk the profile, look each class up in the
/// `BTreeMap` parameter table.
fn map_system_failure(model: &SequentialModel, profile: &DemandProfile) -> Probability {
    let mut total = 0.0;
    for (class, weight) in profile.iter() {
        let cp = model.params().class(class).expect("covered");
        total += weight.value() * cp.class_failure().value();
    }
    Probability::clamped(total)
}

/// A 1000-scenario design sweep: improvement factors fanned over classes.
fn sweep_scenarios(n_classes: usize) -> Vec<Scenario> {
    (0..1000)
        .map(|i| {
            let class = ClassId::new(format!("class{}", i % n_classes));
            let factor = 1.5 + (i / n_classes) as f64 * 0.05;
            Scenario::new().improve_machine(class, factor)
        })
        .collect()
}

fn bench_single_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_eval");
    for n in [8usize, 32, 128] {
        let (model, profile) = synthetic_model(n);
        group.bench_with_input(BenchmarkId::new("map", n), &n, |b, _| {
            b.iter(|| map_system_failure(&model, &profile));
        });
        let compiled = model.compiled().clone();
        let bound = compiled.bind_profile(&profile).expect("covered");
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| compiled.system_failure(&bound));
        });
    }
    group.finish();
}

fn bench_scenario_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep_1k");
    for n in [8usize, 32] {
        let (model, profile) = synthetic_model(n);
        let scenarios = sweep_scenarios(n);
        group.bench_with_input(BenchmarkId::new("map", n), &n, |b, _| {
            b.iter(|| {
                scenarios
                    .iter()
                    .map(|s| {
                        let applied = s.apply(&model).expect("valid");
                        map_system_failure(&applied, &profile)
                    })
                    .collect::<Vec<_>>()
            });
        });
        let compiled = model.compiled().clone();
        let bound = compiled.bind_profile(&profile).expect("covered");
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                compiled
                    .evaluate_scenarios(&scenarios, &bound)
                    .expect("valid")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_eval, bench_scenario_sweep);
criterion_main!(benches);
