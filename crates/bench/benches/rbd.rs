//! Benchmarks of the reliability-block-diagram substrate: path/cut set
//! extraction, exact evaluation with shared components, and importance
//! ranking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmdiv_prob::Probability;
use hmdiv_rbd::importance::rank_by_birnbaum;
use hmdiv_rbd::paths::{minimal_cut_sets, minimal_path_sets};
use hmdiv_rbd::reliability::system_failure;
use hmdiv_rbd::{Block, RbdError};

/// A ladder of `n` parallel pairs in series, with one shared component per
/// rung pair boundary — stresses both path expansion and factoring.
fn ladder(n: usize, shared: bool) -> Block {
    let mut stages = Vec::with_capacity(n);
    for i in 0..n {
        let a = Block::component(format!("a{i}"));
        let b = if shared && i > 0 {
            Block::component(format!("a{}", i - 1))
        } else {
            Block::component(format!("b{i}"))
        };
        stages.push(Block::parallel(vec![a, b]));
    }
    Block::series(stages)
}

fn failure_of(name: &str) -> Result<Probability, RbdError> {
    // Stable pseudo-probability from the name hash.
    let h: u32 = name
        .bytes()
        .fold(17u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b.into()));
    Ok(Probability::clamped(0.05 + f64::from(h % 90) / 200.0))
}

fn bench_path_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimal_path_sets");
    for n in [4usize, 8, 12] {
        let sys = ladder(n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| minimal_path_sets(&sys).expect("valid"));
        });
    }
    group.finish();
}

fn bench_cut_sets(c: &mut Criterion) {
    let sys = ladder(8, false);
    c.bench_function("minimal_cut_sets_ladder8", |b| {
        b.iter(|| minimal_cut_sets(&sys).expect("valid"));
    });
}

fn bench_exact_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_reliability");
    for (label, shared) in [("distinct", false), ("shared", true)] {
        let sys = ladder(10, shared);
        group.bench_with_input(BenchmarkId::from_parameter(label), &shared, |b, _| {
            b.iter(|| system_failure(&sys, failure_of).expect("valid"));
        });
    }
    group.finish();
}

fn bench_importance_ranking(c: &mut Criterion) {
    let sys = ladder(8, false);
    c.bench_function("birnbaum_ranking_ladder8", |b| {
        b.iter(|| rank_by_birnbaum(&sys, failure_of).expect("valid"));
    });
}

fn bench_fig2_evaluation(c: &mut Criterion) {
    // The paper's own diagram, as the baseline micro-benchmark.
    let fig2 = Block::series(vec![
        Block::parallel(vec![
            Block::component("Hdetect"),
            Block::component("Mdetect"),
        ]),
        Block::component("Hclassify"),
    ]);
    c.bench_function("fig2_system_failure", |b| {
        b.iter(|| system_failure(&fig2, failure_of).expect("valid"));
    });
}

criterion_group!(
    benches,
    bench_path_sets,
    bench_cut_sets,
    bench_exact_evaluation,
    bench_importance_ranking,
    bench_fig2_evaluation
);
criterion_main!(benches);
