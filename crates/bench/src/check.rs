//! `repro check` — run the `hmdiv-analyze` static passes over artifact
//! files on disk and fail the process when any carries an error-severity
//! diagnostic.
//!
//! An artifact file is a JSON object in the same shape the serve wire
//! protocol uses, plus an optional `"kind"` discriminator:
//!
//! - `"sequential"` — `{"classes": {name: {"p_mf", "p_hf_given_ms",
//!   "p_hf_given_mf"}}}`, optionally with a `"profile"` object to also
//!   check the demand profile against the model's universe.
//! - `"detection"` — `{"classes": {name: {"p_mf", "p_h_miss",
//!   "p_h_misclass"}}}`.
//! - `"cohort"` — `{"members": [{"name", "weight", "classes": …}]}`.
//! - `"rbd"` — `{"block": …, "probabilities": {component: p | [lo, hi]}}`
//!   where a block is a component-name string, `{"series": […]}`,
//!   `{"parallel": […]}`, or `{"k_of_n": {"k": N, "of": […]}}`.
//!
//! When `"kind"` is absent it is inferred from the fields present. Build
//! failures (invalid probabilities, malformed diagrams) count as check
//! failures too — the typed error is the finding.

use hmdiv_analyze::{self as analyze, Interval, Report};
use hmdiv_core::cohort::{CohortMember, ReaderCohort};
use hmdiv_core::{ParallelDetectionModel, SequentialModel};
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::Block;
use hmdiv_serve::json::{self, Json};
use hmdiv_serve::protocol;

/// The result of checking one artifact file.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Which artifact shape was checked.
    pub kind: &'static str,
    /// The analyzer's findings.
    pub report: Report,
    /// Static reliability bounds, for `rbd` artifacts that admit them.
    pub bounds: Option<Interval>,
}

impl CheckOutcome {
    /// Whether the artifact passed (no error-severity diagnostics).
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.report.has_errors()
    }
}

/// Parses and checks one artifact source string.
///
/// # Errors
///
/// A human-readable message when the source cannot be parsed or the
/// artifact cannot be built at all (those are failures of the check,
/// distinct from error-severity diagnostics on a well-formed artifact).
pub fn check_source(source: &str) -> Result<CheckOutcome, String> {
    let body = json::parse(source).map_err(|e| format!("invalid JSON: {e}"))?;
    if body.as_obj().is_none() {
        return Err("artifact must be a JSON object".into());
    }
    match artifact_kind(&body)? {
        "sequential" => check_sequential(&body),
        "detection" => check_detection(&body),
        "cohort" => check_cohort(&body),
        "rbd" => check_rbd(&body),
        other => Err(format!("unknown artifact kind `{other}`")),
    }
}

/// Resolves the artifact kind: the explicit `"kind"` field, else inferred
/// from which top-level fields are present.
fn artifact_kind(body: &Json) -> Result<&'static str, String> {
    if let Some(kind) = body.get("kind") {
        let kind = kind
            .as_str()
            .ok_or_else(|| "`kind` must be a string".to_owned())?;
        return ["sequential", "detection", "cohort", "rbd"]
            .into_iter()
            .find(|k| *k == kind)
            .ok_or_else(|| format!("unknown artifact kind `{kind}`"));
    }
    if body.get("members").is_some() {
        return Ok("cohort");
    }
    if body.get("block").is_some() {
        return Ok("rbd");
    }
    let classes = body.get("classes").ok_or_else(|| {
        "artifact has neither `kind`, `classes`, `members`, nor `block`".to_owned()
    })?;
    let detection = classes
        .as_obj()
        .and_then(|entries| entries.first())
        .is_some_and(|(_, triple)| triple.get("p_h_miss").is_some());
    Ok(if detection { "detection" } else { "sequential" })
}

fn check_sequential(body: &Json) -> Result<CheckOutcome, String> {
    let params = protocol::parse_model_params(body).map_err(|e| e.to_string())?;
    let model = SequentialModel::new(params);
    let compiled = model.compiled();
    let bound = if body.get("profile").is_some() {
        let profile = protocol::parse_profile(body).map_err(|e| e.to_string())?;
        Some(compiled.bind_profile(&profile).map_err(|e| e.to_string())?)
    } else {
        None
    };
    Ok(CheckOutcome {
        kind: "sequential",
        report: analyze::analyze_model(compiled, bound.as_ref()),
        bounds: None,
    })
}

fn check_detection(body: &Json) -> Result<CheckOutcome, String> {
    let classes = protocol::parse_detection_params(body).map_err(|e| e.to_string())?;
    let mut builder = ParallelDetectionModel::builder();
    for (class, dp) in classes {
        builder = builder.class(class, dp);
    }
    let model = builder.build().map_err(|e| e.to_string())?;
    Ok(CheckOutcome {
        kind: "detection",
        report: analyze::analyze_detection(model.compiled()),
        bounds: None,
    })
}

fn check_cohort(body: &Json) -> Result<CheckOutcome, String> {
    let members = body
        .get("members")
        .and_then(Json::as_arr)
        .ok_or_else(|| "`members` must be an array".to_owned())?;
    let mut parsed = Vec::with_capacity(members.len());
    for member in members {
        let name = member
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "cohort member needs a string `name`".to_owned())?;
        let weight = member
            .get("weight")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("member `{name}` needs a numeric `weight`"))?;
        let params =
            protocol::parse_model_params(member).map_err(|e| format!("member `{name}`: {e}"))?;
        parsed.push(CohortMember {
            name: name.to_owned(),
            weight,
            model: SequentialModel::new(params),
        });
    }
    let cohort = ReaderCohort::new(parsed).map_err(|e| e.to_string())?;
    Ok(CheckOutcome {
        kind: "cohort",
        report: analyze::analyze_cohort(&cohort),
        bounds: None,
    })
}

fn check_rbd(body: &Json) -> Result<CheckOutcome, String> {
    let block = parse_block(
        body.get("block")
            .ok_or_else(|| "`rbd` artifact needs a `block`".to_owned())?,
    )?;
    let compiled = CompiledBlock::compile(&block).map_err(|e| e.to_string())?;
    let probabilities = body
        .get("probabilities")
        .and_then(Json::as_obj)
        .ok_or_else(|| "`rbd` artifact needs a `probabilities` object".to_owned())?;
    let mut bounds = Vec::with_capacity(compiled.component_count());
    for name in compiled.component_names() {
        let value = probabilities
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("no failure probability given for component `{name}`"))?;
        bounds.push(parse_interval(name, value)?);
    }
    let analysis = analyze::analyze_block(&compiled, &bounds);
    Ok(CheckOutcome {
        kind: "rbd",
        report: analysis.report,
        bounds: analysis.bounds,
    })
}

/// Parses a block spec: a component-name string, `{"series": […]}`,
/// `{"parallel": […]}`, or `{"k_of_n": {"k": N, "of": […]}}`.
fn parse_block(value: &Json) -> Result<Block, String> {
    if let Some(name) = value.as_str() {
        return Ok(Block::component(name));
    }
    let obj = value
        .as_obj()
        .ok_or_else(|| "a block is a component-name string or an object".to_owned())?;
    let [(key, inner)] = obj else {
        return Err("a block object has exactly one key".into());
    };
    let children = |v: &Json| -> Result<Vec<Block>, String> {
        v.as_arr()
            .ok_or_else(|| format!("`{key}` takes an array of blocks"))?
            .iter()
            .map(parse_block)
            .collect()
    };
    match key.as_str() {
        "series" => Ok(Block::series(children(inner)?)),
        "parallel" => Ok(Block::parallel(children(inner)?)),
        "k_of_n" => {
            let k = inner
                .get("k")
                .and_then(Json::as_u64)
                .ok_or_else(|| "`k_of_n` needs an integer `k`".to_owned())?;
            let of = children(
                inner
                    .get("of")
                    .ok_or_else(|| "`k_of_n` needs an `of` array".to_owned())?,
            )?;
            let k = usize::try_from(k).map_err(|_| "`k` does not fit usize".to_owned())?;
            Ok(Block::k_of_n(k, of))
        }
        other => Err(format!("unknown block kind `{other}`")),
    }
}

/// A failure probability is a point (number) or an interval `[lo, hi]`.
fn parse_interval(name: &str, value: &Json) -> Result<Interval, String> {
    if let Some(p) = value.as_f64() {
        return Ok(Interval::point(p));
    }
    if let Some([lo, hi]) = value.as_arr() {
        if let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) {
            return Ok(Interval::new(lo, hi));
        }
    }
    Err(format!(
        "probability for `{name}` must be a number or a [lo, hi] pair"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sequential_artifact_passes() {
        let src = r#"{"classes":
            {"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
             "difficult":{"p_mf":0.41,"p_hf_given_ms":0.4,"p_hf_given_mf":0.9}},
            "profile":{"easy":0.85,"difficult":0.15}}"#;
        let outcome = check_source(src).unwrap();
        assert_eq!(outcome.kind, "sequential");
        assert!(outcome.passed());
        assert!(outcome.report.is_empty());
    }

    #[test]
    fn kind_inference_spots_detection_tables() {
        let src = r#"{"classes":
            {"easy":{"p_mf":0.07,"p_h_miss":0.1,"p_h_misclass":0.05}}}"#;
        let outcome = check_source(src).unwrap();
        assert_eq!(outcome.kind, "detection");
        assert!(outcome.passed());
    }

    #[test]
    fn mismatched_cohort_fails_with_hm030() {
        let src = r#"{"members":[
            {"name":"r1","weight":1,"classes":
                {"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18}}},
            {"name":"r2","weight":1,"classes":
                {"alien":{"p_mf":0.1,"p_hf_given_ms":0.2,"p_hf_given_mf":0.3}}}]}"#;
        let outcome = check_source(src).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.report.first_error().unwrap().code, "HM030");
    }

    #[test]
    fn rbd_artifact_reports_interval_bounds() {
        let src = r#"{"kind":"rbd",
            "block":{"series":[{"parallel":["human","machine"]},"archive"]},
            "probabilities":{"human":[0.1,0.2],"machine":0.3,"archive":[0.01,0.02]}}"#;
        let outcome = check_source(src).unwrap();
        assert_eq!(outcome.kind, "rbd");
        assert!(outcome.passed());
        let bounds = outcome.bounds.unwrap();
        assert!(bounds.lo <= bounds.hi);
        assert!(bounds.lo > 0.9);
    }

    #[test]
    fn malformed_diagrams_are_check_failures() {
        let src = r#"{"kind":"rbd",
            "block":{"k_of_n":{"k":3,"of":["a","b"]}},
            "probabilities":{"a":0.1,"b":0.1}}"#;
        let err = check_source(src).unwrap_err();
        assert!(err.contains("threshold 3"), "got: {err}");
    }

    #[test]
    fn missing_component_probability_is_reported_by_name() {
        let src = r#"{"kind":"rbd","block":{"series":["a","b"]},
            "probabilities":{"a":0.1}}"#;
        let err = check_source(src).unwrap_err();
        assert!(err.contains('`'), "got: {err}");
        assert!(err.contains('b'), "got: {err}");
    }
}
