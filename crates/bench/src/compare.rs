//! `repro compare` — differentially compare two sequential-model
//! artifact files with `hmdiv-analyze` and report the certified verdict.
//!
//! Both files use the `"sequential"` artifact shape `repro check`
//! accepts: `{"classes": {name: {"p_mf", "p_hf_given_ms",
//! "p_hf_given_mf"}}, "profile": {name: weight}?}`. Embedded `"profile"`
//! objects (from either file, deduplicated) become the demand profiles
//! the comparison is additionally evaluated under; with none, the
//! verdict rests on the profile-free per-class certificate alone.

use hmdiv_analyze::{self as analyze, Comparison, Dominance};
use hmdiv_core::{CompiledProfile, SequentialModel};
use hmdiv_serve::json::{self, Json};
use hmdiv_serve::protocol;

/// The result of comparing two artifact files.
#[derive(Debug)]
pub struct CompareOutcome {
    /// The full differential-analysis result.
    pub comparison: Comparison,
    /// How many demand profiles (embedded in the inputs) were evaluated.
    pub profiles: usize,
}

impl CompareOutcome {
    /// Whether the comparison itself succeeded (it may still be
    /// [`Dominance::Incomparable`]); error-severity diagnostics — e.g. a
    /// universe mismatch — fail it.
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.comparison.report.has_errors()
    }

    /// A plain-text report: verdict, certificate scope, per-class and
    /// per-profile gaps, diagnostics.
    #[must_use]
    pub fn render_text(&self) -> String {
        let cmp = &self.comparison;
        let mut out = format!("verdict: {}", cmp.verdict.label());
        match (cmp.uniform, cmp.verdict) {
            (Some(_), _) => out.push_str(" (certified for every demand profile)"),
            (None, Dominance::Incomparable) => {}
            (None, _) => {
                out.push_str(&format!(
                    " (certified for {} supplied profiles)",
                    self.profiles
                ));
            }
        }
        out.push('\n');
        for gap in &cmp.class_gaps {
            out.push_str(&format!(
                "  class {}: gap [{:+.9}, {:+.9}]{}\n",
                gap.class,
                gap.gap.lo,
                gap.gap.hi,
                if gap.shared { " (shared slot)" } else { "" }
            ));
        }
        for (k, gap) in cmp.profile_gaps.iter().enumerate() {
            out.push_str(&format!(
                "  profile {k}: system-failure gap [{:+.9}, {:+.9}]\n",
                gap.lo, gap.hi
            ));
        }
        for diagnostic in cmp.report.diagnostics() {
            out.push_str(&format!("  {diagnostic}\n"));
        }
        out
    }

    /// A machine-readable JSON report mirroring the serve `compare` verb.
    #[must_use]
    pub fn render_json(&self) -> String {
        let cmp = &self.comparison;
        let class_gaps: Vec<Json> = cmp
            .class_gaps
            .iter()
            .map(|g| {
                Json::Obj(vec![
                    ("class".to_owned(), Json::str(g.class.as_str())),
                    ("shared".to_owned(), Json::Bool(g.shared)),
                    ("gap_lo".to_owned(), Json::Num(g.gap.lo)),
                    ("gap_hi".to_owned(), Json::Num(g.gap.hi)),
                ])
            })
            .collect();
        let profile_gaps: Vec<Json> = cmp
            .profile_gaps
            .iter()
            .map(|g| Json::Arr(vec![Json::Num(g.lo), Json::Num(g.hi)]))
            .collect();
        let report = json::parse(&cmp.report.render_json()).unwrap_or(Json::Null);
        let mut out = String::new();
        Json::Obj(vec![
            ("verdict".to_owned(), Json::str(cmp.verdict.label())),
            (
                "uniform".to_owned(),
                match cmp.uniform {
                    Some(u) => Json::str(u.label()),
                    None => Json::Null,
                },
            ),
            ("class_gaps".to_owned(), Json::Arr(class_gaps)),
            ("profile_gaps".to_owned(), Json::Arr(profile_gaps)),
            ("report".to_owned(), report),
        ])
        .write(&mut out);
        out
    }
}

/// Parses one sequential artifact source and its optional embedded
/// profile.
fn parse_artifact(label: &str, source: &str) -> Result<(SequentialModel, Option<Json>), String> {
    let body = json::parse(source).map_err(|e| format!("{label}: invalid JSON: {e}"))?;
    if body.as_obj().is_none() {
        return Err(format!("{label}: artifact must be a JSON object"));
    }
    if let Some(kind) = body.get("kind").and_then(Json::as_str) {
        if kind != "sequential" {
            return Err(format!(
                "{label}: `compare` takes sequential artifacts, got `{kind}`"
            ));
        }
    }
    let params = protocol::parse_model_params(&body).map_err(|e| format!("{label}: {e}"))?;
    let profile = body.get("profile").cloned();
    Ok((SequentialModel::new(params), profile))
}

/// Compares two sequential artifact sources.
///
/// # Errors
///
/// A human-readable message when either source cannot be parsed or built
/// at all; analyzer findings on well-formed artifacts are reported in
/// the outcome instead.
pub fn compare_sources(baseline_src: &str, candidate_src: &str) -> Result<CompareOutcome, String> {
    let (baseline, base_profile) = parse_artifact("baseline", baseline_src)?;
    let (candidate, cand_profile) = parse_artifact("candidate", candidate_src)?;
    // Embedded profiles bind against the shared universe; when universes
    // differ, skip binding entirely and let the analyzer refuse the pair
    // with its stable HM code.
    let mut profiles: Vec<CompiledProfile> = Vec::new();
    if baseline.compiled().universe().content_hash()
        == candidate.compiled().universe().content_hash()
    {
        let mut seen = Vec::new();
        for profile_json in [base_profile, cand_profile].into_iter().flatten() {
            if seen.contains(&profile_json) {
                continue;
            }
            let holder = Json::Obj(vec![("profile".to_owned(), profile_json.clone())]);
            let profile = protocol::parse_profile(&holder).map_err(|e| e.to_string())?;
            profiles.push(
                baseline
                    .compiled()
                    .bind_profile(&profile)
                    .map_err(|e| e.to_string())?,
            );
            seen.push(profile_json);
        }
    }
    let comparison = analyze::compare(baseline.compiled(), candidate.compiled(), &profiles);
    Ok(CompareOutcome {
        profiles: comparison.profile_gaps.len(),
        comparison,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"kind":"sequential","classes":
        {"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
         "difficult":{"p_mf":0.41,"p_hf_given_ms":0.4,"p_hf_given_mf":0.9}},
        "profile":{"easy":0.85,"difficult":0.15}}"#;

    const IMPROVED: &str = r#"{"kind":"sequential","classes":
        {"easy":{"p_mf":0.07,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
         "difficult":{"p_mf":0.041,"p_hf_given_ms":0.4,"p_hf_given_mf":0.9}},
        "profile":{"easy":0.85,"difficult":0.15}}"#;

    #[test]
    fn dominating_pair_reports_the_uniform_certificate() {
        let outcome = compare_sources(BASE, IMPROVED).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.comparison.verdict, Dominance::Dominates);
        assert_eq!(outcome.comparison.uniform, Some(Dominance::Dominates));
        // The two embedded profiles are identical, so they deduplicate.
        assert_eq!(outcome.profiles, 1);
        let text = outcome.render_text();
        assert!(text.contains("verdict: dominates"), "{text}");
        assert!(text.contains("every demand profile"), "{text}");
        assert!(text.contains("(shared slot)"), "{text}");
        let json_out = outcome.render_json();
        assert!(json_out.contains(r#""verdict":"dominates""#), "{json_out}");
    }

    #[test]
    fn universe_mismatch_fails_with_hm037() {
        let alien = r#"{"classes":
            {"weird":{"p_mf":0.1,"p_hf_given_ms":0.2,"p_hf_given_mf":0.3}}}"#;
        let outcome = compare_sources(BASE, alien).unwrap();
        assert!(!outcome.passed());
        assert_eq!(
            outcome.comparison.report.first_error().unwrap().code,
            "HM037"
        );
        assert_eq!(outcome.comparison.verdict, Dominance::Incomparable);
        assert!(outcome.render_text().contains("HM037"));
    }

    #[test]
    fn trade_off_pair_is_incomparable_without_a_winning_profile() {
        let tradeoff = r#"{"kind":"sequential","classes":
            {"easy":{"p_mf":0.007,"p_hf_given_ms":0.14,"p_hf_given_mf":0.18},
             "difficult":{"p_mf":0.8,"p_hf_given_ms":0.4,"p_hf_given_mf":0.9}}}"#;
        let outcome = compare_sources(BASE, tradeoff).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.comparison.uniform, None);
        let text = outcome.render_text();
        assert!(text.contains("verdict:"), "{text}");
    }

    #[test]
    fn non_sequential_artifacts_are_refused_upfront() {
        let rbd = r#"{"kind":"rbd","block":"a","probabilities":{"a":0.1}}"#;
        let err = compare_sources(BASE, rbd).unwrap_err();
        assert!(err.contains("candidate"), "{err}");
        assert!(err.contains("sequential"), "{err}");
    }
}
