//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT...] [--monte-carlo] [--cases N] [--seed N] [--threads N] [--metrics[=PATH]]
//! repro serve [--fleet N] [--addr HOST:PORT] [--queue-capacity N] [--threads N]
//!             [--pollers N] [--max-line-bytes N] [--deadline-ms N] [--metrics]
//!             [--trace N] [--trace-dump PATH] [--snapshot-dir DIR]
//! repro route --backend HOST:PORT [--backend HOST:PORT ...] [--addr HOST:PORT]
//!             [--vnodes N] [--probe-interval-ms N] [--probe-timeout-ms N]
//!             [--eject-after N] [--readmit-after N] [--metrics]
//! repro loadgen --target HOST:PORT [--target HOST:PORT ...] [--connections N]
//!               [--pipeline N] [--requests N] [--request LINE] [--timeout-ms N]
//! repro check [--json] ARTIFACT.json...
//! repro compare [--json] BASELINE.json CANDIDATE.json
//! ```
//!
//! Experiments: `table1`, `table2`, `table3`, `fig4`, `eq10`, `tradeoff`,
//! `multireader`, `behavioural`, `granularity`, `coverage`, `session`,
//! `procedures`, `rounds`, `residual`, `all` (default: `all`).
//!
//! `--monte-carlo` adds a table-driven simulation cross-check to the
//! analytic values; `--cases` / `--seed` control it and `--threads` sets the
//! simulation worker count. `--metrics` enables the `hmdiv-obs` layer and
//! prints a JSON metrics snapshot to stdout when the run finishes;
//! `--metrics=PATH` instead rewrites the cumulative snapshot at `PATH` after
//! each experiment.
//!
//! `repro serve` starts the `hmdiv-serve` JSON-lines evaluation server and
//! blocks until a client sends the `shutdown` verb (or the process is
//! killed). `--metrics` enables the `hmdiv-obs` layer so the server's
//! `metrics` verb returns live counters. `--trace N` turns on request
//! tracing with an N-record flight recorder (drained by the `trace`
//! verb); `--trace-dump PATH` additionally dumps the recorder to `PATH`
//! whenever a request sheds (`overloaded` / `deadline_exceeded`).
//! `--pollers N` sizes the readiness-poller pool that multiplexes the
//! connections, and `--snapshot-dir DIR` warm-starts the registry from a
//! previous `save` (and becomes the default target for the `save` and
//! `restore` verbs).
//!
//! `repro serve --fleet N` instead starts N single-replica child
//! processes on ephemeral ports plus the `hmdiv-fleet` consistent-hash
//! front router in-process; the remaining serve flags are forwarded to
//! every replica. `repro route` runs the router alone over
//! externally-managed replicas (repeat `--backend` per replica).
//! `repro loadgen` drives any serving endpoint — one replica or the
//! fleet router — with pipelined keep-alive connections (round-robin
//! across repeated `--target`s) and prints a JSON report with per-target
//! served/shed splits.
//!
//! `repro check` runs the `hmdiv-analyze` static passes over artifact
//! files (see `hmdiv_bench::check` for the accepted shapes) and exits
//! nonzero when any artifact fails to build or carries an error-severity
//! diagnostic — the CI gate for model parameter files.
//!
//! `repro compare` differentially compares two sequential artifact files
//! (`hmdiv_analyze::compare`): a certified dominates / dominated /
//! incomparable verdict with exact per-class and per-profile gap bounds,
//! as text or `--json`. Exits nonzero when the comparison is refused
//! (universe mismatch, domain faults) — not when the pair is merely
//! incomparable.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hmdiv_bench::{fig4_series, table2_rows, table3_rows, Row};
use hmdiv_core::decomposition::decompose;
use hmdiv_core::design::rank_improvement_targets;
use hmdiv_core::importance::{machine_response_lines, system_lower_bound};
use hmdiv_core::multi_reader::{CombinationRule, ReaderSkill, TeamModel};
use hmdiv_core::tradeoff::{MachineRoc, TradeoffStudy, TwoSidedModel};
use hmdiv_core::{paper, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;
use hmdiv_sim::engine::{SimConfig, Simulation};
use hmdiv_sim::{scenario, table_driven};
use hmdiv_trial::report::{render_failure_table, render_table1};

/// Known experiment names, in execution order (`all` runs every one).
const EXPERIMENT_NAMES: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "fig4",
    "eq10",
    "tradeoff",
    "multireader",
    "behavioural",
    "granularity",
    "coverage",
    "session",
    "procedures",
    "rounds",
    "residual",
];

struct Options {
    experiments: Vec<String>,
    monte_carlo: bool,
    cases: u64,
    seed: u64,
    threads: usize,
    metrics: bool,
    metrics_path: Option<String>,
}

fn usage() -> String {
    format!(
        "usage: repro [{}|all] [--monte-carlo] [--cases N] [--seed N] [--threads N] [--metrics[=PATH]]\n       {}\n       {}\n       {}\n       {}\n       {}",
        EXPERIMENT_NAMES.join("|"),
        serve_usage(),
        route_usage(),
        loadgen_usage(),
        check_usage(),
        compare_usage()
    )
}

fn parse_args() -> Result<Options, String> {
    let mut experiments = Vec::new();
    let mut monte_carlo = false;
    let mut cases = 1_000_000u64;
    let mut seed = 2003u64;
    let mut threads = 4usize;
    let mut metrics = false;
    let mut metrics_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--monte-carlo" => monte_carlo = true,
            "--cases" => {
                cases = args
                    .next()
                    .ok_or("--cases needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--metrics=") => {
                let path = &other["--metrics=".len()..];
                if path.is_empty() {
                    return Err("--metrics= needs a path (or plain --metrics for stdout)".into());
                }
                metrics = true;
                metrics_path = Some(path.to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other if other == "all" || EXPERIMENT_NAMES.contains(&other) => {
                experiments.push(other.to_owned());
            }
            other => {
                return Err(format!("unknown experiment {other}\n{}", usage()));
            }
        }
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    Ok(Options {
        experiments,
        monte_carlo,
        cases,
        seed,
        threads,
        metrics,
        metrics_path,
    })
}

fn serve_usage() -> String {
    "usage: repro serve [--fleet N] [--addr HOST:PORT] [--queue-capacity N] [--threads N] \
     [--pollers N] [--max-line-bytes N] [--deadline-ms N] [--metrics] [--trace N] \
     [--trace-dump PATH] [--snapshot-dir DIR]"
        .to_owned()
}

fn route_usage() -> String {
    "usage: repro route --backend HOST:PORT [--backend HOST:PORT ...] [--addr HOST:PORT] \
     [--vnodes N] [--probe-interval-ms N] [--probe-timeout-ms N] [--eject-after N] \
     [--readmit-after N] [--metrics]"
        .to_owned()
}

fn loadgen_usage() -> String {
    "usage: repro loadgen --target HOST:PORT [--target HOST:PORT ...] [--connections N] \
     [--pipeline N] [--requests N] [--request LINE] [--timeout-ms N]"
        .to_owned()
}

fn check_usage() -> String {
    "usage: repro check [--json] ARTIFACT.json...".to_owned()
}

fn compare_usage() -> String {
    "usage: repro compare [--json] BASELINE.json CANDIDATE.json".to_owned()
}

/// Differentially compares two sequential artifact files; exits nonzero
/// when either fails to build or the comparison is refused (e.g. a
/// universe mismatch) — an `incomparable` verdict on a well-formed pair
/// is a successful exit.
fn compare_main(args: &[String]) -> ExitCode {
    let mut json_output = false;
    let mut paths = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json_output = true,
            "--help" | "-h" => {
                eprintln!("{}", compare_usage());
                return ExitCode::FAILURE;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown compare flag {other}\n{}", compare_usage());
                return ExitCode::FAILURE;
            }
            path => paths.push(path),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        eprintln!("{}", compare_usage());
        return ExitCode::FAILURE;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"));
    let outcome = read(baseline)
        .and_then(|b| read(candidate).map(|c| (b, c)))
        .and_then(|(b, c)| hmdiv_bench::compare::compare_sources(&b, &c));
    match outcome {
        Ok(outcome) => {
            if json_output {
                println!("{}", outcome.render_json());
            } else {
                print!("{baseline} vs {candidate}:\n{}", outcome.render_text());
            }
            if outcome.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("compare: FAILED — {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Statically analyzes artifact files; exits nonzero when any artifact
/// fails to build or carries an error-severity diagnostic.
fn check_main(args: &[String]) -> ExitCode {
    let mut json_output = false;
    let mut paths = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json_output = true,
            "--help" | "-h" => {
                eprintln!("{}", check_usage());
                return ExitCode::FAILURE;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown check flag {other}\n{}", check_usage());
                return ExitCode::FAILURE;
            }
            path => paths.push(path),
        }
    }
    if paths.is_empty() {
        eprintln!("{}", check_usage());
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|source| hmdiv_bench::check::check_source(&source));
        match verdict {
            Ok(outcome) => {
                if json_output {
                    println!("{}", outcome.report.render_json());
                } else {
                    println!(
                        "{path}: {} artifact — {}",
                        outcome.kind,
                        outcome.report.summary_line()
                    );
                    if let Some(bounds) = outcome.bounds {
                        println!(
                            "  system reliability in [{:.6}, {:.6}]",
                            bounds.lo, bounds.hi
                        );
                    }
                    for diagnostic in outcome.report.diagnostics() {
                        println!("  {diagnostic}");
                    }
                }
                if !outcome.passed() {
                    failed = true;
                }
            }
            Err(msg) => {
                eprintln!("{path}: FAILED — {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses `repro serve` flags into a [`hmdiv_serve::ServerConfig`].
///
/// Returns the config plus whether `--metrics` asked for the obs layer.
fn parse_serve_args(args: &[String]) -> Result<(hmdiv_serve::ServerConfig, bool), String> {
    let mut config = hmdiv_serve::ServerConfig {
        addr: "127.0.0.1:7414".to_owned(),
        ..hmdiv_serve::ServerConfig::default()
    };
    let mut metrics = false;
    let mut args = args.iter();
    let value = |flag: &str, args: &mut std::slice::Iter<'_, String>| {
        args.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value("--addr", &mut args)?,
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity", &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity: {e}"))?;
            }
            "--threads" => {
                config.threads = value("--threads", &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if config.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--pollers" => {
                config.poller_threads = value("--pollers", &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --pollers: {e}"))?;
                if config.poller_threads == 0 {
                    return Err("--pollers must be at least 1".into());
                }
            }
            "--max-line-bytes" => {
                config.max_line_bytes = value("--max-line-bytes", &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --max-line-bytes: {e}"))?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = Some(
                    value("--deadline-ms", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                );
            }
            "--metrics" => metrics = true,
            "--trace" => {
                config.trace_capacity = value("--trace", &mut args)?
                    .parse()
                    .map_err(|e| format!("bad --trace: {e}"))?;
                if config.trace_capacity == 0 {
                    return Err("--trace capacity must be at least 1".into());
                }
            }
            "--trace-dump" => {
                config.trace_dump = Some(value("--trace-dump", &mut args)?.into());
            }
            "--snapshot-dir" => {
                config.snapshot_dir = Some(value("--snapshot-dir", &mut args)?.into());
            }
            "--help" | "-h" => return Err(serve_usage()),
            other => return Err(format!("unknown serve flag {other}\n{}", serve_usage())),
        }
    }
    if config.trace_dump.is_some() && config.trace_capacity == 0 {
        return Err("--trace-dump requires --trace".into());
    }
    Ok((config, metrics))
}

/// Runs a replicated fleet: N `repro serve` child replicas on ephemeral
/// ports plus the consistent-hash front router in-process. `addr` is the
/// router's listen address; `extra_args` are forwarded to every replica.
fn fleet_serve_main(count: usize, addr: String, extra_args: &[String]) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: cannot locate the repro binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replicas = match hmdiv_fleet::ReplicaSet::spawn(&exe, count, extra_args) {
        Ok(replicas) => replicas,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let router = match hmdiv_fleet::Router::start(hmdiv_fleet::RouterConfig {
        addr,
        backends: replicas.addrs(),
        ..hmdiv_fleet::RouterConfig::default()
    }) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: {e}");
            replicas.shutdown();
            return ExitCode::FAILURE;
        }
    };
    for (i, addr) in replicas.addrs().iter().enumerate() {
        println!("hmdiv-fleet replica {i} listening on {addr}");
    }
    println!("hmdiv-fleet router listening on {}", router.addr());
    router.join();
    replicas.shutdown();
    println!("hmdiv-fleet drained and stopped");
    ExitCode::SUCCESS
}

/// Runs the front router alone over externally-managed replicas.
fn route_main(args: &[String]) -> ExitCode {
    let mut config = hmdiv_fleet::RouterConfig {
        addr: "127.0.0.1:7413".to_owned(),
        ..hmdiv_fleet::RouterConfig::default()
    };
    let mut metrics = false;
    let mut args = args.iter();
    let value = |flag: &str, args: &mut std::slice::Iter<'_, String>| {
        args.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--addr" => config.addr = value("--addr", &mut args)?,
                "--backend" => config.backends.push(
                    value("--backend", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --backend: {e}"))?,
                ),
                "--vnodes" => {
                    config.vnodes = value("--vnodes", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --vnodes: {e}"))?;
                }
                "--probe-interval-ms" => {
                    config.probe_interval = std::time::Duration::from_millis(
                        value("--probe-interval-ms", &mut args)?
                            .parse()
                            .map_err(|e| format!("bad --probe-interval-ms: {e}"))?,
                    );
                }
                "--probe-timeout-ms" => {
                    config.probe_timeout = std::time::Duration::from_millis(
                        value("--probe-timeout-ms", &mut args)?
                            .parse()
                            .map_err(|e| format!("bad --probe-timeout-ms: {e}"))?,
                    );
                }
                "--eject-after" => {
                    config.eject_after = value("--eject-after", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --eject-after: {e}"))?;
                }
                "--readmit-after" => {
                    config.readmit_after = value("--readmit-after", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --readmit-after: {e}"))?;
                }
                "--metrics" => metrics = true,
                "--help" | "-h" => return Err(route_usage()),
                other => return Err(format!("unknown route flag {other}\n{}", route_usage())),
            }
        }
        if config.backends.is_empty() {
            return Err(format!(
                "route needs at least one --backend\n{}",
                route_usage()
            ));
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if metrics {
        hmdiv_obs::set_enabled(true);
    }
    let router = match hmdiv_fleet::Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hmdiv-fleet router listening on {}", router.addr());
    router.join();
    println!("hmdiv-fleet drained and stopped");
    ExitCode::SUCCESS
}

/// Drives one or more serving endpoints with pipelined keep-alive
/// connections and prints the JSON report (per-target splits included).
fn loadgen_main(args: &[String]) -> ExitCode {
    let mut config = hmdiv_serve::LoadgenConfig {
        targets: Vec::new(),
        connections: 4,
        pipeline_depth: 8,
        requests_per_connection: 1000,
        request_line: "{\"id\":1,\"verb\":\"ping\"}\n".to_owned(),
        timeout: std::time::Duration::from_secs(60),
    };
    let mut args = args.iter();
    let value = |flag: &str, args: &mut std::slice::Iter<'_, String>| {
        args.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--target" => config.targets.push(
                    value("--target", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --target: {e}"))?,
                ),
                "--connections" => {
                    config.connections = value("--connections", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --connections: {e}"))?;
                }
                "--pipeline" => {
                    config.pipeline_depth = value("--pipeline", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --pipeline: {e}"))?;
                }
                "--requests" => {
                    config.requests_per_connection = value("--requests", &mut args)?
                        .parse()
                        .map_err(|e| format!("bad --requests: {e}"))?;
                }
                "--request" => {
                    let mut line = value("--request", &mut args)?;
                    if !line.ends_with('\n') {
                        line.push('\n');
                    }
                    config.request_line = line;
                }
                "--timeout-ms" => {
                    config.timeout = std::time::Duration::from_millis(
                        value("--timeout-ms", &mut args)?
                            .parse()
                            .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                    );
                }
                "--help" | "-h" => return Err(loadgen_usage()),
                other => return Err(format!("unknown loadgen flag {other}\n{}", loadgen_usage())),
            }
        }
        if config.targets.is_empty() {
            return Err(format!(
                "loadgen needs at least one --target\n{}",
                loadgen_usage()
            ));
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    match hmdiv_serve::loadgen::run(&config) {
        Ok(report) => {
            println!("{}", loadgen_report_json(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a loadgen report as one JSON object, per-target splits and a
/// derived served-per-second rate included.
fn loadgen_report_json(report: &hmdiv_serve::LoadgenReport) -> String {
    #[allow(clippy::cast_precision_loss)]
    let rate = if report.elapsed_ns == 0 {
        0.0
    } else {
        report.served as f64 * 1e9 / report.elapsed_ns as f64
    };
    let per_target: Vec<String> = report
        .per_target
        .iter()
        .map(|t| {
            format!(
                "{{\"addr\":\"{}\",\"connections\":{},\"sent\":{},\"served\":{},\
                 \"shed_overloaded\":{},\"shed_deadline\":{},\"errors\":{}}}",
                t.addr,
                t.connections,
                t.sent,
                t.served,
                t.shed_overloaded,
                t.shed_deadline,
                t.errors
            )
        })
        .collect();
    format!(
        "{{\"connections\":{},\"completed_connections\":{},\"sent\":{},\"served\":{},\
         \"shed_overloaded\":{},\"shed_deadline\":{},\"errors\":{},\"elapsed_ns\":{},\
         \"served_per_sec\":{rate:.1},\"per_target\":[{}]}}",
        report.connections,
        report.completed_connections,
        report.sent,
        report.served,
        report.shed_overloaded,
        report.shed_deadline,
        report.errors,
        report.elapsed_ns,
        per_target.join(",")
    )
}

/// Runs the evaluation server until a `shutdown` verb arrives.
fn serve_main(args: &[String]) -> ExitCode {
    // `--fleet N` switches to replicated mode: pull that flag (and the
    // router's `--addr`) out, forward everything else to the replicas.
    if let Some(pos) = args.iter().position(|a| a == "--fleet") {
        let Some(count) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) else {
            eprintln!("bad --fleet: needs a replica count\n{}", serve_usage());
            return ExitCode::FAILURE;
        };
        if count == 0 {
            eprintln!("--fleet must be at least 1");
            return ExitCode::FAILURE;
        }
        let mut rest: Vec<String> = args[..pos].to_vec();
        rest.extend_from_slice(&args[pos + 2..]);
        let mut addr = "127.0.0.1:7414".to_owned();
        if let Some(apos) = rest.iter().position(|a| a == "--addr") {
            if apos + 1 >= rest.len() {
                eprintln!("--addr needs a value\n{}", serve_usage());
                return ExitCode::FAILURE;
            }
            addr = rest.remove(apos + 1);
            rest.remove(apos);
        }
        return fleet_serve_main(count, addr, &rest);
    }
    let (config, metrics) = match parse_serve_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if metrics {
        hmdiv_obs::set_enabled(true);
    }
    let server = match hmdiv_serve::Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hmdiv-serve listening on {}", server.addr());
    server.join();
    println!("hmdiv-serve drained and stopped");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("route") {
        return route_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("loadgen") {
        return loadgen_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("check") {
        return check_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("compare") {
        return compare_main(&argv[1..]);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.metrics {
        hmdiv_obs::set_enabled(true);
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Rewrites the cumulative metrics snapshot at `path`.
fn write_metrics(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let json = hmdiv_obs::export::to_json(&hmdiv_obs::snapshot());
    std::fs::write(path, json).map_err(|e| format!("writing metrics to {path}: {e}"))?;
    Ok(())
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let all = opts.experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || opts.experiments.iter().any(|e| e == name);
    type Experiment = fn(&Options) -> Result<(), Box<dyn std::error::Error>>;
    let experiments: [(&str, Experiment); 14] = [
        ("table1", |_| table1()),
        ("table2", table2),
        ("table3", table3),
        ("fig4", fig4),
        ("eq10", |_| eq10()),
        ("tradeoff", |_| tradeoff()),
        ("multireader", |_| multireader()),
        ("behavioural", behavioural),
        ("granularity", |_| granularity()),
        ("coverage", coverage),
        ("session", |_| session()),
        ("procedures", procedures),
        ("rounds", |_| rounds()),
        ("residual", residual),
    ];
    for (name, exec) in experiments {
        if want(name) {
            exec(opts)?;
            if let Some(path) = &opts.metrics_path {
                write_metrics(path)?;
            }
        }
    }
    if opts.metrics && opts.metrics_path.is_none() {
        print!("{}", hmdiv_obs::export::to_json(&hmdiv_obs::snapshot()));
    }
    Ok(())
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:<45} {:>8} {:>12} {:>8}",
        "experiment", "paper", "regenerated", "match"
    );
    for row in rows {
        println!(
            "{:<45} {:>8.3} {:>12.6} {:>8}",
            row.label,
            row.paper,
            row.regenerated,
            if row.matches_print() { "yes" } else { "NO" }
        );
    }
}

fn table1() -> Result<(), Box<dyn std::error::Error>> {
    println!("== table 1: demand profiles and model parameters ==");
    print!(
        "{}",
        render_table1(
            &paper::example_model()?,
            &paper::trial_profile()?,
            &paper::field_profile()?
        )?
    );
    println!();
    Ok(())
}

fn monte_carlo_check(
    model: &SequentialModel,
    label: &str,
    opts: &Options,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for (profile, name) in [
        (paper::trial_profile()?, "trial"),
        (paper::field_profile()?, "field"),
    ] {
        let (empirical, analytic) =
            table_driven::cross_check(model, &profile, opts.cases, &mut rng)?;
        println!(
            "   monte-carlo {label}/{name}: empirical {:.5} vs analytic {:.5} ({} cases)",
            empirical.value(),
            analytic.value(),
            opts.cases
        );
    }
    Ok(())
}

fn table2(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("== table 2: probability of system failure (baseline CADT) ==");
    print_rows(&table2_rows()?);
    print!(
        "{}",
        render_failure_table(
            &paper::example_model()?,
            &paper::trial_profile()?,
            &paper::field_profile()?
        )?
    );
    if opts.monte_carlo {
        monte_carlo_check(&paper::example_model()?, "table2", opts)?;
    }
    println!();
    Ok(())
}

fn table3(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("== table 3: improvement scenarios (CADT x10 better on one class) ==");
    print_rows(&table3_rows()?);
    if opts.monte_carlo {
        monte_carlo_check(
            &paper::model_improved_on_easy()?,
            "table3/improved-easy",
            opts,
        )?;
        monte_carlo_check(
            &paper::model_improved_on_difficult()?,
            "table3/improved-difficult",
            opts,
        )?;
    }
    println!();
    Ok(())
}

fn fig4(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("== fig 4: system failure vs machine failure probability ==");
    let model = paper::example_model()?;
    for line in machine_response_lines(&model) {
        println!(
            "class {}: intercept PHf|Ms = {:.3}, slope t(x) = {:.3}, current PMf = {:.3}",
            line.class(),
            line.lower_bound().value(),
            line.coherence_index(),
            line.current_p_mf().value()
        );
        let series = fig4_series(&model, line.class(), 11)?;
        print!("  PMf :");
        for (x, _) in &series {
            print!(" {x:>6.2}");
        }
        println!();
        print!("  PHf :");
        for (_, y) in &series {
            print!(" {y:>6.3}");
        }
        println!();
    }
    let trial = paper::trial_profile()?;
    println!(
        "system-level floor (trial profile): {:.5} — no machine improvement goes below this",
        system_lower_bound(&model, &trial)?.value()
    );
    if opts.monte_carlo {
        fig4_monte_carlo(opts)?;
    }
    println!();
    Ok(())
}

/// Fig. 4 "as measured in field usage" (§6.1): estimate intercept and slope
/// from simulated usage at several machine operating points.
fn fig4_monte_carlo(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("-- fig 4, measured from the behavioural simulator --");
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "operating", "PMf(diff)", "PHf(diff)", "t(diff)"
    );
    for operating in [0.45, 0.55, 0.62, 0.7, 0.8] {
        let mut world = scenario::trial_world()?;
        let cadt = world
            .team
            .cadt
            .ok_or("trial world has no CADT configured")?
            .with_operating(operating)?;
        world.team.cadt = Some(cadt);
        let report = Simulation::new(
            world,
            SimConfig {
                cases: opts.cases.min(400_000),
                seed: opts.seed,
                threads: opts.threads,
            },
        )
        .run()?;
        let model = report.estimated_model()?;
        let cp = model.params().class_by_name("difficult")?;
        println!(
            "{:>9.2} {:>12.4} {:>12.4} {:>10.4}",
            operating,
            cp.p_mf().value(),
            cp.class_failure().value(),
            cp.coherence_index()
        );
    }
    Ok(())
}

fn eq10() -> Result<(), Box<dyn std::error::Error>> {
    println!("== eq. (10): covariance decomposition ==");
    let model = paper::example_model()?;
    for (profile, name) in [
        (paper::trial_profile()?, "trial"),
        (paper::field_profile()?, "field"),
    ] {
        let d = decompose(&model, &profile)?;
        println!("profile {name}:");
        println!("  E[PHf|Ms]        = {:.6}", d.mean_hf_given_ms);
        println!("  E[PMf]*E[t]      = {:.6}", d.mean_field_term());
        println!("  cov(PMf, t)      = {:.6}", d.covariance);
        println!("  reconstructed    = {:.6}", d.reconstructed);
        println!("  direct (eq. 8)   = {:.6}", d.direct.value());
        println!("  reconciles       = {}", d.reconciles(1e-12));
    }
    println!("-- improvement targeting (section 6.2) --");
    let ranked = rank_improvement_targets(&model, &paper::field_profile()?)?;
    for lever in ranked {
        println!(
            "  class {:<10} p(x)={:.2} t(x)={:.2} PMf(x)={:.2} -> max benefit {:.5}",
            lever.class.name(),
            lever.weight,
            lever.coherence_index,
            lever.p_mf,
            lever.max_benefit
        );
    }
    println!();
    Ok(())
}

fn tradeoff() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FN/FP trade-off study (section 7 future work) ==");
    let p = |v: f64| Probability::new(v).expect("literal probability");
    let fn_model = paper::example_model()?;
    let fp_model = SequentialModel::new(
        ModelParams::builder()
            .class("clear", ClassParams::new(p(0.1), p(0.02), p(0.08)))
            .class("ambiguous", ClassParams::new(p(0.3), p(0.15), p(0.4)))
            .build()?,
    );
    let study = TradeoffStudy {
        base: TwoSidedModel {
            false_negative: fn_model,
            false_positive: fp_model,
        },
        roc: MachineRoc::builder()
            .cancer_class("easy", 0.15)
            .cancer_class("difficult", 0.6)
            .normal_class("clear", 0.3)
            .normal_class("ambiguous", 0.9)
            .build()?,
        cancer_profile: paper::field_profile()?,
        normal_profile: DemandProfile::builder()
            .class("clear", 0.85)
            .class("ambiguous", 0.15)
            .build()?,
        prevalence: p(0.008),
    };
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "tau", "FN rate", "FP rate", "recall rate"
    );
    for point in study.sweep(11)? {
        println!(
            "{:>6.2} {:>10.4} {:>10.4} {:>12.4}",
            point.tau,
            point.fn_rate.value(),
            point.fp_rate.value(),
            point.recall_rate.value()
        );
    }
    if let Some(best) = study.best_operating_point(101, 500.0, 1.0, Some(p(0.07)))? {
        println!(
            "best point (FN cost 500, FP cost 1, recall <= 7%): tau={:.2} FN={:.4} FP={:.4}",
            best.tau,
            best.fn_rate.value(),
            best.fp_rate.value()
        );
    }
    println!();
    Ok(())
}

fn multireader() -> Result<(), Box<dyn std::error::Error>> {
    println!("== multi-reader configurations (section 7 future work) ==");
    let p = |v: f64| Probability::new(v).expect("literal probability");
    let expert = ReaderSkill::builder()
        .class("easy", p(0.14), p(0.18))
        .class("difficult", p(0.4), p(0.9))
        .build()?;
    let novice = ReaderSkill::builder()
        .class("easy", p(0.25), p(0.32))
        .class("difficult", p(0.55), p(0.95))
        .build()?;
    let machine = |b: hmdiv_core::multi_reader::TeamModelBuilder| {
        b.machine("easy", p(0.07)).machine("difficult", p(0.41))
    };
    let field = paper::field_profile()?;
    let configs: Vec<(&str, TeamModel)> = vec![
        (
            "single expert + CADT",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .build()?,
        ),
        (
            "double expert + CADT (either recalls)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert.clone())
                .rule(CombinationRule::EitherRecalls)
                .build()?,
        ),
        (
            "double expert + CADT (consensus)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert.clone())
                .rule(CombinationRule::Consensus)
                .build()?,
        ),
        (
            "double expert + CADT (arbitrated)",
            machine(TeamModel::builder())
                .reader(expert.clone())
                .reader(expert.clone())
                .rule(CombinationRule::Arbitrated {
                    arbiter: expert.clone(),
                })
                .build()?,
        ),
        (
            "two novices + CADT (either recalls)",
            machine(TeamModel::builder())
                .reader(novice.clone())
                .reader(novice)
                .rule(CombinationRule::EitherRecalls)
                .build()?,
        ),
    ];
    println!("{:<42} {:>14}", "configuration", "P(FN), field");
    for (name, team) in &configs {
        println!(
            "{:<42} {:>14.5}",
            name,
            team.system_failure(&field)?.value()
        );
    }
    println!();
    Ok(())
}

fn granularity() -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_core::aggregation::{coarsen, merge_classes};
    use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
    println!("== class-granularity pitfall (section 6.2 caveat) ==");
    let p = |v: f64| Probability::new(v).expect("literal probability");
    let fine = SequentialModel::new(
        ModelParams::builder()
            .class("sub-easy", ClassParams::new(p(0.05), p(0.10), p(0.10)))
            .class("sub-hard", ClassParams::new(p(0.60), p(0.80), p(0.80)))
            .build()?,
    );
    let measured = DemandProfile::builder()
        .class("sub-easy", 0.7)
        .class("sub-hard", 0.3)
        .build()?;
    let members = [ClassId::new("sub-easy"), ClassId::new("sub-hard")];
    let merged = merge_classes(&fine, &measured, &members)?;
    println!("within-subclass t = 0.000 for both subclasses");
    println!(
        "merged class reports t = {:.3} (pure heterogeneity artefact)",
        merged.coherence_index()
    );
    let (coarse, coarse_profile) = coarsen(&fine, &measured, &members)?;
    let shifted = DemandProfile::builder()
        .class("sub-easy", 0.4)
        .class("sub-hard", 0.6)
        .build()?;
    println!(
        "measured-mix prediction: fine {:.4} vs coarse {:.4} (identical)",
        fine.system_failure(&measured)?.value(),
        coarse.system_failure(&coarse_profile)?.value()
    );
    println!(
        "shifted-mix prediction: fine {:.4} (truth) vs coarse {:.4} (biased)",
        fine.system_failure(&shifted)?.value(),
        coarse.system_failure(&coarse_profile)?.value()
    );
    println!();
    Ok(())
}

fn coverage(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_prob::estimate::CiMethod;
    use hmdiv_trial::coverage::coverage_experiment;
    println!("== interval coverage validation (replayed trials) ==");
    let model = paper::example_model()?;
    let profile = paper::trial_profile()?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for method in [CiMethod::Wald, CiMethod::Wilson, CiMethod::ClopperPearson] {
        let records = coverage_experiment(&model, &profile, 1_000, 200, method, 0.95, &mut rng)?;
        println!("method {method} (nominal 95%):");
        for rec in records {
            println!(
                "  {:<10} {:<8} coverage {:.3} over {} trials",
                rec.class,
                rec.parameter,
                rec.rate().unwrap_or(f64::NAN),
                rec.attempts
            );
        }
    }
    println!();
    Ok(())
}

fn session() -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_sim::cadt::Cadt;
    use hmdiv_sim::reader::Reader;
    use hmdiv_sim::session::{run_session, DriftConfig};
    println!("== reader drift over a session (section 5 indirect effects) ==");
    let population = scenario::trial_population()?;
    let drift = DriftConfig {
        fatigue_per_1000: 0.08,
        trust_learning_rate: 0.01,
        complacency_coupling: 0.5,
    };
    let series = run_session(
        &population,
        &Cadt::default_detector()?,
        &Reader::expert(),
        &drift,
        6,
        2_000,
        2003,
    )?;
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>9}",
        "batch", "FN rate", "lapse", "trust", "neglect"
    );
    for b in &series {
        println!(
            "{:>5} {:>8.3} {:>8.3} {:>8.3} {:>9.3}",
            b.batch,
            b.fn_rate().unwrap_or(f64::NAN),
            b.lapse_rate,
            b.prompt_trust,
            b.unprompted_neglect
        );
    }
    println!();
    Ok(())
}

fn residual(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_core::multi_reader::pair_failure_with_correlation;
    println!("== residual conditional dependence in double reading ==");
    let mut world = scenario::double_reading_world()?;
    world.population = scenario::trial_population()?;
    let report = Simulation::new(
        world,
        SimConfig {
            cases: opts.cases.min(250_000),
            seed: opts.seed,
            threads: opts.threads,
        },
    )
    .run()?;
    let simulated = report.fn_rate().ok_or("no cancer cases simulated")?.value();
    let models = report.estimated_reader_models()?;
    let mut independent = 0.0;
    let mut corrected = 0.0;
    let mut total = 0.0;
    println!(
        "{:<12} {:>10} {:>14} {:>14}",
        "class", "stratum", "phi(r1,r2)", "cases"
    );
    for (class, table) in report.cancer_counts().iter() {
        let n = table.total() as f64;
        total += n;
        let p_mf = table.machine_failures() as f64 / n;
        for (mf, weight, label) in [(true, p_mf, "Mf"), (false, 1.0 - p_mf, "Ms")] {
            let cond = |m: &SequentialModel| -> Result<f64, hmdiv_core::ModelError> {
                let cp = m.params().class(class)?;
                Ok(if mf {
                    cp.p_hf_given_mf().value()
                } else {
                    cp.p_hf_given_ms().value()
                })
            };
            let (p1, p2) = (cond(&models[0])?, cond(&models[1])?);
            let phi = report.reader_pair_phi(class, mf).unwrap_or(0.0);
            println!(
                "{:<12} {:>10} {:>14.3} {:>14.0}",
                class.name(),
                label,
                phi,
                n * weight
            );
            independent += n * weight * p1 * p2;
            corrected += n
                * weight
                * pair_failure_with_correlation(
                    Probability::clamped(p1),
                    Probability::clamped(p2),
                    phi,
                )
                .value();
        }
    }
    independent /= total;
    corrected /= total;
    println!("simulated double-reading FN rate:        {simulated:.4}");
    println!("independent-given-(class,m) prediction:  {independent:.4}  <- underpredicts");
    println!("phi-corrected prediction:                {corrected:.4}");
    println!("coarse classes leave shared difficulty inside each stratum; the paper's");
    println!("conditional-independence assumption needs finer classes or the phi correction.");
    println!();
    Ok(())
}

fn rounds() -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_core::rounds::screening_rounds;
    println!("== repeated screening rounds: interval cancers and difficulty persistence ==");
    let model = paper::example_model()?;
    let field = paper::field_profile()?;
    println!(
        "{:>7} {:>12} {:>12} {:>10}",
        "rounds", "P(missed)", "naive chain", "penalty"
    );
    for k in [1usize, 2, 3, 5] {
        let a = screening_rounds(&model, &field, k, 0.8)?;
        println!(
            "{:>7} {:>12.5} {:>12.5} {:>10.2}",
            k,
            a.p_missed_all,
            a.naive_p_missed_all,
            a.persistence_penalty().unwrap_or(f64::NAN)
        );
    }
    let a = screening_rounds(&model, &field, 5, 0.8)?;
    print!("first-detection distribution over 5 rounds:");
    for (i, p) in a.detection_by_round.iter().enumerate() {
        print!(" r{i}={p:.3}");
    }
    println!();
    println!(
        "expected detection round (among detected): {:.3}",
        a.expected_detection_round.unwrap_or(f64::NAN)
    );
    println!("difficulty persists across rounds, so the class-blind chain underestimates");
    println!("interval cancers — the multi-round face of the paper's covariance warning.");
    println!();
    Ok(())
}

fn procedures(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use hmdiv_sim::protocol::Procedure;
    use hmdiv_sim::reader::Reader;
    println!("== co-ordination procedures (section 3): concurrent vs reader-first ==");
    let run = |procedure: Procedure, neglect: f64| -> Result<_, Box<dyn std::error::Error>> {
        let mut world = scenario::trial_world()?;
        world.team.readers = vec![Reader::expert().with_unprompted_neglect(neglect)];
        world.team.procedure = procedure;
        let report = Simulation::new(
            world,
            SimConfig {
                cases: opts.cases.min(300_000),
                seed: opts.seed,
                threads: opts.threads,
            },
        )
        .run()?;
        let model = report.estimated_model()?;
        let cp = *model.params().class_by_name("difficult")?;
        Ok((report.fn_rate().ok_or("no cancer cases simulated")?, cp))
    };
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>8}",
        "procedure (neglect=0.5)", "FN rate", "PHf|Ms", "PHf|Mf", "t(diff)"
    );
    for (label, procedure) in [
        ("concurrent (fig. 3)", Procedure::Concurrent),
        ("reader-first review", Procedure::ReaderFirstReview),
    ] {
        let (fn_rate, cp) = run(procedure, 0.5)?;
        println!(
            "{:<26} {:>8.4} {:>10.4} {:>10.4} {:>8.4}",
            label,
            fn_rate.value(),
            cp.p_hf_given_ms().value(),
            cp.p_hf_given_mf().value(),
            cp.coherence_index()
        );
    }
    println!("reader-first keeps PHf|Mf at the unaided level (machine failures cannot mislead);");
    println!("concurrent reading with automation bias raises it — the section 3 concern.");
    println!();
    Ok(())
}

fn behavioural(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("== behavioural simulator: emergent per-class parameters ==");
    let world = scenario::trial_world()?;
    let report = Simulation::new(
        world,
        SimConfig {
            cases: opts.cases.min(400_000),
            seed: opts.seed,
            threads: opts.threads,
        },
    )
    .run()?;
    let model = report.estimated_model()?;
    println!("{model}");
    println!(
        "trial FN rate {:.4}, FP rate {:.4} over {} cases",
        report.fn_rate().map(|p| p.value()).unwrap_or(f64::NAN),
        report.fp_rate().map(|p| p.value()).unwrap_or(f64::NAN),
        report.total_cases()
    );
    println!();
    Ok(())
}
