//! Shared helpers for the `hmdiv` benchmark harness and the `repro`
//! table/figure regeneration binary.

#![deny(missing_docs)]

use hmdiv_core::{paper, ClassId, DemandProfile, ModelError, SequentialModel};

pub mod check;
pub mod compare;

/// A named experiment row: paper value vs regenerated value.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Experiment label, e.g. `"table2/field/all-cases"`.
    pub label: String,
    /// The value printed in the paper (rounded as printed).
    pub paper: f64,
    /// The value this library regenerates.
    pub regenerated: f64,
}

impl Row {
    /// Absolute difference.
    #[must_use]
    pub fn error(&self) -> f64 {
        (self.paper - self.regenerated).abs()
    }

    /// Whether the regenerated value rounds (3 decimals) to the paper's.
    #[must_use]
    pub fn matches_print(&self) -> bool {
        (self.regenerated * 1000.0).round() / 1000.0 == self.paper
    }
}

/// All rows of the paper's table 2 (baseline failure probabilities).
///
/// # Errors
///
/// Never fails in practice.
pub fn table2_rows() -> Result<Vec<Row>, ModelError> {
    let model = paper::example_model()?;
    let trial = paper::trial_profile()?;
    let field = paper::field_profile()?;
    Ok(vec![
        Row {
            label: "table2/easy-cases".into(),
            paper: 0.143,
            regenerated: model.class_failure(&ClassId::new(paper::EASY))?.value(),
        },
        Row {
            label: "table2/difficult-cases".into(),
            paper: 0.605,
            regenerated: model
                .class_failure(&ClassId::new(paper::DIFFICULT))?
                .value(),
        },
        Row {
            label: "table2/trial/all-cases".into(),
            paper: 0.235,
            regenerated: model.system_failure(&trial)?.value(),
        },
        Row {
            label: "table2/field/all-cases".into(),
            paper: 0.189,
            regenerated: model.system_failure(&field)?.value(),
        },
    ])
}

/// All rows of the paper's table 3 (the two improvement scenarios).
///
/// # Errors
///
/// Never fails in practice.
pub fn table3_rows() -> Result<Vec<Row>, ModelError> {
    let trial = paper::trial_profile()?;
    let field = paper::field_profile()?;
    let improved_easy = paper::model_improved_on_easy()?;
    let improved_difficult = paper::model_improved_on_difficult()?;
    Ok(vec![
        Row {
            label: "table3/improved-easy/easy-cases".into(),
            paper: 0.140,
            regenerated: improved_easy
                .class_failure(&ClassId::new(paper::EASY))?
                .value(),
        },
        Row {
            label: "table3/improved-easy/difficult-cases".into(),
            paper: 0.605,
            regenerated: improved_easy
                .class_failure(&ClassId::new(paper::DIFFICULT))?
                .value(),
        },
        Row {
            label: "table3/improved-easy/trial/all-cases".into(),
            paper: 0.233,
            regenerated: improved_easy.system_failure(&trial)?.value(),
        },
        Row {
            label: "table3/improved-easy/field/all-cases".into(),
            paper: 0.187,
            regenerated: improved_easy.system_failure(&field)?.value(),
        },
        Row {
            label: "table3/improved-difficult/easy-cases".into(),
            paper: 0.143,
            regenerated: improved_difficult
                .class_failure(&ClassId::new(paper::EASY))?
                .value(),
        },
        Row {
            label: "table3/improved-difficult/difficult-cases".into(),
            paper: 0.421,
            regenerated: improved_difficult
                .class_failure(&ClassId::new(paper::DIFFICULT))?
                .value(),
        },
        Row {
            label: "table3/improved-difficult/trial/all-cases".into(),
            paper: 0.198,
            regenerated: improved_difficult.system_failure(&trial)?.value(),
        },
        Row {
            label: "table3/improved-difficult/field/all-cases".into(),
            paper: 0.171,
            regenerated: improved_difficult.system_failure(&field)?.value(),
        },
    ])
}

/// The Fig. 4 series for one class: `(PMf, P(system failure))` pairs.
///
/// # Errors
///
/// [`ModelError::MissingClass`] if the class is unknown;
/// [`ModelError::InvalidFactor`] if `points < 2`.
pub fn fig4_series(
    model: &SequentialModel,
    class: &ClassId,
    points: usize,
) -> Result<Vec<(f64, f64)>, ModelError> {
    let line = hmdiv_core::importance::machine_response_line(model, class)?;
    line.sweep(points)
}

/// Standard profiles + model bundle used by several benches.
///
/// # Errors
///
/// Never fails in practice.
pub fn paper_bundle() -> Result<(SequentialModel, DemandProfile, DemandProfile), ModelError> {
    Ok((
        paper::example_model()?,
        paper::trial_profile()?,
        paper::field_profile()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_rows_match_paper_print() {
        for row in table2_rows()
            .unwrap()
            .iter()
            .chain(table3_rows().unwrap().iter())
        {
            assert!(
                row.matches_print(),
                "{}: {} vs {}",
                row.label,
                row.paper,
                row.regenerated
            );
            // The paper rounds to 3 decimals, so exact values sit within
            // half a unit in the last printed place.
            assert!(row.error() <= 5e-4 + 1e-12, "{}", row.label);
        }
    }

    #[test]
    fn fig4_series_has_correct_endpoints() {
        let (model, _, _) = paper_bundle().unwrap();
        let series = fig4_series(&model, &ClassId::new("difficult"), 5).unwrap();
        assert_eq!(series.len(), 5);
        assert!((series[0].1 - 0.4).abs() < 1e-12);
        assert!((series[4].1 - 0.9).abs() < 1e-12);
    }
}
