//! The shared diagnostics framework: stable codes, severities, and a
//! [`Report`] with human-text and JSON renderers.
//!
//! Every finding an analysis pass can produce is declared once in
//! [`codes`] with a fixed code and severity, so the wire protocol, the CLI,
//! DESIGN.md's table and the tests all agree on what `HM013` means. Codes
//! are append-only: a code is never reused for a different meaning.

use std::fmt;

/// How bad a finding is. Ordering is `Info < Warn < Error`.
// Derived `PartialOrd` expands to `partial_cmp`, which clippy.toml disallows
// for hand-written float comparisons; the derive itself is fine.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A property worth reporting (e.g. computed reliability bounds).
    Info,
    /// Suspicious but evaluable; results may not mean what the caller
    /// thinks (dead components, negative coherence index).
    Warn,
    /// The artifact is unsound and must not be admitted for evaluation.
    Error,
}

impl Severity {
    /// The lowercase label used by both renderers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The declaration of a diagnostic code: its stable identifier, fixed
/// severity, and a short title (the generic form of the message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSpec {
    /// Stable identifier, `HM0xx`. Never reused across releases.
    pub code: &'static str,
    /// The severity every instance of this code carries.
    pub severity: Severity,
    /// Short generic description (for the code table).
    pub title: &'static str,
}

/// The full diagnostic code table. One entry per code, append-only.
pub mod codes {
    use super::{CodeSpec, Severity};

    /// A group operation pops more values than the stack holds.
    pub const STACK_UNDERFLOW: CodeSpec = CodeSpec {
        code: "HM001",
        severity: Severity::Error,
        title: "postfix program underflows its evaluation stack",
    };
    /// The program does not leave exactly one value on the stack.
    pub const BAD_RESULT_ARITY: CodeSpec = CodeSpec {
        code: "HM002",
        severity: Severity::Error,
        title: "postfix program must leave exactly one result",
    };
    /// A series/parallel/k-of-n instruction with zero children.
    pub const ZERO_ARITY_GROUP: CodeSpec = CodeSpec {
        code: "HM003",
        severity: Severity::Error,
        title: "group instruction has zero arity",
    };
    /// A k-of-n instruction with `k == 0` or `k > n`.
    pub const BAD_THRESHOLD: CodeSpec = CodeSpec {
        code: "HM004",
        severity: Severity::Error,
        title: "k-of-n threshold outside 0 < k \u{2264} n",
    };
    /// A component index at or beyond the declared component count.
    pub const COMPONENT_OUT_OF_RANGE: CodeSpec = CodeSpec {
        code: "HM005",
        severity: Severity::Error,
        title: "component index outside the interned range",
    };
    /// A declared component the program never reads.
    pub const UNREFERENCED_COMPONENT: CodeSpec = CodeSpec {
        code: "HM006",
        severity: Severity::Warn,
        title: "declared component is never referenced by the program",
    };

    /// A per-component probability interval that is not a sub-interval of
    /// `[0,1]` (or has `lo > hi`, or non-finite endpoints).
    pub const BAD_INTERVAL: CodeSpec = CodeSpec {
        code: "HM010",
        severity: Severity::Error,
        title: "component probability interval is not within [0,1]",
    };
    /// The statically computed reliability bounds.
    pub const RELIABILITY_BOUNDS: CodeSpec = CodeSpec {
        code: "HM011",
        severity: Severity::Info,
        title: "system reliability bounds",
    };
    /// Exact bounding was infeasible; bounds widened to `[0,1]`.
    pub const BOUNDS_WIDENED: CodeSpec = CodeSpec {
        code: "HM012",
        severity: Severity::Warn,
        title: "too many repeated components; bounds widened to [0,1]",
    };
    /// A component with zero Birnbaum importance: the structure function
    /// does not depend on it.
    pub const DEAD_COMPONENT: CodeSpec = CodeSpec {
        code: "HM013",
        severity: Severity::Warn,
        title: "component is irrelevant (zero Birnbaum importance)",
    };
    /// The structure function is coherent: monotone in every component and
    /// every component is relevant.
    pub const COHERENT_STRUCTURE: CodeSpec = CodeSpec {
        code: "HM014",
        severity: Severity::Info,
        title: "structure function is coherent",
    };

    /// A parameter slot that is NaN or infinite.
    pub const NON_FINITE_PARAM: CodeSpec = CodeSpec {
        code: "HM020",
        severity: Severity::Error,
        title: "parameter slot is NaN or infinite",
    };
    /// A parameter slot outside `[0,1]`.
    pub const PARAM_OUT_OF_RANGE: CodeSpec = CodeSpec {
        code: "HM021",
        severity: Severity::Error,
        title: "parameter slot outside [0,1]",
    };
    /// Profile weights do not sum to 1 within tolerance.
    pub const PROFILE_SUM: CodeSpec = CodeSpec {
        code: "HM022",
        severity: Severity::Error,
        title: "profile weights do not sum to 1",
    };
    /// A profile weight that is negative or non-finite, or an index
    /// outside the model universe.
    pub const BAD_PROFILE_WEIGHT: CodeSpec = CodeSpec {
        code: "HM023",
        severity: Severity::Error,
        title: "profile weight or index is invalid",
    };
    /// A model class the bound profile never demands.
    pub const UNREACHABLE_CLASS: CodeSpec = CodeSpec {
        code: "HM024",
        severity: Severity::Info,
        title: "class slot is unreachable under the profile",
    };
    /// A class whose coherence index `t(x)` is negative: the human does
    /// *better* when the machine fails (eq. 9 of the paper).
    pub const NEGATIVE_COHERENCE_INDEX: CodeSpec = CodeSpec {
        code: "HM025",
        severity: Severity::Warn,
        title: "negative coherence index t(x)",
    };
    /// A class whose coherence index `t(x)` is exactly zero: human
    /// failure is independent of machine advice.
    pub const ZERO_COHERENCE_INDEX: CodeSpec = CodeSpec {
        code: "HM026",
        severity: Severity::Info,
        title: "zero coherence index t(x)",
    };
    /// A class with `P(Ms) = 0`: conditioning on machine success is
    /// undefined and fails at runtime with `InvalidFactor`.
    pub const MACHINE_NEVER_SUCCEEDS: CodeSpec = CodeSpec {
        code: "HM027",
        severity: Severity::Warn,
        title: "P(Ms) = 0; conditionals on machine success are undefined",
    };
    /// A model with no classes.
    pub const EMPTY_MODEL: CodeSpec = CodeSpec {
        code: "HM028",
        severity: Severity::Error,
        title: "model has no classes",
    };
    /// A profile bound to a different class universe than the model.
    pub const UNIVERSE_MISMATCH: CodeSpec = CodeSpec {
        code: "HM029",
        severity: Severity::Error,
        title: "profile universe differs from the model universe",
    };

    /// Cohort members interned over different class universes.
    pub const COHORT_UNIVERSE_MISMATCH: CodeSpec = CodeSpec {
        code: "HM030",
        severity: Severity::Error,
        title: "cohort members disagree on the class universe",
    };
    /// A cohort member weight that is non-finite or not positive.
    pub const BAD_COHORT_WEIGHT: CodeSpec = CodeSpec {
        code: "HM031",
        severity: Severity::Error,
        title: "cohort member weight is invalid",
    };
    /// A cohort with no members.
    pub const EMPTY_COHORT: CodeSpec = CodeSpec {
        code: "HM032",
        severity: Severity::Error,
        title: "cohort has no members",
    };

    /// The statically computed per-slot sensitivity (partial-derivative)
    /// bounds.
    pub const SENSITIVITY_BOUNDS: CodeSpec = CodeSpec {
        code: "HM033",
        severity: Severity::Info,
        title: "per-slot sensitivity (Birnbaum derivative) bounds",
    };
    /// Every parameter slot carries a direction certificate: the sign of
    /// its derivative interval is determined over the whole input box.
    pub const DIRECTIONS_CERTIFIED: CodeSpec = CodeSpec {
        code: "HM034",
        severity: Severity::Info,
        title: "every parameter slot carries a direction certificate",
    };
    /// A derivative interval that straddles zero: the abstract
    /// interpretation cannot certify a monotone direction for the slot.
    pub const SIGN_INDETERMINATE: CodeSpec = CodeSpec {
        code: "HM035",
        severity: Severity::Warn,
        title: "derivative interval spans zero; slot direction uncertified",
    };
    /// A slot whose derivative is certified negative where coherence
    /// expects nonnegative: improving the component *worsens* the system.
    pub const NON_COHERENT_SLOT: CodeSpec = CodeSpec {
        code: "HM036",
        severity: Severity::Warn,
        title: "slot certified anti-monotone (non-coherent)",
    };
    /// Two compared artifacts intern different class universes; no
    /// slot-paired gap bound exists.
    pub const COMPARE_UNIVERSE_MISMATCH: CodeSpec = CodeSpec {
        code: "HM037",
        severity: Severity::Error,
        title: "compared artifacts intern different class universes",
    };
    /// A certified dominance verdict from the differential comparison.
    pub const DOMINANCE_VERDICT: CodeSpec = CodeSpec {
        code: "HM038",
        severity: Severity::Info,
        title: "certified dominance verdict",
    };
    /// The reliability gap interval spans zero (or profiles disagree on
    /// its sign): neither design dominates.
    pub const GAP_INDETERMINATE: CodeSpec = CodeSpec {
        code: "HM039",
        severity: Severity::Info,
        title: "reliability gap spans zero; designs incomparable",
    };
    /// Sensitivity bounding was infeasible (exact factoring refused);
    /// derivative bounds widened to the trivial interval.
    pub const SENSITIVITY_WIDENED: CodeSpec = CodeSpec {
        code: "HM040",
        severity: Severity::Warn,
        title: "too many repeated components; sensitivity bounds widened",
    };

    /// Every declared code, in code order. Backs the DESIGN.md table and
    /// the uniqueness test.
    pub const ALL: &[CodeSpec] = &[
        STACK_UNDERFLOW,
        BAD_RESULT_ARITY,
        ZERO_ARITY_GROUP,
        BAD_THRESHOLD,
        COMPONENT_OUT_OF_RANGE,
        UNREFERENCED_COMPONENT,
        BAD_INTERVAL,
        RELIABILITY_BOUNDS,
        BOUNDS_WIDENED,
        DEAD_COMPONENT,
        COHERENT_STRUCTURE,
        NON_FINITE_PARAM,
        PARAM_OUT_OF_RANGE,
        PROFILE_SUM,
        BAD_PROFILE_WEIGHT,
        UNREACHABLE_CLASS,
        NEGATIVE_COHERENCE_INDEX,
        ZERO_COHERENCE_INDEX,
        MACHINE_NEVER_SUCCEEDS,
        EMPTY_MODEL,
        UNIVERSE_MISMATCH,
        COHORT_UNIVERSE_MISMATCH,
        BAD_COHORT_WEIGHT,
        EMPTY_COHORT,
        SENSITIVITY_BOUNDS,
        DIRECTIONS_CERTIFIED,
        SIGN_INDETERMINATE,
        NON_COHERENT_SLOT,
        COMPARE_UNIVERSE_MISMATCH,
        DOMINANCE_VERDICT,
        GAP_INDETERMINATE,
        SENSITIVITY_WIDENED,
    ];
}

/// One finding: a stable code, its severity, the pass that produced it,
/// and a specific human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `HM0xx` identifier (from [`codes`]).
    pub code: &'static str,
    /// Severity, fixed per code.
    pub severity: Severity,
    /// The analysis pass that emitted it ("verifier", "interval",
    /// "params", "cohort").
    pub pass: &'static str,
    /// The specific finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.pass, self.message
        )
    }
}

/// An ordered collection of diagnostics from one or more passes.
///
/// Reports are pure values: analysing the same artifact twice yields
/// byte-identical renders (no clock, no RNG, no host state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Emits a finding under a declared code.
    pub fn emit(&mut self, spec: &CodeSpec, pass: &'static str, message: String) {
        self.diags.push(Diagnostic {
            code: spec.code,
            severity: spec.severity,
            pass,
            message,
        });
    }

    /// All diagnostics, in emission order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Whether the report holds no findings at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether any finding is error-severity — the artifact must be
    /// refused.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// The most severe finding, if any.
    #[must_use]
    pub fn worst(&self) -> Option<&Diagnostic> {
        self.diags.iter().max_by_key(|d| d.severity)
    }

    /// The first error-severity finding, if any — the one a load path
    /// reports on the wire.
    #[must_use]
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }

    /// Counts by severity: `(errors, warnings, infos)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// Appends all findings of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Appends all findings of `other` with `prefix` prepended to each
    /// message — used to scope per-member findings inside a cohort.
    pub fn merge_prefixed(&mut self, other: Report, prefix: &str) {
        for mut d in other.diags {
            d.message = format!("{prefix}{}", d.message);
            self.diags.push(d);
        }
    }

    /// One-line summary: `"clean"` or e.g. `"2 errors, 1 warning, 3 notes"`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let (e, w, i) = self.counts();
        if e == 0 && w == 0 && i == 0 {
            return "clean".to_owned();
        }
        let plural = |n: usize, s: &str, p: &str| {
            if n == 1 {
                format!("1 {s}")
            } else {
                format!("{n} {p}")
            }
        };
        let mut parts = Vec::new();
        if e > 0 {
            parts.push(plural(e, "error", "errors"));
        }
        if w > 0 {
            parts.push(plural(w, "warning", "warnings"));
        }
        if i > 0 {
            parts.push(plural(i, "note", "notes"));
        }
        parts.join(", ")
    }

    /// The human renderer: one line per finding plus a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The JSON renderer:
    /// `{"diagnostics":[{"code":…,"severity":…,"pass":…,"message":…}],
    ///   "errors":N,"warnings":N,"notes":N}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code);
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.label());
            out.push_str("\",\"pass\":\"");
            out.push_str(d.pass);
            out.push_str("\",\"message\":");
            push_json_string(&mut out, &d.message);
            out.push('}');
        }
        let (e, w, i) = self.counts();
        out.push_str(&format!(
            "],\"errors\":{e},\"warnings\":{w},\"notes\":{i}}}"
        ));
        out
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for pair in codes::ALL.windows(2) {
            assert!(pair[0].code < pair[1].code, "{:?}", pair);
        }
        for spec in codes::ALL {
            assert!(spec.code.starts_with("HM"), "{}", spec.code);
            assert_eq!(spec.code.len(), 5);
            assert!(!spec.title.is_empty());
        }
    }

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn report_counts_and_queries() {
        let mut r = Report::new();
        assert!(r.is_empty());
        assert_eq!(r.summary_line(), "clean");
        r.emit(&codes::RELIABILITY_BOUNDS, "interval", "bounds".into());
        r.emit(&codes::DEAD_COMPONENT, "interval", "dead `b`".into());
        assert!(!r.has_errors());
        r.emit(&codes::STACK_UNDERFLOW, "verifier", "op 3".into());
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1, 1));
        assert_eq!(r.worst().unwrap().code, "HM001");
        assert_eq!(r.first_error().unwrap().code, "HM001");
        assert_eq!(r.summary_line(), "1 error, 1 warning, 1 note");
    }

    #[test]
    fn merge_prefixed_scopes_messages() {
        let mut outer = Report::new();
        let mut inner = Report::new();
        inner.emit(&codes::EMPTY_MODEL, "params", "no classes".into());
        outer.merge_prefixed(inner, "member `alice`: ");
        assert_eq!(outer.diagnostics()[0].message, "member `alice`: no classes");
    }

    #[test]
    fn renderers_are_deterministic_and_escaped() {
        let mut r = Report::new();
        r.emit(
            &codes::BAD_PROFILE_WEIGHT,
            "params",
            "weight \"w\"\n\tis -1".into(),
        );
        assert_eq!(r.render_text(), r.clone().render_text());
        let json = r.render_json();
        assert_eq!(json, r.render_json());
        assert!(json.contains("\\\"w\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\"errors\":1"));
        let text = r.render_text();
        assert!(text.starts_with("error [HM023] params:"));
        assert!(text.ends_with("1 error\n"));
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let mut out = String::new();
        push_json_string(&mut out, "a\u{01}b");
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
