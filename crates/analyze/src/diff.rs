//! Differential comparison: certified dominance verdicts between two
//! compiled sequential models.
//!
//! The single-artifact passes bound one model in isolation; this pass is
//! *relational*. [`compare`] interprets the **difference program** of two
//! models over a shared class universe — per-class gaps
//! `Δ(x) = PHf_cand(x) − PHf_base(x)` paired slot by slot — and lifts
//! them to a verdict:
//!
//! * every class gap ≤ 0 with at least one < 0 → the candidate
//!   **dominates**: eq. (8) is a nonnegative-weighted sum of per-class
//!   failures, and round-to-nearest addition and multiplication are
//!   monotone, so `PHf_cand ≤ PHf_base` under *every* demand profile —
//!   in float arithmetic, not just in the reals;
//! * every class gap ≥ 0 with at least one > 0 → the candidate is
//!   **dominated**, symmetrically;
//! * gaps of both signs → no uniform certificate. If demand profiles are
//!   supplied, the pass still certifies the profile-wise verdict from
//!   paired evaluations of the supplied profiles only.
//!
//! Per-class gaps are *exact*: both class-failure slots are the stored
//! semantics of their models, so their difference is a point interval,
//! not an enclosure. Verdicts therefore need no tolerance knob — which
//! is what lets `design::allocate_improvement_budget` use them to prune
//! candidates without perturbing its bit-identical ranking.
//!
//! Comparing models over different interned universes is refused with
//! [`codes::COMPARE_UNIVERSE_MISMATCH`]: with no slot pairing there is
//! no difference program to interpret.

use hmdiv_core::{CompiledModel, CompiledProfile};

use crate::diag::{codes, Report};
use crate::interp::Interval;
use crate::params;

/// The pass name used in diagnostics from this module.
const PASS: &str = "diff";

/// A certified relation between a candidate and a baseline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// The candidate's system failure is provably ≤ the baseline's on
    /// every criterion checked, strictly on at least one.
    Dominates,
    /// The baseline provably beats the candidate, symmetrically.
    Dominated,
    /// Neither direction is certified.
    Incomparable,
}

impl Dominance {
    /// The lowercase label used in messages and wire renders.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dominance::Dominates => "dominates",
            Dominance::Dominated => "dominated",
            Dominance::Incomparable => "incomparable",
        }
    }
}

/// The paired per-class failure gap for one interned class slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassGap {
    /// The class name.
    pub class: String,
    /// Whether the two models carry bit-identical parameters for this
    /// slot (the gap is then exactly zero by construction).
    pub shared: bool,
    /// `PHf_cand(x) − PHf_base(x)`, exact (a point interval).
    pub gap: Interval,
}

/// The outcome of differentially comparing two compiled models.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The overall certified verdict for the candidate vs the baseline.
    pub verdict: Dominance,
    /// The profile-independent certificate, when one exists: a verdict
    /// here holds under **every** demand profile over the shared
    /// universe, not just the supplied ones.
    pub uniform: Option<Dominance>,
    /// Per-class paired gaps in interned order; empty if the comparison
    /// was refused.
    pub class_gaps: Vec<ClassGap>,
    /// Exact system-failure gap per supplied profile, in input order;
    /// empty if the comparison was refused.
    pub profile_gaps: Vec<Interval>,
    /// Everything the parameter passes and the comparator found.
    pub report: Report,
}

/// Differentially compares `candidate` against `baseline`, optionally
/// under specific demand `profiles`, and returns a certified verdict
/// with sound gap bounds.
///
/// Both models must intern the **same** class universe (content-hash
/// equal); otherwise the comparison is refused with
/// [`codes::COMPARE_UNIVERSE_MISMATCH`]. Each supplied profile must bind
/// the shared universe. Any error-severity finding on either model or
/// any profile refuses the comparison (verdict
/// [`Dominance::Incomparable`], no gaps).
#[must_use]
pub fn compare(
    baseline: &CompiledModel,
    candidate: &CompiledModel,
    profiles: &[CompiledProfile],
) -> Comparison {
    let _span = hmdiv_obs::span("analyze.diff");
    let mut report = Report::new();
    report.merge_prefixed(params::check_model(baseline), "baseline: ");
    report.merge_prefixed(params::check_model(candidate), "candidate: ");
    if baseline.universe().content_hash() != candidate.universe().content_hash() {
        report.emit(
            &codes::COMPARE_UNIVERSE_MISMATCH,
            PASS,
            format!(
                "baseline interns {} classes (hash {:016x}), candidate {} (hash {:016x}); no slot pairing exists",
                baseline.universe().len(),
                baseline.universe().content_hash(),
                candidate.universe().len(),
                candidate.universe().content_hash()
            ),
        );
    }
    if !report.has_errors() {
        for (k, profile) in profiles.iter().enumerate() {
            report.merge_prefixed(
                params::check_profile(baseline.universe(), profile),
                &format!("profile {k}: "),
            );
        }
    }
    if report.has_errors() {
        return Comparison {
            verdict: Dominance::Incomparable,
            uniform: None,
            class_gaps: Vec::new(),
            profile_gaps: Vec::new(),
            report,
        };
    }

    let n = baseline.len();
    let cf_base = baseline.class_failure_slice();
    let cf_cand = candidate.class_failure_slice();
    let mut class_gaps = Vec::with_capacity(n);
    let (mut any_better, mut any_worse) = (false, false);
    for i in 0..n {
        let shared = slot_is_shared(baseline, candidate, i);
        let gap = if shared {
            Interval::point(0.0)
        } else {
            Interval::point(cf_cand[i] - cf_base[i])
        };
        any_better |= gap.hi < 0.0;
        any_worse |= gap.lo > 0.0;
        class_gaps.push(ClassGap {
            class: baseline.universe().class(i as u32).name().to_owned(),
            shared,
            gap,
        });
    }
    // A one-sided gap vector certifies the verdict for every profile:
    // eq. (8) is a nonnegative-weighted sum evaluated with monotone
    // round-to-nearest adds and multiplies.
    let uniform = match (any_better, any_worse) {
        (true, false) => Some(Dominance::Dominates),
        (false, true) => Some(Dominance::Dominated),
        _ => None,
    };

    let profile_gaps: Vec<Interval> = profiles
        .iter()
        .map(|p| {
            Interval::point(
                candidate.system_failure(p).value() - baseline.system_failure(p).value(),
            )
        })
        .collect();

    let verdict = uniform.unwrap_or_else(|| {
        let (mut le, mut lt, mut ge, mut gt) = (true, false, true, false);
        for g in &profile_gaps {
            le &= g.hi <= 0.0;
            lt |= g.hi < 0.0;
            ge &= g.lo >= 0.0;
            gt |= g.lo > 0.0;
        }
        if le && lt {
            Dominance::Dominates
        } else if ge && gt {
            Dominance::Dominated
        } else {
            Dominance::Incomparable
        }
    });

    let shared_count = class_gaps.iter().filter(|g| g.shared).count();
    match verdict {
        Dominance::Incomparable => {
            let worst = class_gaps
                .iter()
                .map(|g| g.gap.hi)
                .fold(f64::NEG_INFINITY, f64::max);
            let best = class_gaps
                .iter()
                .map(|g| g.gap.lo)
                .fold(f64::INFINITY, f64::min);
            report.emit(
                &codes::GAP_INDETERMINATE,
                PASS,
                format!(
                    "class gaps span [{best:.9}, {worst:.9}] across {n} classes ({shared_count} shared); neither design dominates"
                ),
            );
        }
        _ => {
            let scope = if uniform.is_some() {
                "every demand profile over the shared universe".to_owned()
            } else {
                format!("all {} supplied demand profiles", profiles.len())
            };
            report.emit(
                &codes::DOMINANCE_VERDICT,
                PASS,
                format!(
                    "candidate {} baseline for {scope} ({n} classes, {shared_count} shared)",
                    verdict.label()
                ),
            );
        }
    }

    Comparison {
        verdict,
        uniform,
        class_gaps,
        profile_gaps,
        report,
    }
}

/// Whether slot `i` carries bit-identical parameters in both models.
/// Bit comparison (not float equality) is deliberate: shared means *the
/// same slot*, and distinguishes e.g. `0.0` from `-0.0`.
fn slot_is_shared(a: &CompiledModel, b: &CompiledModel, i: usize) -> bool {
    a.p_mf_slice()[i].to_bits() == b.p_mf_slice()[i].to_bits()
        && a.p_hf_given_ms_slice()[i].to_bits() == b.p_hf_given_ms_slice()[i].to_bits()
        && a.p_hf_given_mf_slice()[i].to_bits() == b.p_hf_given_mf_slice()[i].to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    #[test]
    fn improved_model_dominates_the_baseline_uniformly() {
        let base = paper::example_model().unwrap();
        let better = paper::model_improved_on_difficult().unwrap();
        let cmp = compare(base.compiled(), better.compiled(), &[]);
        assert_eq!(cmp.verdict, Dominance::Dominates);
        assert_eq!(cmp.uniform, Some(Dominance::Dominates));
        assert!(!cmp.report.has_errors());
        // The easy slot is untouched (shared), the difficult slot improves.
        let easy = cmp.class_gaps.iter().find(|g| g.class == "easy").unwrap();
        let difficult = cmp
            .class_gaps
            .iter()
            .find(|g| g.class == "difficult")
            .unwrap();
        assert!(easy.shared && easy.gap == Interval::point(0.0));
        assert!(!difficult.shared && difficult.gap.hi < 0.0);
        let codes: Vec<&str> = cmp.report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM038"), "{codes:?}");
    }

    #[test]
    fn swapping_sides_flips_the_verdict() {
        let base = paper::example_model().unwrap();
        let better = paper::model_improved_on_difficult().unwrap();
        let cmp = compare(better.compiled(), base.compiled(), &[]);
        assert_eq!(cmp.verdict, Dominance::Dominated);
        assert_eq!(cmp.uniform, Some(Dominance::Dominated));
    }

    #[test]
    fn identical_models_are_incomparable_with_zero_gaps() {
        let base = paper::example_model().unwrap();
        let cmp = compare(base.compiled(), base.compiled(), &[]);
        assert_eq!(cmp.verdict, Dominance::Incomparable);
        assert_eq!(cmp.uniform, None);
        assert!(cmp.class_gaps.iter().all(|g| g.shared));
        let codes: Vec<&str> = cmp.report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM039"), "{codes:?}");
    }

    #[test]
    fn mixed_gaps_fall_back_to_supplied_profiles() {
        use hmdiv_core::{ClassParams, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        // Candidate better on easy, worse on difficult: no uniform
        // certificate, but under an easy-heavy profile it wins.
        let base = paper::example_model().unwrap();
        let cand = SequentialModel::new(
            ModelParams::builder()
                .class("easy", ClassParams::new(p(0.007), p(0.14), p(0.18)))
                .class("difficult", ClassParams::new(p(0.8), p(0.40), p(0.90)))
                .build()
                .unwrap(),
        );
        let no_profiles = compare(base.compiled(), cand.compiled(), &[]);
        assert_eq!(no_profiles.verdict, Dominance::Incomparable);
        assert_eq!(no_profiles.uniform, None);

        let easy_heavy = hmdiv_core::DemandProfile::builder()
            .class("easy", 0.99)
            .class("difficult", 0.01)
            .build()
            .unwrap();
        let bound = base.compiled().bind_profile(&easy_heavy).unwrap();
        let cmp = compare(
            base.compiled(),
            cand.compiled(),
            std::slice::from_ref(&bound),
        );
        assert_eq!(cmp.verdict, Dominance::Dominates);
        assert_eq!(cmp.uniform, None, "certificate must stay profile-scoped");
        assert_eq!(cmp.profile_gaps.len(), 1);
        assert!(cmp.profile_gaps[0].hi < 0.0);
        // The gap is the exact paired difference.
        let want = cand.compiled().system_failure(&bound).value()
            - base.compiled().system_failure(&bound).value();
        assert_eq!(cmp.profile_gaps[0], Interval::point(want));
    }

    #[test]
    fn universe_mismatch_is_refused_with_hm037() {
        use hmdiv_core::{ClassParams, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        let base = paper::example_model().unwrap();
        let alien = SequentialModel::new(
            ModelParams::builder()
                .class("weird", ClassParams::new(p(0.1), p(0.2), p(0.3)))
                .build()
                .unwrap(),
        );
        let cmp = compare(base.compiled(), alien.compiled(), &[]);
        assert_eq!(cmp.verdict, Dominance::Incomparable);
        assert!(cmp.class_gaps.is_empty() && cmp.profile_gaps.is_empty());
        assert_eq!(cmp.report.first_error().unwrap().code, "HM037");
    }

    #[test]
    fn profile_over_wrong_universe_is_refused() {
        use hmdiv_core::{ClassParams, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        let base = paper::example_model().unwrap();
        let alien = SequentialModel::new(
            ModelParams::builder()
                .class("weird", ClassParams::new(p(0.1), p(0.2), p(0.3)))
                .build()
                .unwrap(),
        );
        let alien_profile = hmdiv_core::DemandProfile::builder()
            .class("weird", 1.0)
            .build()
            .unwrap();
        let bound = alien.compiled().bind_profile(&alien_profile).unwrap();
        let cmp = compare(
            base.compiled(),
            paper::model_improved_on_easy().unwrap().compiled(),
            &[bound],
        );
        assert_eq!(cmp.verdict, Dominance::Incomparable);
        assert!(cmp.report.has_errors());
    }
}
