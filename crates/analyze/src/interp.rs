//! Interval abstract interpretation of compiled structure functions.
//!
//! Every operator a postfix program can contain — series (conjunction),
//! parallel (disjunction), k-of-n — is *monotone nondecreasing* in each
//! child's reliability, and the exact evaluator's factoring over repeated
//! components (a convex mixture weighted by the conditioned component's
//! reliability, with the "works" branch never below the "fails" branch)
//! preserves that monotonicity. System reliability is therefore monotone
//! nonincreasing in every component's *failure* probability, so sound
//! bounds come from two concrete evaluations: the lower reliability bound
//! uses every component's failure-probability upper endpoint, the upper
//! bound uses every lower endpoint. Both runs reuse
//! [`CompiledBlock::reliability`] — the abstract semantics is the concrete
//! semantics at the interval corners, so the bounds inherit the exact
//! evaluator's factoring and its bit-for-bit arithmetic.
//!
//! The same machinery drives a relevance check: Birnbaum importance
//! `B_i = R(q, q_i = 0) − R(q, q_i = 1)` evaluated at the interior point
//! `q = 0.5` is strictly positive for every component the structure
//! function depends on, and zero exactly for dead ones. A monotone
//! structure function with no dead components is *coherent* (Barlow &
//! Proschan's sense), which is what licenses reading the paper's
//! importance measures off it.

use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::RbdError;

use crate::diag::{codes, Report};
use crate::verifier::{verify, PostfixProgram};

/// The pass name used in diagnostics from this module.
const PASS: &str = "interval";

/// Birnbaum importance below this is treated as zero (dead component).
/// Relevant components at `q = 0.5` contribute at least `2^-(n-1)`, far
/// above this for any diagram the exact evaluator accepts.
const RELEVANCE_EPS: f64 = 1e-12;

/// A closed interval of probabilities. Plain data; validity (finite,
/// `0 ≤ lo ≤ hi ≤ 1`) is checked by the analysis, which reports
/// violations as [`codes::BAD_INTERVAL`] rather than panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The full unit interval `[0,1]` — the "know nothing" element.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// An interval from endpoints.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// The degenerate interval `[p,p]`.
    #[must_use]
    pub fn point(p: f64) -> Self {
        Interval { lo: p, hi: p }
    }

    /// Whether the interval is a valid sub-interval of `[0,1]`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.lo.is_finite()
            && self.hi.is_finite()
            && self.lo >= 0.0
            && self.hi <= 1.0
            && self.lo <= self.hi
    }

    /// Whether `v` lies within the interval (inclusive).
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// The outcome of statically analysing one structure function.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureAnalysis {
    /// Sound bounds on system *reliability*, or `None` if the program or
    /// its intervals were invalid.
    pub bounds: Option<Interval>,
    /// Names of components the structure function does not depend on.
    pub dead: Vec<String>,
    /// Everything the verifier and the interpreter found.
    pub report: Report,
}

/// Verifies a compiled structure function and bounds its reliability.
///
/// `failure_bounds[i]` is the failure-probability interval for the
/// component at interned index `i` (the convention of
/// [`CompiledBlock::reliability`], which consumes failure probabilities).
///
/// # Panics
///
/// Panics if `failure_bounds.len() != compiled.component_count()`, like
/// every dense-slice API on [`CompiledBlock`].
#[must_use]
pub fn analyze_block(compiled: &CompiledBlock, failure_bounds: &[Interval]) -> StructureAnalysis {
    let _span = hmdiv_obs::span("analyze.interval");
    assert_eq!(
        failure_bounds.len(),
        compiled.component_count(),
        "interval vector length must equal component count"
    );
    let mut report = verify(&PostfixProgram::from(compiled));
    for (i, iv) in failure_bounds.iter().enumerate() {
        if !iv.is_valid() {
            report.emit(
                &codes::BAD_INTERVAL,
                PASS,
                format!(
                    "component `{}`: [{}, {}] is not a sub-interval of [0,1]",
                    compiled.component_names()[i],
                    iv.lo,
                    iv.hi
                ),
            );
        }
    }
    if report.has_errors() {
        return StructureAnalysis {
            bounds: None,
            dead: Vec::new(),
            report,
        };
    }

    // Corner evaluations: reliability is monotone nonincreasing in each
    // failure probability, so the all-hi corner is the reliability floor
    // and the all-lo corner the ceiling.
    let at_corner = |pick: fn(&Interval) -> f64| -> Result<Probability, RbdError> {
        let q: Vec<Probability> = failure_bounds
            .iter()
            .map(|iv| Probability::clamped(pick(iv)))
            .collect();
        compiled.reliability(&q)
    };
    let (bounds, widened) = match (at_corner(|iv| iv.hi), at_corner(|iv| iv.lo)) {
        (Ok(r_lo), Ok(r_hi)) => {
            let iv = Interval::new(r_lo.value(), r_hi.value());
            report.emit(
                &codes::RELIABILITY_BOUNDS,
                PASS,
                format!("system reliability in [{:.9}, {:.9}]", iv.lo, iv.hi),
            );
            (iv, false)
        }
        _ => {
            // Exact factoring refused (too many repeated components); the
            // sound answer at this point is the whole unit interval.
            report.emit(
                &codes::BOUNDS_WIDENED,
                PASS,
                format!(
                    "{} repeated components exceed the exact-factoring limit; bounds widened to [0,1]",
                    compiled.repeated_indices().len()
                ),
            );
            (Interval::UNIT, true)
        }
    };

    let dead = if widened {
        Vec::new() // relevance needs the exact evaluator; skip when it refused
    } else {
        dead_components(compiled, &mut report)
    };
    if dead.is_empty() && !report.has_errors() && !widened {
        report.emit(
            &codes::COHERENT_STRUCTURE,
            PASS,
            "all operators are monotone and every component is relevant".to_owned(),
        );
    }
    StructureAnalysis {
        bounds: Some(bounds),
        dead,
        report,
    }
}

/// Components with zero Birnbaum importance at the interior point
/// `q = 0.5`, which for a monotone structure is exactly the set the
/// structure function ignores.
fn dead_components(compiled: &CompiledBlock, report: &mut Report) -> Vec<String> {
    let n = compiled.component_count();
    let half = vec![Probability::HALF; n];
    let mut dead = Vec::new();
    for i in 0..n {
        let mut q = half.clone();
        q[i] = Probability::ZERO;
        let r_perfect = compiled.reliability(&q);
        q[i] = Probability::ONE;
        let r_failed = compiled.reliability(&q);
        let (Ok(r_perfect), Ok(r_failed)) = (r_perfect, r_failed) else {
            return Vec::new(); // exact evaluator refused; no relevance verdict
        };
        let birnbaum = r_perfect.value() - r_failed.value();
        if birnbaum.abs() <= RELEVANCE_EPS {
            let name = compiled.component_names()[i].clone();
            report.emit(
                &codes::DEAD_COMPONENT,
                PASS,
                format!("component `{name}` has zero Birnbaum importance; the structure function does not depend on it"),
            );
            dead.push(name);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_rbd::Block;

    fn fig2() -> CompiledBlock {
        CompiledBlock::compile(&Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]))
        .unwrap()
    }

    #[test]
    fn point_intervals_bound_tightly() {
        let compiled = fig2();
        // Interned order Hc, Hd, Md.
        let iv = [
            Interval::point(0.1),
            Interval::point(0.2),
            Interval::point(0.07),
        ];
        let analysis = analyze_block(&compiled, &iv);
        let bounds = analysis.bounds.unwrap();
        let expected = (1.0 - 0.2 * 0.07) * (1.0 - 0.1);
        assert!((bounds.lo - expected).abs() < 1e-15);
        assert!((bounds.hi - expected).abs() < 1e-15);
        assert!(analysis.dead.is_empty());
        let codes: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, ["HM011", "HM014"]);
    }

    #[test]
    fn wide_intervals_nest_point_results() {
        let compiled = fig2();
        let wide = [
            Interval::new(0.05, 0.3),
            Interval::new(0.1, 0.4),
            Interval::new(0.0, 0.2),
        ];
        let analysis = analyze_block(&compiled, &wide);
        let bounds = analysis.bounds.unwrap();
        // Any concrete point inside the box evaluates within the bounds.
        for (qa, qb, qc) in [(0.05, 0.1, 0.0), (0.3, 0.4, 0.2), (0.17, 0.25, 0.11)] {
            let q = [
                Probability::clamped(qa),
                Probability::clamped(qb),
                Probability::clamped(qc),
            ];
            let r = compiled.reliability(&q).unwrap().value();
            assert!(
                bounds.lo - 1e-12 <= r && r <= bounds.hi + 1e-12,
                "{r} outside [{}, {}]",
                bounds.lo,
                bounds.hi
            );
        }
    }

    #[test]
    fn invalid_intervals_are_rejected() {
        let compiled = fig2();
        for bad in [
            Interval::new(0.5, 0.2),
            Interval::new(-0.1, 0.5),
            Interval::new(0.0, 1.5),
            Interval::new(f64::NAN, 0.5),
        ] {
            let iv = [Interval::point(0.1), bad, Interval::point(0.1)];
            let analysis = analyze_block(&compiled, &iv);
            assert!(analysis.bounds.is_none());
            assert_eq!(analysis.report.first_error().unwrap().code, "HM010");
        }
    }

    #[test]
    fn dead_component_is_flagged() {
        // series(a, parallel(a, b)): works iff a works, so b is dead.
        let compiled = CompiledBlock::compile(&Block::series(vec![
            Block::component("a"),
            Block::parallel(vec![Block::component("a"), Block::component("b")]),
        ]))
        .unwrap();
        let analysis = analyze_block(&compiled, &[Interval::point(0.2), Interval::point(0.3)]);
        assert_eq!(analysis.dead, ["b"]);
        let codes: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(codes.contains(&"HM013"), "{codes:?}");
        assert!(!codes.contains(&"HM014"), "{codes:?}");
        // The bounds still agree with the exact evaluation R = r_a.
        let bounds = analysis.bounds.unwrap();
        assert!((bounds.lo - 0.8).abs() < 1e-15);
        assert!((bounds.hi - 0.8).abs() < 1e-15);
    }

    #[test]
    fn repeated_components_stay_sound() {
        // parallel(series(a,b), series(a,c)): a repeated, all relevant.
        let compiled = CompiledBlock::compile(&Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]))
        .unwrap();
        let iv = [
            Interval::new(0.1, 0.5),
            Interval::new(0.2, 0.3),
            Interval::new(0.0, 0.9),
        ];
        let analysis = analyze_block(&compiled, &iv);
        let bounds = analysis.bounds.unwrap();
        assert!(analysis.dead.is_empty());
        for (qa, qb, qc) in [(0.1, 0.2, 0.0), (0.5, 0.3, 0.9), (0.3, 0.25, 0.45)] {
            let q = [
                Probability::clamped(qa),
                Probability::clamped(qb),
                Probability::clamped(qc),
            ];
            let r = compiled.reliability(&q).unwrap().value();
            assert!(bounds.lo - 1e-12 <= r && r <= bounds.hi + 1e-12);
        }
    }

    #[test]
    fn oversized_factoring_widens_to_unit() {
        // More than MAX_REPEATED shared components: exact evaluation
        // refuses, so the analysis must widen rather than fail.
        let shared: Vec<Block> = (0..25)
            .map(|i| Block::component(format!("c{i:02}")))
            .collect();
        let left = Block::series(shared.clone());
        let right = Block::series(shared);
        let compiled = CompiledBlock::compile(&Block::parallel(vec![left, right])).unwrap();
        let iv = vec![Interval::point(0.1); compiled.component_count()];
        let analysis = analyze_block(&compiled, &iv);
        assert_eq!(analysis.bounds.unwrap(), Interval::UNIT);
        assert!(!analysis.report.has_errors());
        let codes: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(codes.contains(&"HM012"), "{codes:?}");
    }

    #[test]
    fn analysis_is_deterministic() {
        let compiled = fig2();
        let iv = [
            Interval::new(0.0, 0.4),
            Interval::new(0.1, 0.2),
            Interval::point(0.3),
        ];
        let a = analyze_block(&compiled, &iv);
        let b = analyze_block(&compiled, &iv);
        assert_eq!(a, b);
        assert_eq!(a.report.render_json(), b.report.render_json());
    }
}
