//! Forward-mode interval algorithmic differentiation: certified per-slot
//! sensitivity (Birnbaum derivative) bounds and direction certificates.
//!
//! [`interp`](crate::interp) bounds the *value* of a structure function;
//! this pass bounds its *partial derivatives*. For each component slot it
//! computes a sound interval on `∂R/∂r_j` — the Birnbaum importance of
//! the slot — valid everywhere inside the per-component probability box,
//! and derives a **direction certificate** from the interval's sign:
//!
//! * both endpoints ≥ 0 → the slot is certified *nondecreasing*
//!   (coherent: improving the component never hurts the system);
//! * both endpoints ≤ 0 → certified *nonincreasing* — an anti-monotone,
//!   non-coherent slot ([`codes::NON_COHERENT_SLOT`]);
//! * a sign-straddling interval certifies nothing
//!   ([`codes::SIGN_INDETERMINATE`]).
//!
//! Two bounding engines, chosen by program shape:
//!
//! * **Forward-mode interval AD** when no component repeats: every stack
//!   entry carries a dual `(value interval, derivative-interval vector)`
//!   and each postfix op propagates both — products via prefix/suffix
//!   partial products for series/parallel, a count-distribution dynamic
//!   program for k-of-n. With no repeats the postfix program *is* the
//!   exact semantics, so the derivative enclosure needs no monotonicity
//!   assumption at all: the sign comes out of the arithmetic.
//! * **Corner-paired factoring** when components repeat: the naive
//!   program is then not the exact (factored) semantics, so the pass
//!   falls back on the same monotone-corner machinery the interval
//!   interpreter uses. `R` is multilinear in each `r_j`, hence
//!   `B_j = R(q_j=0, rest) − R(q_j=1, rest)` with each term monotone
//!   nonincreasing in the remaining failure probabilities — four exact
//!   corner evaluations per slot bound it soundly. When exact factoring
//!   refuses (too many repeats) the bounds widen to the trivial `[0,1]`
//!   with [`codes::SENSITIVITY_WIDENED`].
//!
//! The same derivative algebra applied to eq. (8) of the paper gives
//! closed-form per-class sensitivities of the *sequential model*:
//! `∂PHf/∂PMf(x) = p(x)·t(x)`, `∂PHf/∂PHf|Ms(x) = p(x)·(1−PMf(x))`,
//! `∂PHf/∂PHf|Mf(x) = p(x)·PMf(x)` — see [`model_sensitivity`].

use hmdiv_core::{CompiledModel, CompiledProfile};
use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::{CompiledBlock, Op};

use crate::diag::{codes, Report};
use crate::interp::Interval;
use crate::params;
use crate::verifier::{verify, PostfixProgram};

/// The pass name used in diagnostics from this module.
const PASS: &str = "sens";

/// Derivative magnitudes below this are treated as numerical zero when
/// classifying a slot's direction (same spirit as the interval
/// interpreter's relevance epsilon): round-to-nearest interval arithmetic
/// accumulates at most a few hundred ulps of slack through any program
/// the evaluator accepts, far under this floor.
const SIGN_EPS: f64 = 1e-9;

/// The certified direction of one scalar output in one parameter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Certified nondecreasing (derivative interval ≥ 0 up to the noise
    /// floor, with room above it).
    Increasing,
    /// Certified nonincreasing (derivative interval ≤ 0 up to the noise
    /// floor, with room below it).
    Decreasing,
    /// Certified numerically zero everywhere in the box.
    Flat,
    /// The derivative interval straddles zero: no certificate.
    Mixed,
}

impl Direction {
    /// The lowercase label used in messages and wire renders.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Direction::Increasing => "increasing",
            Direction::Decreasing => "decreasing",
            Direction::Flat => "flat",
            Direction::Mixed => "mixed",
        }
    }

    /// Classifies a derivative interval against the numerical noise floor.
    fn of(iv: Interval) -> Direction {
        let (neg, pos) = (iv.lo < -SIGN_EPS, iv.hi > SIGN_EPS);
        match (neg, pos) {
            (false, false) => Direction::Flat,
            (false, true) => Direction::Increasing,
            (true, false) => Direction::Decreasing,
            (true, true) => Direction::Mixed,
        }
    }
}

/// Sensitivity bounds for one component slot of a structure function.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSensitivity {
    /// The interned component name.
    pub name: String,
    /// Sound bounds on `∂R/∂r` — the Birnbaum importance of the slot —
    /// over the whole per-component probability box.
    pub derivative: Interval,
    /// The direction certificate derived from the interval's sign.
    pub direction: Direction,
}

/// The outcome of differentiating one structure function.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityAnalysis {
    /// Per-slot derivative bounds, in interned component order; empty if
    /// the program or its intervals were invalid.
    pub slots: Vec<SlotSensitivity>,
    /// Whether exact factoring refused and the bounds are trivial.
    pub widened: bool,
    /// Everything the verifier and the differentiator found.
    pub report: Report,
}

/// Bounds every slot's Birnbaum derivative `∂R/∂r_j` over the given
/// failure-probability box and certifies per-slot directions.
///
/// `failure_bounds[i]` is the failure-probability interval for the
/// component at interned index `i`, exactly as in
/// [`analyze_block`](crate::analyze_block).
///
/// # Panics
///
/// Panics if `failure_bounds.len() != compiled.component_count()`, like
/// every dense-slice API on [`CompiledBlock`].
#[must_use]
pub fn structure_sensitivity(
    compiled: &CompiledBlock,
    failure_bounds: &[Interval],
) -> SensitivityAnalysis {
    let _span = hmdiv_obs::span("analyze.sens");
    assert_eq!(
        failure_bounds.len(),
        compiled.component_count(),
        "interval vector length must equal component count"
    );
    let mut report = verify(&PostfixProgram::from(compiled));
    for (i, iv) in failure_bounds.iter().enumerate() {
        if !iv.is_valid() {
            report.emit(
                &codes::BAD_INTERVAL,
                PASS,
                format!(
                    "component `{}`: [{}, {}] is not a sub-interval of [0,1]",
                    compiled.component_names()[i],
                    iv.lo,
                    iv.hi
                ),
            );
        }
    }
    if report.has_errors() {
        return SensitivityAnalysis {
            slots: Vec::new(),
            widened: false,
            report,
        };
    }

    let n = compiled.component_count();
    let (derivatives, widened, engine) = if compiled.repeated_indices().is_empty() {
        (
            ad_derivatives(compiled, failure_bounds),
            false,
            "forward-mode interval AD",
        )
    } else {
        match corner_derivatives(compiled, failure_bounds) {
            Some(d) => (d, false, "corner-paired factoring"),
            None => (vec![Interval::UNIT; n], true, "widened"),
        }
    };

    if widened {
        report.emit(
            &codes::SENSITIVITY_WIDENED,
            PASS,
            format!(
                "{} repeated components exceed the exact-factoring limit; derivative bounds widened to [0,1]",
                compiled.repeated_indices().len()
            ),
        );
    } else {
        report.emit(
            &codes::SENSITIVITY_BOUNDS,
            PASS,
            format!("Birnbaum derivative bounds computed for {n} component slots via {engine}"),
        );
    }

    let mut slots = Vec::with_capacity(n);
    let mut uncertified = 0usize;
    for (i, derivative) in derivatives.into_iter().enumerate() {
        let name = compiled.component_names()[i].clone();
        let direction = if widened {
            Direction::Mixed
        } else {
            Direction::of(derivative)
        };
        match direction {
            Direction::Mixed if !widened => {
                uncertified += 1;
                report.emit(
                    &codes::SIGN_INDETERMINATE,
                    PASS,
                    format!(
                        "component `{name}`: derivative interval [{:.9}, {:.9}] spans zero; direction uncertified",
                        derivative.lo, derivative.hi
                    ),
                );
            }
            Direction::Decreasing => {
                report.emit(
                    &codes::NON_COHERENT_SLOT,
                    PASS,
                    format!(
                        "component `{name}`: reliability certified nonincreasing in the component ([{:.9}, {:.9}])",
                        derivative.lo, derivative.hi
                    ),
                );
            }
            _ => {}
        }
        slots.push(SlotSensitivity {
            name,
            derivative,
            direction,
        });
    }
    if !widened && uncertified == 0 {
        report.emit(
            &codes::DIRECTIONS_CERTIFIED,
            PASS,
            format!("all {n} component slots carry a direction certificate"),
        );
    }
    SensitivityAnalysis {
        slots,
        widened,
        report,
    }
}

// ---------------------------------------------------------------------------
// Interval algebra over plain `Interval` endpoints. These are *real*
// intervals (derivatives can be negative), unlike the `[0,1]` probability
// intervals the interpreter validates.

fn iv_add(a: Interval, b: Interval) -> Interval {
    Interval::new(a.lo + b.lo, a.hi + b.hi)
}

fn iv_mul(a: Interval, b: Interval) -> Interval {
    let p = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let mut lo = p[0];
    let mut hi = p[0];
    for v in &p[1..] {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    Interval::new(lo, hi)
}

fn iv_sub(a: Interval, b: Interval) -> Interval {
    Interval::new(a.lo - b.hi, a.hi - b.lo)
}

/// `1 − a` for a probability interval.
fn iv_complement(a: Interval) -> Interval {
    Interval::new(1.0 - a.hi, 1.0 - a.lo)
}

/// Intersects a probability enclosure with `[0,1]` (sound: the true value
/// is a probability).
fn iv_clamp01(a: Interval) -> Interval {
    let lo = a.lo.max(0.0);
    Interval::new(lo, a.hi.min(1.0).max(lo))
}

/// Intersects a derivative enclosure with `[-1,1]` (sound: `R` is
/// multilinear in each slot, so every partial is a difference of two
/// probabilities).
fn iv_clamp_unit_ball(a: Interval) -> Interval {
    let lo = a.lo.max(-1.0);
    Interval::new(lo, a.hi.min(1.0).max(lo))
}

// ---------------------------------------------------------------------------
// Engine 1: vector forward-mode interval AD over the postfix program.

/// One abstract stack entry: a value enclosure plus the enclosure of its
/// gradient with respect to every component reliability.
struct Dual {
    val: Interval,
    grad: Vec<Interval>,
}

/// Derivative enclosures `∂R/∂r_j` for a repeat-free program. With no
/// repeated components the postfix program coincides with the exact
/// semantics, so differentiating the program differentiates the model.
fn ad_derivatives(compiled: &CompiledBlock, failure_bounds: &[Interval]) -> Vec<Interval> {
    let n = compiled.component_count();
    let zero_grad = || vec![Interval::point(0.0); n];
    let mut stack: Vec<Dual> = Vec::new();
    for op in compiled.ops() {
        match *op {
            Op::Comp(i) => {
                let mut grad = zero_grad();
                grad[i as usize] = Interval::point(1.0);
                stack.push(Dual {
                    val: iv_complement(failure_bounds[i as usize]),
                    grad,
                });
            }
            Op::Series(k) => {
                let children = stack.split_off(stack.len() - k as usize);
                // ∂(Π v_c)/∂x = Σ_c (Π_{m≠c} v_m) · ∂v_c/∂x, with the
                // partial products formed as prefix·suffix.
                let factors: Vec<Interval> = children.iter().map(|d| d.val).collect();
                let partials = partial_products(&factors);
                stack.push(combine(&children, &factors, &partials, zero_grad()));
            }
            Op::Parallel(k) => {
                let children = stack.split_off(stack.len() - k as usize);
                // R = 1 − Π(1−v_c): ∂R/∂x = Σ_c (Π_{m≠c}(1−v_m)) · ∂v_c/∂x.
                let factors: Vec<Interval> =
                    children.iter().map(|d| iv_complement(d.val)).collect();
                let partials = partial_products(&factors);
                let combined = combine(&children, &factors, &partials, zero_grad());
                stack.push(Dual {
                    val: iv_clamp01(iv_complement(iv_clamp01(product(&factors)))),
                    grad: combined.grad,
                });
            }
            Op::KOfN { k, n: arity } => {
                let children = stack.split_off(stack.len() - arity as usize);
                stack.push(k_of_n_dual(k as usize, &children, n));
            }
        }
    }
    let result = stack.pop().expect("verified program leaves one result");
    result.grad.into_iter().map(iv_clamp_unit_ball).collect()
}

/// `Π factors` as an interval.
fn product(factors: &[Interval]) -> Interval {
    factors
        .iter()
        .fold(Interval::point(1.0), |acc, f| iv_mul(acc, *f))
}

/// `partials[c] = Π_{m≠c} factors[m]` via prefix/suffix products.
fn partial_products(factors: &[Interval]) -> Vec<Interval> {
    let k = factors.len();
    let mut prefix = vec![Interval::point(1.0); k + 1];
    for (c, f) in factors.iter().enumerate() {
        prefix[c + 1] = iv_mul(prefix[c], *f);
    }
    let mut suffix = vec![Interval::point(1.0); k + 1];
    for c in (0..k).rev() {
        suffix[c] = iv_mul(suffix[c + 1], factors[c]);
    }
    (0..k).map(|c| iv_mul(prefix[c], suffix[c + 1])).collect()
}

/// The chain rule for an n-ary product-shaped group: value `Π factors`,
/// gradient `Σ_c partials[c]·grad_c`.
fn combine(
    children: &[Dual],
    factors: &[Interval],
    partials: &[Interval],
    zero: Vec<Interval>,
) -> Dual {
    let mut grad = zero;
    for (child, partial) in children.iter().zip(partials) {
        for (g, cg) in grad.iter_mut().zip(&child.grad) {
            *g = iv_add(*g, iv_mul(*partial, *cg));
        }
    }
    Dual {
        val: iv_clamp01(product(factors)),
        grad,
    }
}

/// Dual evaluation of a k-of-n group through the count-distribution
/// dynamic program: `b[c]` encloses `P(exactly c of the children seen so
/// far work)` and its gradient, updated per child as
/// `b'[c] = b[c−1]·v + b[c]·(1−v)`, whose derivative is
/// `b[c−1]'·v + b[c]'·(1−v) + (b[c−1] − b[c])·v'`.
fn k_of_n_dual(k: usize, children: &[Dual], n_slots: usize) -> Dual {
    let zero = Interval::point(0.0);
    let mut counts = vec![Dual {
        val: Interval::point(1.0),
        grad: vec![zero; n_slots],
    }];
    for child in children {
        let comp = iv_complement(child.val);
        let mut next = Vec::with_capacity(counts.len() + 1);
        for c in 0..=counts.len() {
            let from_below = c.checked_sub(1).and_then(|i| counts.get(i));
            let stay = counts.get(c);
            let val = iv_clamp01(iv_add(
                from_below.map_or(zero, |d| iv_mul(d.val, child.val)),
                stay.map_or(zero, |d| iv_mul(d.val, comp)),
            ));
            let jump = iv_sub(
                from_below.map_or(zero, |d| d.val),
                stay.map_or(zero, |d| d.val),
            );
            let grad = (0..n_slots)
                .map(|j| {
                    let mut g = iv_mul(jump, child.grad[j]);
                    if let Some(d) = from_below {
                        g = iv_add(g, iv_mul(d.grad[j], child.val));
                    }
                    if let Some(d) = stay {
                        g = iv_add(g, iv_mul(d.grad[j], comp));
                    }
                    iv_clamp_unit_ball(g)
                })
                .collect();
            next.push(Dual { val, grad });
        }
        counts = next;
    }
    let mut val = zero;
    let mut grad = vec![zero; n_slots];
    for d in counts.iter().skip(k) {
        val = iv_add(val, d.val);
        for (g, dg) in grad.iter_mut().zip(&d.grad) {
            *g = iv_add(*g, *dg);
        }
    }
    Dual {
        val: iv_clamp01(val),
        grad: grad.into_iter().map(iv_clamp_unit_ball).collect(),
    }
}

// ---------------------------------------------------------------------------
// Engine 2: corner-paired Birnbaum bounds through the exact evaluator.

/// Derivative enclosures for a program with repeated components: `R` is
/// multilinear in each `r_j`, so `∂R/∂r_j = R(q_j=0, rest) − R(q_j=1,
/// rest)`, and each term is monotone nonincreasing in the remaining
/// failure probabilities — four exact corner evaluations bound it.
/// Returns `None` when exact factoring refuses.
fn corner_derivatives(
    compiled: &CompiledBlock,
    failure_bounds: &[Interval],
) -> Option<Vec<Interval>> {
    let n = compiled.component_count();
    let corner = |pick: fn(&Interval) -> f64| -> Vec<Probability> {
        failure_bounds
            .iter()
            .map(|iv| Probability::clamped(pick(iv)))
            .collect()
    };
    let lo_q = corner(|iv| iv.lo);
    let hi_q = corner(|iv| iv.hi);
    let eval = |base: &[Probability], j: usize, pin: Probability| -> Option<f64> {
        let mut q = base.to_vec();
        q[j] = pin;
        compiled.reliability(&q).ok().map(|r| r.value())
    };
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let r0_lo = eval(&lo_q, j, Probability::ZERO)?;
        let r1_hi = eval(&hi_q, j, Probability::ONE)?;
        let r0_hi = eval(&hi_q, j, Probability::ZERO)?;
        let r1_lo = eval(&lo_q, j, Probability::ONE)?;
        // The corner-monotonicity theorem gives B_j ≥ 0, so the crossed
        // lower corner intersects with zero.
        let lo = (r0_hi - r1_lo).max(0.0);
        let hi = (r0_lo - r1_hi).min(1.0).max(lo);
        out.push(Interval::new(lo, hi));
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Eq. (8) sensitivities of the sequential model.

/// Closed-form per-class sensitivities of system failure under one
/// demand profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSensitivity {
    /// The class name.
    pub class: String,
    /// Its profile weight `p(x)` (zero when the profile never demands it).
    pub weight: f64,
    /// `∂PHf/∂PMf(x) = p(x)·t(x)` — the Birnbaum sensitivity of system
    /// failure to the machine's failure probability on this class.
    pub d_machine_failure: Interval,
    /// `∂PHf/∂PHf|Ms(x) = p(x)·(1−PMf(x))`.
    pub d_human_given_success: Interval,
    /// `∂PHf/∂PHf|Mf(x) = p(x)·PMf(x)`.
    pub d_human_given_failure: Interval,
    /// The direction of system failure in `PMf(x)`: `Increasing` is the
    /// coherent expectation (a worse machine makes a worse system).
    pub direction: Direction,
}

/// The outcome of differentiating eq. (8) for one model + profile pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSensitivity {
    /// Per-class sensitivities in interned class order; empty if the
    /// model or profile carried error-severity findings.
    pub classes: Vec<ClassSensitivity>,
    /// Everything the parameter pass and the differentiator found.
    pub report: Report,
}

/// Differentiates eq. (8) of the paper: per-class partial derivatives of
/// system failure in each parameter slot, with direction certificates.
///
/// Eq. (8) is linear in every slot, so the partials are exact closed
/// forms and every slot gets a certificate; the interesting finding is a
/// class whose `t(x) < 0` makes `PMf(x)` *anti-monotone* — improving the
/// machine there worsens the system ([`codes::NON_COHERENT_SLOT`],
/// echoing the parameter pass's [`codes::NEGATIVE_COHERENCE_INDEX`]).
#[must_use]
pub fn model_sensitivity(model: &CompiledModel, profile: &CompiledProfile) -> ModelSensitivity {
    let _span = hmdiv_obs::span("analyze.sens");
    let mut report = params::check_model(model);
    report.merge(params::check_profile(model.universe(), profile));
    if report.has_errors() {
        return ModelSensitivity {
            classes: Vec::new(),
            report,
        };
    }
    let n = model.len();
    let mut weights = vec![0.0f64; n];
    for (idx, w) in profile.iter() {
        weights[idx as usize] = w;
    }
    let p_mf = model.p_mf_slice();
    let p_hf_ms = model.p_hf_given_ms_slice();
    let p_hf_mf = model.p_hf_given_mf_slice();
    let mut classes = Vec::with_capacity(n);
    let mut non_coherent = 0usize;
    for i in 0..n {
        let class = model.universe().class(i as u32).name().to_owned();
        let t = p_hf_mf[i] - p_hf_ms[i];
        let d_mf = weights[i] * t;
        let direction = Direction::of(Interval::point(d_mf));
        if direction == Direction::Decreasing {
            non_coherent += 1;
            report.emit(
                &codes::NON_COHERENT_SLOT,
                PASS,
                format!(
                    "class `{class}`: ∂PHf/∂PMf = {d_mf:.9} < 0 — improving the machine here worsens the system"
                ),
            );
        }
        classes.push(ClassSensitivity {
            class,
            weight: weights[i],
            d_machine_failure: Interval::point(d_mf),
            d_human_given_success: Interval::point(weights[i] * (1.0 - p_mf[i])),
            d_human_given_failure: Interval::point(weights[i] * p_mf[i]),
            direction,
        });
    }
    report.emit(
        &codes::SENSITIVITY_BOUNDS,
        PASS,
        format!(
            "eq. (8) sensitivity bounds computed for {n} class slots ({non_coherent} non-coherent)"
        ),
    );
    report.emit(
        &codes::DIRECTIONS_CERTIFIED,
        PASS,
        format!("all {n} class slots carry a direction certificate (eq. (8) is linear per slot)"),
    );
    ModelSensitivity { classes, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_rbd::Block;

    fn fig2() -> CompiledBlock {
        CompiledBlock::compile(&Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]))
        .unwrap()
    }

    #[test]
    fn point_intervals_give_exact_birnbaum_derivatives() {
        let compiled = fig2();
        // Interned order Hc, Hd, Md with failure probs 0.1, 0.2, 0.07:
        // R = (1 − q_Hd·q_Md)·(1 − q_Hc).
        let iv = [
            Interval::point(0.1),
            Interval::point(0.2),
            Interval::point(0.07),
        ];
        let analysis = structure_sensitivity(&compiled, &iv);
        assert!(!analysis.widened);
        assert!(!analysis.report.has_errors());
        // ∂R/∂r_Hc = 1 − q_Hd·q_Md; ∂R/∂r_Hd = q_Md·(1−q_Hc);
        // ∂R/∂r_Md = q_Hd·(1−q_Hc).
        let expected = [1.0 - 0.2 * 0.07, 0.07 * 0.9, 0.2 * 0.9];
        for (slot, want) in analysis.slots.iter().zip(expected) {
            assert!(
                (slot.derivative.lo - want).abs() < 1e-12
                    && (slot.derivative.hi - want).abs() < 1e-12,
                "{}: [{}, {}] vs {want}",
                slot.name,
                slot.derivative.lo,
                slot.derivative.hi
            );
            assert_eq!(slot.direction, Direction::Increasing);
        }
        let codes: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, ["HM033", "HM034"]);
    }

    #[test]
    fn wide_intervals_enclose_interior_derivatives() {
        let compiled = fig2();
        let iv = [
            Interval::new(0.05, 0.3),
            Interval::new(0.1, 0.4),
            Interval::new(0.0, 0.2),
        ];
        let analysis = structure_sensitivity(&compiled, &iv);
        // At the interior point (0.17, 0.25, 0.11):
        // ∂R/∂r_Hc = 1 − 0.25·0.11, ∂R/∂r_Hd = 0.11·0.83, ∂R/∂r_Md = 0.25·0.83.
        let interior = [1.0 - 0.25 * 0.11, 0.11 * 0.83, 0.25 * 0.83];
        for (slot, want) in analysis.slots.iter().zip(interior) {
            assert!(
                slot.derivative.lo - 1e-9 <= want && want <= slot.derivative.hi + 1e-9,
                "{}: {want} outside [{}, {}]",
                slot.name,
                slot.derivative.lo,
                slot.derivative.hi
            );
        }
    }

    #[test]
    fn k_of_n_wide_intervals_may_lose_the_sign_but_stay_sound() {
        let compiled = CompiledBlock::compile(&Block::k_of_n(
            2,
            vec![
                Block::component("x"),
                Block::component("y"),
                Block::component("z"),
            ],
        ))
        .unwrap();
        let iv = [Interval::UNIT; 3];
        let analysis = structure_sensitivity(&compiled, &iv);
        assert!(!analysis.widened);
        // Soundness: the true derivative at q = (0.5, 0.5, 0.5) is
        // P(exactly 1 of the others works) = 0.5.
        for slot in &analysis.slots {
            assert!(slot.derivative.contains(0.5), "{slot:?}");
        }
        // The DP subtraction can push the abstract lower bound below
        // zero on the full unit box; if it does, HM035 must say so.
        let has_mixed = analysis
            .slots
            .iter()
            .any(|s| s.direction == Direction::Mixed);
        let reported: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(has_mixed, reported.contains(&"HM035"), "{reported:?}");
    }

    #[test]
    fn repeated_components_use_corner_bounds() {
        // parallel(series(a,b), series(a,c)): a repeated.
        let compiled = CompiledBlock::compile(&Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]))
        .unwrap();
        let iv = [
            Interval::point(0.5),
            Interval::point(0.5),
            Interval::point(1.0),
        ];
        let analysis = structure_sensitivity(&compiled, &iv);
        assert!(!analysis.widened);
        // R = r_a(r_b + r_c − r_b·r_c) with r = (0.5, 0.5, 0.0):
        // ∂R/∂r_a = 0.5, ∂R/∂r_b = 0.5·1 = 0.5, ∂R/∂r_c = 0.5·0.5 = 0.25.
        let expected = [0.5, 0.5, 0.25];
        for (slot, want) in analysis.slots.iter().zip(expected) {
            assert!(
                (slot.derivative.lo - want).abs() < 1e-12
                    && (slot.derivative.hi - want).abs() < 1e-12,
                "{}: [{}, {}] vs {want}",
                slot.name,
                slot.derivative.lo,
                slot.derivative.hi
            );
        }
    }

    #[test]
    fn oversized_factoring_widens_sensitivity() {
        let shared: Vec<Block> = (0..25)
            .map(|i| Block::component(format!("c{i:02}")))
            .collect();
        let compiled = CompiledBlock::compile(&Block::parallel(vec![
            Block::series(shared.clone()),
            Block::series(shared),
        ]))
        .unwrap();
        let iv = vec![Interval::point(0.1); compiled.component_count()];
        let analysis = structure_sensitivity(&compiled, &iv);
        assert!(analysis.widened);
        assert!(analysis
            .slots
            .iter()
            .all(|s| s.derivative == Interval::UNIT));
        assert!(analysis
            .slots
            .iter()
            .all(|s| s.direction == Direction::Mixed));
        let codes: Vec<&str> = analysis
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(codes.contains(&"HM040"), "{codes:?}");
        assert!(!codes.contains(&"HM034"), "{codes:?}");
    }

    #[test]
    fn invalid_intervals_are_rejected() {
        let compiled = fig2();
        let iv = [
            Interval::point(0.1),
            Interval::new(0.5, 0.2),
            Interval::point(0.1),
        ];
        let analysis = structure_sensitivity(&compiled, &iv);
        assert!(analysis.slots.is_empty());
        assert_eq!(analysis.report.first_error().unwrap().code, "HM010");
    }

    #[test]
    fn model_sensitivity_matches_the_design_leverage_formula() {
        let model = hmdiv_core::paper::example_model().unwrap();
        let compiled = model.compiled();
        let profile = hmdiv_core::paper::field_profile().unwrap();
        let bound = compiled.bind_profile(&profile).unwrap();
        let sens = model_sensitivity(compiled, &bound);
        assert!(!sens.report.has_errors());
        for (i, cs) in sens.classes.iter().enumerate() {
            let t = compiled.p_hf_given_mf_slice()[i] - compiled.p_hf_given_ms_slice()[i];
            let want = cs.weight * t;
            assert!((cs.d_machine_failure.lo - want).abs() < 1e-15);
            assert_eq!(cs.direction, Direction::Increasing, "{}", cs.class);
        }
        let codes: Vec<&str> = sens.report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM033"), "{codes:?}");
        assert!(codes.contains(&"HM034"), "{codes:?}");
    }

    #[test]
    fn negative_coherence_class_is_flagged_anti_monotone() {
        use hmdiv_core::{ClassParams, DemandProfile, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        // t(x) = 0.1 − 0.4 < 0: the human does better when the machine fails.
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("odd", ClassParams::new(p(0.3), p(0.4), p(0.1)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("odd", 1.0).build().unwrap();
        let bound = model.compiled().bind_profile(&profile).unwrap();
        let sens = model_sensitivity(model.compiled(), &bound);
        assert_eq!(sens.classes[0].direction, Direction::Decreasing);
        let codes: Vec<&str> = sens.report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM036"), "{codes:?}");
    }

    #[test]
    fn mismatched_profile_universe_stops_the_pass() {
        use hmdiv_core::{ClassParams, DemandProfile, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("only", ClassParams::new(p(0.1), p(0.2), p(0.3)))
                .build()
                .unwrap(),
        );
        let other = SequentialModel::new(
            ModelParams::builder()
                .class("alien", ClassParams::new(p(0.1), p(0.2), p(0.3)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("alien", 1.0)
            .build()
            .unwrap();
        let bound = other.compiled().bind_profile(&profile).unwrap();
        let sens = model_sensitivity(model.compiled(), &bound);
        assert!(sens.classes.is_empty());
        assert_eq!(sens.report.first_error().unwrap().code, "HM029");
    }
}
