//! Parameter-domain checks over compiled models, bound profiles, and
//! reader cohorts.
//!
//! The runtime types ([`hmdiv_prob::Probability`], `Categorical`,
//! `ReaderCohort::new`) already refuse most malformed values at
//! construction; this pass re-establishes those invariants *on the dense
//! slots an evaluator will actually read*, so an artifact of any
//! provenance — deserialized, patched, content-addressed from a registry —
//! is vouched for before it is admitted. On top of the domain checks it
//! decides the paper-level properties that are statically decidable:
//! the sign of the coherence index `t(x)` per class (eq. 9), classes whose
//! `P(Ms) = 0` would make Bayes conditioning fail at runtime, and class
//! slots a bound profile can never demand.

use hmdiv_core::cohort::ReaderCohort;
use hmdiv_core::{ClassUniverse, CompiledDetectionModel, CompiledModel, CompiledProfile};

use crate::diag::{codes, Report};

/// The pass name used in diagnostics from this module.
const PASS: &str = "params";

/// The pass name for cohort-level diagnostics.
const COHORT_PASS: &str = "cohort";

/// Profile weights must sum to 1 within this absolute tolerance.
pub const PROFILE_SUM_TOLERANCE: f64 = 1e-9;

/// Checks one dense slot value; emits at most one diagnostic.
fn check_slot(report: &mut Report, value: f64, class: &str, slot: &str) -> bool {
    if !value.is_finite() {
        report.emit(
            &codes::NON_FINITE_PARAM,
            PASS,
            format!("class `{class}`: {slot} is {value}"),
        );
        false
    } else if !(0.0..=1.0).contains(&value) {
        report.emit(
            &codes::PARAM_OUT_OF_RANGE,
            PASS,
            format!("class `{class}`: {slot} = {value} is outside [0,1]"),
        );
        false
    } else {
        true
    }
}

/// Checks a compiled sequential model's parameter slots and per-class
/// coherence properties.
#[must_use]
pub fn check_model(model: &CompiledModel) -> Report {
    let _span = hmdiv_obs::span("analyze.params");
    let mut report = Report::new();
    if model.is_empty() {
        report.emit(&codes::EMPTY_MODEL, PASS, "model has no classes".to_owned());
        return report;
    }
    let universe = model.universe();
    let p_mf = model.p_mf_slice();
    let p_hf_ms = model.p_hf_given_ms_slice();
    let p_hf_mf = model.p_hf_given_mf_slice();
    for i in 0..model.len() {
        let class = universe.class(i as u32).name();
        let ok = check_slot(&mut report, p_mf[i], class, "P(Mf)")
            & check_slot(&mut report, p_hf_ms[i], class, "P(Hf|Ms)")
            & check_slot(&mut report, p_hf_mf[i], class, "P(Hf|Mf)");
        if !ok {
            continue;
        }
        // Eq. (9): t(x) = P(Hf|Mf)(x) − P(Hf|Ms)(x). Ordered comparisons
        // keep the sign test inside the `float_cmp` house rule; both
        // slots are finite here, so trichotomy is exhaustive.
        let t = p_hf_mf[i] - p_hf_ms[i];
        if t < 0.0 {
            report.emit(
                &codes::NEGATIVE_COHERENCE_INDEX,
                PASS,
                format!(
                    "class `{class}`: t(x) = {t:.9} < 0 — the human does better when the machine fails"
                ),
            );
        } else if t <= 0.0 {
            report.emit(
                &codes::ZERO_COHERENCE_INDEX,
                PASS,
                format!("class `{class}`: t(x) = 0 — human failure is independent of the advice"),
            );
        }
        if p_mf[i] >= 1.0 {
            report.emit(
                &codes::MACHINE_NEVER_SUCCEEDS,
                PASS,
                format!(
                    "class `{class}`: P(Mf) = 1, so P(Hf|Ms) is conditioned on a zero-probability event"
                ),
            );
        }
    }
    report
}

/// Checks a bound profile against the universe of the model it will be
/// evaluated under: weight domain, normalisation, index range, and
/// reachability of the model's class slots.
#[must_use]
pub fn check_profile(model_universe: &ClassUniverse, profile: &CompiledProfile) -> Report {
    let _span = hmdiv_obs::span("analyze.params");
    let mut report = Report::new();
    if profile.universe().content_hash() != model_universe.content_hash() {
        report.emit(
            &codes::UNIVERSE_MISMATCH,
            PASS,
            format!(
                "profile is bound to a {}-class universe (hash {:016x}); the model interns {} classes (hash {:016x})",
                profile.universe().len(),
                profile.universe().content_hash(),
                model_universe.len(),
                model_universe.content_hash()
            ),
        );
        return report;
    }
    let mut sum = 0.0;
    let mut demanded = vec![false; model_universe.len()];
    for (idx, w) in profile.iter() {
        if (idx as usize) >= model_universe.len() {
            report.emit(
                &codes::BAD_PROFILE_WEIGHT,
                PASS,
                format!(
                    "profile index {idx} is outside the {}-class universe",
                    model_universe.len()
                ),
            );
            continue;
        }
        let class = model_universe.class(idx).name();
        if !w.is_finite() || w < 0.0 {
            report.emit(
                &codes::BAD_PROFILE_WEIGHT,
                PASS,
                format!("class `{class}`: weight {w} is not a finite non-negative number"),
            );
            continue;
        }
        if w > 0.0 {
            demanded[idx as usize] = true;
        }
        sum += w;
    }
    if report.is_empty() && (sum - 1.0).abs() > PROFILE_SUM_TOLERANCE {
        report.emit(
            &codes::PROFILE_SUM,
            PASS,
            format!(
                "profile weights sum to {sum:.12}, expected 1 \u{00b1} {PROFILE_SUM_TOLERANCE:e}"
            ),
        );
    }
    for (i, hit) in demanded.iter().enumerate() {
        if !hit {
            report.emit(
                &codes::UNREACHABLE_CLASS,
                PASS,
                format!(
                    "class `{}` carries parameters but zero demand under this profile",
                    model_universe.class(i as u32).name()
                ),
            );
        }
    }
    report
}

/// Checks a compiled parallel-detection model's parameter slots.
#[must_use]
pub fn check_detection(model: &CompiledDetectionModel) -> Report {
    let _span = hmdiv_obs::span("analyze.params");
    let mut report = Report::new();
    let universe = model.universe();
    if universe.is_empty() {
        report.emit(&codes::EMPTY_MODEL, PASS, "model has no classes".to_owned());
        return report;
    }
    for i in 0..universe.len() {
        let class = universe.class(i as u32).name();
        let dp = model.params_at(i as u32);
        check_slot(&mut report, dp.p_mf.value(), class, "P(Mf)");
        check_slot(&mut report, dp.p_h_miss.value(), class, "P(Hmiss)");
        check_slot(&mut report, dp.p_h_misclass.value(), class, "P(Hmisclass)");
    }
    report
}

/// Checks a reader cohort: member weights, cross-member universe
/// agreement, and every member's parameter slots (scoped by member name).
#[must_use]
pub fn check_cohort(cohort: &ReaderCohort) -> Report {
    let _span = hmdiv_obs::span("analyze.params");
    let mut report = Report::new();
    let members = cohort.members();
    if members.is_empty() {
        report.emit(
            &codes::EMPTY_COHORT,
            COHORT_PASS,
            "cohort has no members".to_owned(),
        );
        return report;
    }
    let reference = members[0].model.compiled().universe().clone();
    for member in members {
        if !member.weight.is_finite() || member.weight <= 0.0 {
            report.emit(
                &codes::BAD_COHORT_WEIGHT,
                COHORT_PASS,
                format!(
                    "member `{}`: weight {} is not a finite positive number",
                    member.name, member.weight
                ),
            );
        }
        let universe = member.model.compiled().universe();
        if universe.content_hash() != reference.content_hash() {
            report.emit(
                &codes::COHORT_UNIVERSE_MISMATCH,
                COHORT_PASS,
                format!(
                    "member `{}` interns {} classes (hash {:016x}) but member `{}` interns {} (hash {:016x}); cohort aggregates are only meaningful over one universe",
                    member.name,
                    universe.len(),
                    universe.content_hash(),
                    members[0].name,
                    reference.len(),
                    reference.content_hash()
                ),
            );
        }
        report.merge_prefixed(
            check_model(member.model.compiled()),
            &format!("member `{}`: ", member.name),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::cohort::CohortMember;
    use hmdiv_core::{paper, ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
    use hmdiv_prob::Probability;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn paper_model_and_profiles_are_clean_of_errors() {
        let model = paper::example_model().unwrap();
        let report = check_model(model.compiled());
        assert!(!report.has_errors(), "{}", report.render_text());
        for profile in [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ] {
            let bound = model.compiled().bind_profile(&profile).unwrap();
            let report = check_profile(model.compiled().universe(), &bound);
            assert!(!report.has_errors(), "{}", report.render_text());
        }
    }

    #[test]
    fn detection_model_is_clean() {
        let model = hmdiv_core::ParallelDetectionModel::builder()
            .class(
                "easy",
                hmdiv_core::DetectionParams::new(p(0.1), p(0.2), p(0.05)),
            )
            .class(
                "difficult",
                hmdiv_core::DetectionParams::new(p(0.4), p(0.5), p(0.2)),
            )
            .build()
            .unwrap();
        let compiled = hmdiv_core::CompiledDetectionModel::compile(&model);
        assert!(!check_detection(&compiled).has_errors());
    }

    #[test]
    fn coherence_index_signs_are_reported() {
        let params = ModelParams::builder()
            .class(
                ClassId::new("inverted"),
                ClassParams::new(p(0.3), p(0.4), p(0.1)),
            )
            .class(
                ClassId::new("indifferent"),
                ClassParams::new(p(0.2), p(0.25), p(0.25)),
            )
            .build()
            .unwrap();
        let model = SequentialModel::new(params);
        let report = check_model(model.compiled());
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM025"), "{codes:?}");
        assert!(codes.contains(&"HM026"), "{codes:?}");
        assert!(!report.has_errors());
    }

    #[test]
    fn machine_never_succeeding_warns() {
        let params = ModelParams::builder()
            .class(
                ClassId::new("hopeless"),
                ClassParams::new(p(1.0), p(0.5), p(0.6)),
            )
            .build()
            .unwrap();
        let model = SequentialModel::new(params);
        let report = check_model(model.compiled());
        assert_eq!(report.worst().unwrap().code, "HM027");
    }

    #[test]
    fn unreachable_classes_are_noted() {
        let model = paper::example_model().unwrap();
        // A profile that demands only the easy class.
        let profile = DemandProfile::builder().class("easy", 1.0).build().unwrap();
        let bound = model.compiled().bind_profile(&profile).unwrap();
        let report = check_profile(model.compiled().universe(), &bound);
        assert!(!report.has_errors());
        let unreachable: Vec<&str> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "HM024")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(unreachable.len(), 1, "{report:?}");
        assert!(unreachable[0].contains("difficult"));
    }

    #[test]
    fn universe_mismatch_is_an_error() {
        let model = paper::example_model().unwrap();
        let other = ModelParams::builder()
            .class(
                ClassId::new("alien"),
                ClassParams::new(p(0.1), p(0.2), p(0.3)),
            )
            .build()
            .unwrap();
        let other = SequentialModel::new(other);
        let profile = DemandProfile::builder()
            .class("alien", 1.0)
            .build()
            .unwrap();
        let bound = other.compiled().bind_profile(&profile).unwrap();
        let report = check_profile(model.compiled().universe(), &bound);
        assert_eq!(report.first_error().unwrap().code, "HM029");
    }

    #[test]
    fn cohort_universe_mismatch_is_an_error() {
        let alien = ModelParams::builder()
            .class(
                ClassId::new("alien"),
                ClassParams::new(p(0.1), p(0.2), p(0.3)),
            )
            .build()
            .unwrap();
        let cohort = ReaderCohort::new(vec![
            CohortMember {
                name: "R1".into(),
                model: paper::example_model().unwrap(),
                weight: 1.0,
            },
            CohortMember {
                name: "R2".into(),
                model: SequentialModel::new(alien),
                weight: 1.0,
            },
        ])
        .unwrap();
        let report = check_cohort(&cohort);
        assert_eq!(report.first_error().unwrap().code, "HM030");
    }

    #[test]
    fn clean_cohort_passes() {
        let cohort = ReaderCohort::new(vec![
            CohortMember {
                name: "R1".into(),
                model: paper::example_model().unwrap(),
                weight: 2.0,
            },
            CohortMember {
                name: "R2".into(),
                model: paper::example_model().unwrap(),
                weight: 1.0,
            },
        ])
        .unwrap();
        assert!(!check_cohort(&cohort).has_errors());
    }
}
