//! Static analysis for `hmdiv` compiled models.
//!
//! The workspace evaluates everything through compiled IRs: `hmdiv-rbd`'s
//! postfix structure-function programs and `hmdiv-core`'s dense
//! [`CompiledModel`](hmdiv_core::CompiledModel) parameter slots. This crate
//! verifies those artifacts *before* they are evaluated — catch faults
//! before operation, not during it:
//!
//! * [`verifier`] — a bytecode-style verifier for postfix programs:
//!   stack-depth/arity well-formedness, k-of-n threshold bounds, component
//!   index range checks.
//! * [`interp`] — an interval abstract interpreter that soundly bounds
//!   system reliability from per-component probability intervals, proves
//!   coherence, and flags dead (irrelevant) components via a
//!   Birnbaum-relevance check.
//! * [`params`] — a parameter-domain pass over compiled models, bound
//!   profiles, detection tables and reader cohorts: slots in `[0,1]`, no
//!   NaN/inf, profile normalisation, unreachable class slots, and the sign
//!   of the paper's coherence index `t(x)` per class.
//! * [`sens`] — forward-mode interval algorithmic differentiation:
//!   certified per-slot Birnbaum-derivative bounds and monotonicity
//!   (direction) certificates, for structure functions and for eq. (8)
//!   of the paper.
//! * [`diff`] — differential comparison: [`compare`] pairs two compiled
//!   models slot by slot and returns a certified
//!   dominates/dominated/incomparable verdict with exact gap bounds —
//!   the pruning engine behind `design::allocate_improvement_budget_pruned`.
//! * [`diag`] — the shared diagnostics framework: stable `HM0xx` codes,
//!   `error`/`warn`/`info` severities, and human-text + JSON renderers.
//!
//! Analysis is **pure**: no clock, no RNG, no host state. The same
//! artifact always produces the same report, byte for byte — a
//! prerequisite for using verdicts as admission decisions in
//! `hmdiv-serve`'s content-addressed registry.
//!
//! # Example
//!
//! ```
//! use hmdiv_analyze::{analyze_block, Interval};
//! use hmdiv_rbd::{compiled::CompiledBlock, Block};
//!
//! # fn main() -> Result<(), hmdiv_rbd::RbdError> {
//! // Fig. 2 of the paper: (Hd ∥ Md) → Hc.
//! let system = Block::series(vec![
//!     Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
//!     Block::component("Hc"),
//! ]);
//! let compiled = CompiledBlock::compile(&system)?;
//! // Failure-probability intervals in interned order (Hc, Hd, Md).
//! let analysis = analyze_block(
//!     &compiled,
//!     &[
//!         Interval::new(0.04, 0.06),
//!         Interval::new(0.15, 0.25),
//!         Interval::new(0.05, 0.10),
//!     ],
//! );
//! let bounds = analysis.bounds.expect("program verifies");
//! assert!(bounds.lo <= bounds.hi);
//! assert!(analysis.dead.is_empty());
//! assert!(!analysis.report.has_errors());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
// House rule: interval endpoints and gap bounds are compared with
// explicit tolerances, `total_cmp`, or `to_bits` — never `==`/`!=`.
#![deny(clippy::float_cmp)]

pub mod diag;
pub mod diff;
pub mod interp;
pub mod params;
pub mod sens;
pub mod verifier;

pub use diag::{codes, CodeSpec, Diagnostic, Report, Severity};
pub use diff::{compare, ClassGap, Comparison, Dominance};
pub use interp::{analyze_block, Interval, StructureAnalysis};
pub use sens::{
    model_sensitivity, structure_sensitivity, ClassSensitivity, Direction, ModelSensitivity,
    SensitivityAnalysis, SlotSensitivity,
};
pub use verifier::{verify, PostfixOp, PostfixProgram};

use hmdiv_core::cohort::ReaderCohort;
use hmdiv_core::{CompiledDetectionModel, CompiledModel, CompiledProfile, SequentialModel};

/// Analyzes a compiled sequential model, optionally together with a bound
/// profile. This is the check the `hmdiv-serve` registry runs at `load`.
#[must_use]
pub fn analyze_model(model: &CompiledModel, profile: Option<&CompiledProfile>) -> Report {
    let mut report = params::check_model(model);
    if let Some(profile) = profile {
        report.merge(params::check_profile(model.universe(), profile));
    }
    report
}

/// Analyzes a sequential model through its lazily-compiled dense form.
#[must_use]
pub fn analyze_sequential(model: &SequentialModel) -> Report {
    analyze_model(model.compiled(), None)
}

/// Analyzes a compiled parallel-detection model.
#[must_use]
pub fn analyze_detection(model: &CompiledDetectionModel) -> Report {
    params::check_detection(model)
}

/// Analyzes a reader cohort: member weights, cross-member universe
/// agreement, and each member's parameter slots.
#[must_use]
pub fn analyze_cohort(cohort: &ReaderCohort) -> Report {
    params::check_cohort(cohort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;

    #[test]
    fn paper_artifacts_analyze_clean_of_errors() {
        let model = paper::example_model().unwrap();
        assert!(!analyze_sequential(&model).has_errors());
        let profile = paper::field_profile().unwrap();
        let bound = model.compiled().bind_profile(&profile).unwrap();
        let report = analyze_model(model.compiled(), Some(&bound));
        assert!(!report.has_errors(), "{}", report.render_text());
    }
}
