//! Bytecode-style verifier for postfix structure-function programs.
//!
//! [`hmdiv_rbd::compiled::CompiledBlock`] guarantees by construction that
//! its program is well-formed; this verifier re-establishes that guarantee
//! for programs of *any* provenance (deserialized artifacts, corrupted
//! registries, hand-built test programs) without evaluating them. It
//! simulates the evaluation stack symbolically: every instruction's effect
//! on stack depth is checked, group arities must be positive, k-of-n
//! thresholds must satisfy `0 < k \u{2264} n`, component indices must be in
//! range, and the program must leave exactly one result.

use hmdiv_rbd::compiled::{CompiledBlock, Op};

use crate::diag::{codes, Report};

/// The pass name used in diagnostics from this module.
const PASS: &str = "verifier";

/// One instruction of a postfix structure-function program, mirroring
/// [`hmdiv_rbd::compiled::Op`] so the verifier can check programs that no
/// compiler vouches for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostfixOp {
    /// Push the state of the component with this index.
    Comp(u32),
    /// Pop this many values; push their conjunction.
    Series(u32),
    /// Pop this many values; push their disjunction.
    Parallel(u32),
    /// Pop `n` values; push "at least `k` work".
    KOfN {
        /// Minimum number of working children.
        k: u32,
        /// Number of children.
        n: u32,
    },
}

impl From<&Op> for PostfixOp {
    fn from(op: &Op) -> Self {
        match *op {
            Op::Comp(i) => PostfixOp::Comp(i),
            Op::Series(n) => PostfixOp::Series(n),
            Op::Parallel(n) => PostfixOp::Parallel(n),
            Op::KOfN { k, n } => PostfixOp::KOfN { k, n },
        }
    }
}

/// A postfix program together with its declared component count — the
/// unit of verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostfixProgram {
    ops: Vec<PostfixOp>,
    component_count: u32,
}

impl PostfixProgram {
    /// Wraps a raw instruction stream. No validation happens here; that is
    /// [`verify`]'s job.
    #[must_use]
    pub fn new(ops: Vec<PostfixOp>, component_count: u32) -> Self {
        PostfixProgram {
            ops,
            component_count,
        }
    }

    /// The instruction stream.
    #[must_use]
    pub fn ops(&self) -> &[PostfixOp] {
        &self.ops
    }

    /// The declared number of components (the state-vector length).
    #[must_use]
    pub fn component_count(&self) -> u32 {
        self.component_count
    }
}

impl From<&CompiledBlock> for PostfixProgram {
    fn from(compiled: &CompiledBlock) -> Self {
        #[allow(clippy::cast_possible_truncation)] // compile() enforces the u32 bound
        PostfixProgram::new(
            compiled.ops().iter().map(PostfixOp::from).collect(),
            compiled.component_count() as u32,
        )
    }
}

/// Verifies a postfix program without executing it.
///
/// On a clean program the report is empty except possibly for
/// [`codes::UNREFERENCED_COMPONENT`] warnings. Any error-severity finding
/// means evaluating the program would panic, read out of bounds, or
/// produce a meaningless result.
#[must_use]
pub fn verify(program: &PostfixProgram) -> Report {
    let _span = hmdiv_obs::span("analyze.verify");
    let mut report = Report::new();
    let mut depth: usize = 0;
    let mut referenced = vec![false; program.component_count as usize];
    for (pc, op) in program.ops.iter().enumerate() {
        match *op {
            PostfixOp::Comp(i) => {
                if (i as usize) < referenced.len() {
                    referenced[i as usize] = true;
                } else {
                    report.emit(
                        &codes::COMPONENT_OUT_OF_RANGE,
                        PASS,
                        format!(
                            "op {pc}: component index {i} outside range 0..{}",
                            program.component_count
                        ),
                    );
                }
                depth += 1;
            }
            PostfixOp::Series(n) | PostfixOp::Parallel(n) | PostfixOp::KOfN { n, .. } => {
                let kind = match op {
                    PostfixOp::Series(_) => "series",
                    PostfixOp::Parallel(_) => "parallel",
                    _ => "k-of-n",
                };
                if n == 0 {
                    report.emit(
                        &codes::ZERO_ARITY_GROUP,
                        PASS,
                        format!("op {pc}: {kind} group with zero children"),
                    );
                    // A zero-arity group would push a vacuous result; model
                    // its net effect (+1) so later depths stay meaningful.
                    depth += 1;
                    continue;
                }
                if let PostfixOp::KOfN { k, n } = *op {
                    if k == 0 || k > n {
                        report.emit(
                            &codes::BAD_THRESHOLD,
                            PASS,
                            format!("op {pc}: threshold k={k} invalid for n={n}"),
                        );
                    }
                }
                if (n as usize) > depth {
                    report.emit(
                        &codes::STACK_UNDERFLOW,
                        PASS,
                        format!(
                            "op {pc}: {kind} group pops {n} values but only {depth} are on the stack"
                        ),
                    );
                    depth = 1; // as if the group consumed everything and pushed its result
                } else {
                    depth = depth - n as usize + 1;
                }
            }
        }
    }
    if depth != 1 {
        report.emit(
            &codes::BAD_RESULT_ARITY,
            PASS,
            if program.ops.is_empty() {
                "program is empty".to_owned()
            } else {
                format!("program leaves {depth} values on the stack, expected exactly 1")
            },
        );
    }
    for (i, seen) in referenced.iter().enumerate() {
        if !seen {
            report.emit(
                &codes::UNREFERENCED_COMPONENT,
                PASS,
                format!("component {i} is declared but never read"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_rbd::Block;

    fn verify_ops(ops: Vec<PostfixOp>, components: u32) -> Report {
        verify(&PostfixProgram::new(ops, components))
    }

    #[test]
    fn compiled_blocks_verify_clean() {
        for block in [
            Block::component("solo"),
            Block::series(vec![
                Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
                Block::component("Hc"),
            ]),
            Block::k_of_n(
                2,
                vec![
                    Block::component("x"),
                    Block::component("y"),
                    Block::component("z"),
                ],
            ),
        ] {
            let compiled = CompiledBlock::compile(&block).unwrap();
            let report = verify(&PostfixProgram::from(&compiled));
            assert!(report.is_empty(), "{block}: {}", report.render_text());
        }
    }

    #[test]
    fn stack_underflow_is_detected() {
        let report = verify_ops(vec![PostfixOp::Comp(0), PostfixOp::Series(2)], 1);
        assert_eq!(report.first_error().unwrap().code, "HM001");
    }

    #[test]
    fn leftover_values_are_detected() {
        let report = verify_ops(vec![PostfixOp::Comp(0), PostfixOp::Comp(0)], 1);
        assert_eq!(report.first_error().unwrap().code, "HM002");
        let empty = verify_ops(vec![], 0);
        assert_eq!(empty.first_error().unwrap().code, "HM002");
    }

    #[test]
    fn zero_arity_groups_are_detected() {
        let report = verify_ops(vec![PostfixOp::Parallel(0)], 0);
        assert_eq!(report.first_error().unwrap().code, "HM003");
    }

    #[test]
    fn bad_thresholds_are_detected() {
        let zero = verify_ops(vec![PostfixOp::Comp(0), PostfixOp::KOfN { k: 0, n: 1 }], 1);
        assert_eq!(zero.first_error().unwrap().code, "HM004");
        let over = verify_ops(
            vec![
                PostfixOp::Comp(0),
                PostfixOp::Comp(0),
                PostfixOp::KOfN { k: 3, n: 2 },
            ],
            1,
        );
        assert_eq!(over.first_error().unwrap().code, "HM004");
    }

    #[test]
    fn out_of_range_components_are_detected() {
        let report = verify_ops(vec![PostfixOp::Comp(7)], 2);
        assert_eq!(report.first_error().unwrap().code, "HM005");
    }

    #[test]
    fn unreferenced_components_warn_but_do_not_error() {
        let report = verify_ops(vec![PostfixOp::Comp(0)], 2);
        assert!(!report.has_errors());
        assert_eq!(report.worst().unwrap().code, "HM006");
    }

    #[test]
    fn multiple_faults_all_reported() {
        let report = verify_ops(
            vec![
                PostfixOp::Comp(9),
                PostfixOp::KOfN { k: 5, n: 2 },
                PostfixOp::Series(0),
            ],
            1,
        );
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HM005"), "{codes:?}");
        assert!(codes.contains(&"HM004"), "{codes:?}");
        assert!(codes.contains(&"HM001"), "{codes:?}");
        assert!(codes.contains(&"HM003"), "{codes:?}");
    }
}
