//! DESIGN.md's diagnostic-code table must stay in lockstep with the
//! declared [`hmdiv_analyze::diag::codes::ALL`] registry: every `HM0xx`
//! code the analyzer can emit is documented with its exact severity, and
//! the document never lists a code the analyzer does not declare. Codes
//! are append-only, so a failure here means either a new code landed
//! without its doc row or a doc edit drifted from the source of truth.

use std::collections::BTreeMap;

use hmdiv_analyze::diag::codes;

const DESIGN_MD: &str = include_str!("../../../DESIGN.md");

/// Extracts `code -> severity` from the DESIGN.md markdown table rows of
/// the form `| HM0xx | severity | meaning |`.
fn documented_codes() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in DESIGN_MD.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(code) = cells.next() else { continue };
        if !(code.len() == 5 && code.starts_with("HM0")) {
            continue;
        }
        let severity = cells.next().unwrap_or_default();
        let previous = out.insert(code.to_owned(), severity.to_owned());
        assert!(
            previous.is_none(),
            "DESIGN.md documents {code} more than once"
        );
    }
    out
}

#[test]
fn design_md_documents_every_declared_code_with_its_severity() {
    let documented = documented_codes();
    assert!(
        !documented.is_empty(),
        "no `| HM0xx | ... |` table rows found in DESIGN.md"
    );
    for spec in codes::ALL {
        match documented.get(spec.code) {
            None => panic!(
                "{} ({}) is declared in diag.rs but missing from the \
                 DESIGN.md diagnostics table",
                spec.code,
                spec.severity.label()
            ),
            Some(severity) => assert_eq!(
                severity,
                spec.severity.label(),
                "{} severity drifted: DESIGN.md says `{severity}`, diag.rs \
                 declares `{}`",
                spec.code,
                spec.severity.label()
            ),
        }
    }
}

#[test]
fn design_md_lists_no_undeclared_code() {
    let declared: Vec<&str> = codes::ALL.iter().map(|spec| spec.code).collect();
    for code in documented_codes().keys() {
        assert!(
            declared.contains(&code.as_str()),
            "DESIGN.md documents {code}, which diag.rs does not declare"
        );
    }
}
