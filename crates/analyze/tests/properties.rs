//! Property-based parity between the static analyzer and the runtime:
//!
//! * models the analyzer passes clean never produce NaN or out-of-`[0,1]`
//!   failure probabilities from the batch evaluators;
//! * artifacts the analyzer rejects also fail at runtime with the
//!   corresponding typed `ModelError`;
//! * the interval abstract interpreter's static bounds always contain the
//!   true system reliability for any point inside the per-component
//!   intervals.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv_analyze::{
    analyze_block, analyze_cohort, analyze_model, compare, model_sensitivity,
    structure_sensitivity, Dominance, Interval,
};
use hmdiv_core::cohort::{CohortMember, ReaderCohort};
use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelError, ModelParams, SequentialModel};
use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::Block;
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

#[derive(Debug, Clone)]
struct RandomSystem {
    model: SequentialModel,
    profile: DemandProfile,
}

/// A random two-class model plus profile over the full closed parameter
/// range — including the boundary values the analyzer flags with
/// warnings, which must still evaluate cleanly.
fn arb_system() -> impl Strategy<Value = RandomSystem> {
    (proptest::collection::vec(0.0..=1.0f64, 6), 0.01..=0.99f64).prop_map(|(v, w)| {
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("a", ClassParams::new(p(v[0]), p(v[1]), p(v[2])))
                .class("b", ClassParams::new(p(v[3]), p(v[4]), p(v[5])))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("a", w)
            .class("b", 1.0 - w)
            .build()
            .unwrap();
        RandomSystem { model, profile }
    })
}

/// Random diagram over a small shared component alphabet.
fn arb_block(depth: u32) -> BoxedStrategy<Block> {
    let leaf = (0u8..5).prop_map(|i| Block::component(format!("c{i}")));
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_block(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => proptest::collection::vec(inner.clone(), 1..4).prop_map(Block::series),
        2 => proptest::collection::vec(inner.clone(), 1..4).prop_map(Block::parallel),
        1 => (proptest::collection::vec(inner, 1..4), any::<proptest::sample::Index>()).prop_map(
            |(blocks, idx)| {
                let k = idx.index(blocks.len()) + 1;
                Block::k_of_n(k, blocks)
            }
        ),
    ]
    .boxed()
}

/// Per-component `[lo, hi]` failure intervals plus a true point inside
/// each, for the 5-name alphabet of [`arb_block`].
fn arb_intervals() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((0.0..=1.0f64, 0.0..=1.0f64, 0.0..=1.0f64), 5).prop_map(|v| {
        v.into_iter()
            .map(|(a, b, t)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                (lo, hi, lo + t * (hi - lo))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clean_models_evaluate_inside_the_unit_interval(sys in arb_system(), factor in 1.0..=20.0f64) {
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        let report = analyze_model(compiled, Some(&bound));
        prop_assume!(!report.has_errors());

        for failure in compiled.evaluate_profiles(std::slice::from_ref(&bound)) {
            let value = failure.value();
            prop_assert!(value.is_finite() && (0.0..=1.0).contains(&value), "{value}");
        }
        let scenarios = [
            Scenario::new(),
            Scenario::new().improve_machine(ClassId::new("a"), factor),
            Scenario::new().improve_machine_everywhere(factor),
        ];
        for failure in compiled.evaluate_scenarios(&scenarios, &bound).unwrap() {
            let value = failure.value();
            prop_assert!(value.is_finite() && (0.0..=1.0).contains(&value), "{value}");
        }
    }

    #[test]
    fn rejected_cohorts_also_fail_at_runtime(sys in arb_system(), other in arb_system(), weight in 0.1..=5.0f64) {
        // A second member whose universe interns different class names.
        let alien = SequentialModel::new(
            ModelParams::builder()
                .class("x", *other.model.params().class_by_name("a").unwrap())
                .class("y", *other.model.params().class_by_name("b").unwrap())
                .build()
                .unwrap(),
        );
        let cohort = ReaderCohort::new(vec![
            CohortMember { name: "r1".into(), weight, model: sys.model.clone() },
            CohortMember { name: "r2".into(), weight, model: alien.clone() },
        ])
        .unwrap();
        let report = analyze_cohort(&cohort);
        prop_assert!(report.has_errors());
        prop_assert_eq!(report.first_error().unwrap().code, "HM030");

        // Runtime parity: a profile valid for member 1 fails on member 2
        // with the typed unknown-class error the diagnostic predicts.
        let err = alien.system_failure(&sys.profile).unwrap_err();
        prop_assert!(matches!(err, ModelError::UnknownClass { .. }), "{err}");
    }

    #[test]
    fn static_bounds_contain_every_true_evaluation(block in arb_block(2), ivs in arb_intervals()) {
        let compiled = CompiledBlock::compile(&block).unwrap();
        let names = compiled.component_names();
        let by_index = |name: &str| {
            let i: usize = name.strip_prefix('c').unwrap().parse().unwrap();
            ivs[i]
        };
        let bounds: Vec<Interval> = names
            .iter()
            .map(|n| { let (lo, hi, _) = by_index(n); Interval::new(lo, hi) })
            .collect();
        let analysis = analyze_block(&compiled, &bounds);
        prop_assert!(!analysis.report.has_errors(), "{}", analysis.report.render_text());
        let bounds = analysis.bounds.unwrap();

        let truth: Vec<Probability> = names
            .iter()
            .map(|n| { let (_, _, t) = by_index(n); Probability::clamped(t) })
            .collect();
        let r = compiled.reliability(&truth).unwrap().value();
        prop_assert!(
            bounds.lo - 1e-12 <= r && r <= bounds.hi + 1e-12,
            "true reliability {r} outside static [{}, {}] for {block}",
            bounds.lo,
            bounds.hi
        );
    }

    #[test]
    fn derivative_bounds_contain_finite_difference_samples(block in arb_block(2), ivs in arb_intervals()) {
        let compiled = CompiledBlock::compile(&block).unwrap();
        let names = compiled.component_names();
        let by_index = |name: &str| {
            let i: usize = name.strip_prefix('c').unwrap().parse().unwrap();
            ivs[i]
        };
        let bounds: Vec<Interval> = names
            .iter()
            .map(|n| { let (lo, hi, _) = by_index(n); Interval::new(lo, hi) })
            .collect();
        let analysis = structure_sensitivity(&compiled, &bounds);
        prop_assert!(!analysis.report.has_errors(), "{}", analysis.report.render_text());
        prop_assert_eq!(analysis.slots.len(), names.len());

        let truth: Vec<f64> = names
            .iter()
            .map(|n| { let (_, _, t) = by_index(n); t })
            .collect();
        let eval = |q: &[f64]| {
            let probs: Vec<Probability> = q.iter().map(|&v| Probability::clamped(v)).collect();
            compiled.reliability(&probs).unwrap().value()
        };
        for (j, slot) in analysis.slots.iter().enumerate() {
            // R is multilinear in each failure probability, so the secant
            // over any two q_j values equals the exact partial derivative
            // at the remaining (true, interior) coordinates — the central
            // difference is exact up to float rounding, not an O(h²)
            // approximation.
            let a = (truth[j] - 1e-3).max(0.0);
            let b = (truth[j] + 1e-3).min(1.0);
            let mut qa = truth.clone();
            qa[j] = a;
            let mut qb = truth.clone();
            qb[j] = b;
            // The certified slot derivative is ∂R/∂r_j = −∂R/∂q_j.
            let fd = (eval(&qa) - eval(&qb)) / (b - a);
            prop_assert!(
                slot.derivative.lo - 1e-9 <= fd && fd <= slot.derivative.hi + 1e-9,
                "slot {} finite difference {fd} outside certified [{}, {}] for {block}",
                slot.name,
                slot.derivative.lo,
                slot.derivative.hi
            );
        }
    }

    #[test]
    fn pruning_benefit_formula_matches_direct_patched_evaluation(
        sys in arb_system(),
        step in 1.1..=20.0f64,
        pick in 0usize..2,
    ) {
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        let sens = model_sensitivity(compiled, &bound);
        prop_assert!(!sens.report.has_errors(), "{}", sens.report.render_text());
        let name = if pick == 0 { "a" } else { "b" };
        let class = sens.classes.iter().find(|c| c.class == name).unwrap();
        let p_mf = sys.model.params().class_by_name(name).unwrap().p_mf().value();

        // The design pruner's closed-form benefit bound is exactly the
        // analyzer's eq. (8) sensitivity times the parameter step:
        // improving PMf(x) by factor `s` moves system failure by
        // ∂PHf/∂PMf(x) · PMf(x) · (1 − 1/s), because eq. (8) is linear
        // in PMf. One direct patched evaluation must agree.
        prop_assert!(class.d_machine_failure.lo == class.d_machine_failure.hi);
        let formula = class.d_machine_failure.lo * p_mf * (1.0 - 1.0 / step);
        let improved = Scenario::new()
            .improve_machine(ClassId::new(name), step)
            .apply(&sys.model)
            .unwrap();
        let direct = sys.model.system_failure(&sys.profile).unwrap().value()
            - improved.system_failure(&sys.profile).unwrap().value();
        prop_assert!(
            (formula - direct).abs() <= 1e-12,
            "closed-form benefit {formula} vs patched evaluation {direct} (class {name}, step {step})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compare_verdicts_are_never_contradicted_by_paired_evaluation(
        base in arb_system(),
        cand_v in proptest::collection::vec(0.0..=1.0f64, 6),
    ) {
        let cand = SequentialModel::new(
            ModelParams::builder()
                .class("a", ClassParams::new(p(cand_v[0]), p(cand_v[1]), p(cand_v[2])))
                .class("b", ClassParams::new(p(cand_v[3]), p(cand_v[4]), p(cand_v[5])))
                .build()
                .unwrap(),
        );
        let bc = base.model.compiled();
        let cc = cand.compiled();
        let supplied = vec![bc.bind_profile(&base.profile).unwrap()];
        let cmp = compare(bc, cc, &supplied);
        prop_assert!(!cmp.report.has_errors(), "{}", cmp.report.render_text());

        // ~1k paired evaluations across the two-class profile simplex. A
        // uniform certificate must hold on EVERY one of them, with no
        // tolerance: per-class gaps ≤ 0 push through eq. (8)'s weighted
        // sum monotonically even in rounded float arithmetic.
        let paired_gaps: Vec<f64> = (1..1000)
            .map(|k| {
                let w = k as f64 / 1000.0;
                let profile = DemandProfile::builder()
                    .class("a", w)
                    .class("b", 1.0 - w)
                    .build()
                    .unwrap();
                let sampled = bc.bind_profile(&profile).unwrap();
                cc.system_failure(&sampled).value() - bc.system_failure(&sampled).value()
            })
            .collect();
        match cmp.uniform {
            Some(Dominance::Dominates) => {
                for gap in &paired_gaps {
                    prop_assert!(*gap <= 0.0, "uniform dominance contradicted: gap {gap}");
                }
            }
            Some(Dominance::Dominated) => {
                for gap in &paired_gaps {
                    prop_assert!(*gap >= 0.0, "uniform domination contradicted: gap {gap}");
                }
            }
            Some(Dominance::Incomparable) | None => {}
        }

        // The profile-scoped verdict must agree with direct paired
        // evaluation on the supplied profile.
        let supplied_gap = cc.system_failure(&supplied[0]).value()
            - bc.system_failure(&supplied[0]).value();
        match cmp.verdict {
            Dominance::Dominates => {
                prop_assert!(supplied_gap <= 0.0, "verdict contradicted: gap {supplied_gap}")
            }
            Dominance::Dominated => {
                prop_assert!(supplied_gap >= 0.0, "verdict contradicted: gap {supplied_gap}")
            }
            Dominance::Incomparable => {}
        }
    }
}
