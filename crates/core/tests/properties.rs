//! Property-based tests of the core models at the crate level:
//! aggregation invariants, adaptation sanity, multi-reader orderings, and
//! trade-off monotonicity over random parameterisations.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv_core::adaptation::AdaptationResponse;
use hmdiv_core::aggregation::{coarsen, merge_classes};
use hmdiv_core::multi_reader::{CombinationRule, ReaderSkill, TeamModel};
use hmdiv_core::tradeoff::{MachineRoc, TradeoffStudy, TwoSidedModel};
use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;
use proptest::prelude::*;

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

fn prob() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

/// Interior probabilities, bounded away from 0/1 so conditionals stay
/// defined.
fn interior() -> impl Strategy<Value = f64> {
    0.02..=0.98f64
}

#[derive(Debug, Clone)]
struct TwoClassSystem {
    model: SequentialModel,
    profile: DemandProfile,
}

fn two_class_system() -> impl Strategy<Value = TwoClassSystem> {
    (
        interior(),
        interior(),
        interior(),
        interior(),
        interior(),
        interior(),
        0.05..=0.95f64,
    )
        .prop_map(|(mf_a, ms_a, mf_cond_a, mf_b, ms_b, mf_cond_b, w)| {
            let model = SequentialModel::new(
                ModelParams::builder()
                    .class("a", ClassParams::new(p(mf_a), p(ms_a), p(mf_cond_a)))
                    .class("b", ClassParams::new(p(mf_b), p(ms_b), p(mf_cond_b)))
                    .build()
                    .unwrap(),
            );
            let profile = DemandProfile::builder()
                .class("a", w)
                .class("b", 1.0 - w)
                .build()
                .unwrap();
            TwoClassSystem { model, profile }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merging_always_preserves_system_failure(sys in two_class_system()) {
        let members = [ClassId::new("a"), ClassId::new("b")];
        let before = sys.model.system_failure(&sys.profile).unwrap().value();
        let (coarse_model, coarse_profile) =
            coarsen(&sys.model, &sys.profile, &members).unwrap();
        let after = coarse_model.system_failure(&coarse_profile).unwrap().value();
        prop_assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn merged_parameters_are_convex_combinations(sys in two_class_system()) {
        let members = [ClassId::new("a"), ClassId::new("b")];
        let merged = merge_classes(&sys.model, &sys.profile, &members).unwrap();
        let a = sys.model.params().class_by_name("a").unwrap();
        let b = sys.model.params().class_by_name("b").unwrap();
        let between = |m: f64, x: f64, y: f64| m >= x.min(y) - 1e-12 && m <= x.max(y) + 1e-12;
        prop_assert!(between(
            merged.params.p_mf().value(),
            a.p_mf().value(),
            b.p_mf().value()
        ));
        prop_assert!(between(
            merged.params.p_hf_given_ms().value(),
            a.p_hf_given_ms().value(),
            b.p_hf_given_ms().value()
        ));
        prop_assert!(between(
            merged.params.p_hf_given_mf().value(),
            a.p_hf_given_mf().value(),
            b.p_hf_given_mf().value()
        ));
    }

    #[test]
    fn adaptation_outputs_valid_parameters(
        old_mf in interior(), new_mf in interior(), ms in prob(), mf_cond in prob(),
        strength in 0.0..=1.0f64
    ) {
        let base = ClassParams::new(p(new_mf), p(ms), p(mf_cond));
        for response in [
            AdaptationResponse::None,
            AdaptationResponse::Complacency { strength },
            AdaptationResponse::Distrust { strength },
            AdaptationResponse::Vigilance { strength },
        ] {
            let adapted = response.apply(p(old_mf), &base).unwrap();
            // Machine parameter untouched by adaptation.
            prop_assert_eq!(adapted.p_mf(), base.p_mf());
            // Conditionals stay probabilities (enforced by type, but check
            // coherence index bounds too).
            prop_assert!((-1.0..=1.0).contains(&adapted.coherence_index()));
        }
    }

    #[test]
    fn distrust_never_increases_coherence_magnitude(
        old_mf in 0.02..=0.5f64, ms in prob(), mf_cond in prob(), strength in 0.0..=1.0f64
    ) {
        // Degrade the machine: distrust pulls t toward zero, never past it.
        let degraded = ClassParams::new(p(0.9), p(ms), p(mf_cond));
        let adapted = AdaptationResponse::Distrust { strength }
            .apply(p(old_mf), &degraded)
            .unwrap();
        prop_assert!(adapted.coherence_index().abs() <= degraded.coherence_index().abs() + 1e-12);
        prop_assert!(adapted.coherence_index() * degraded.coherence_index() >= -1e-12,
            "no sign flip");
    }

    #[test]
    fn double_reading_dominates_single_which_dominates_consensus(
        mf in interior(), ms_a in interior(), mf_a in interior(),
        ms_b in interior(), mf_b in interior(), w in 0.05..=0.95f64
    ) {
        let skill_a = ReaderSkill::builder().class("x", p(ms_a), p(mf_a)).build().unwrap();
        let skill_b = ReaderSkill::builder().class("x", p(ms_b), p(mf_b)).build().unwrap();
        let _ = w;
        let profile = DemandProfile::builder().class("x", 1.0).build().unwrap();
        let build = |rule| {
            TeamModel::builder()
                .machine("x", p(mf))
                .reader(skill_a.clone())
                .reader(skill_b.clone())
                .rule(rule)
                .build()
                .unwrap()
        };
        let either = build(CombinationRule::EitherRecalls).system_failure(&profile).unwrap();
        let consensus = build(CombinationRule::Consensus).system_failure(&profile).unwrap();
        let single = TeamModel::builder()
            .machine("x", p(mf))
            .reader(skill_a.clone())
            .build()
            .unwrap()
            .system_failure(&profile)
            .unwrap();
        // Either-recalls FN = product <= single reader's own FN <= consensus FN.
        prop_assert!(either.value() <= single.value() + 1e-12);
        prop_assert!(single.value() <= consensus.value() + 1e-12);
        // Arbitrated sits between either and consensus.
        let arb = build(CombinationRule::Arbitrated { arbiter: skill_a.clone() })
            .system_failure(&profile)
            .unwrap();
        prop_assert!(either.value() <= arb.value() + 1e-12);
        prop_assert!(arb.value() <= consensus.value() + 1e-12);
    }

    #[test]
    fn tradeoff_sweep_monotone_for_any_parameters(
        r_a in 0.05..=1.0f64, r_b in 0.05..=1.0f64,
        s_a in 0.0..=1.0f64, s_b in 0.0..=1.0f64,
        ms in interior(), mf_cond in interior()
    ) {
        // Sweep monotonicity requires non-negative coherence (a reader who
        // improves when the machine fails genuinely inverts it), so generate
        // PHf|Mf as PHf|Ms plus a non-negative increment.
        let hf_mf_a = ms + mf_cond * (1.0 - ms);
        let ms_b = ms * 0.5;
        let hf_mf_b = ms_b + mf_cond * (1.0 - ms_b);
        let fn_model = SequentialModel::new(
            ModelParams::builder()
                .class("ca", ClassParams::new(p(0.5), p(ms), Probability::clamped(hf_mf_a)))
                .class("cb", ClassParams::new(p(0.5), p(ms_b), Probability::clamped(hf_mf_b)))
                .build()
                .unwrap(),
        );
        let fp_model = SequentialModel::new(
            ModelParams::builder()
                .class("na", ClassParams::new(p(0.1), p(0.02), p(0.2)))
                .class("nb", ClassParams::new(p(0.2), p(0.05), p(0.4)))
                .build()
                .unwrap(),
        );
        let study = TradeoffStudy {
            base: TwoSidedModel { false_negative: fn_model, false_positive: fp_model },
            roc: MachineRoc::builder()
                .cancer_class("ca", r_a)
                .cancer_class("cb", r_b)
                .normal_class("na", s_a)
                .normal_class("nb", s_b)
                .build()
                .unwrap(),
            cancer_profile: DemandProfile::builder()
                .class("ca", 0.6)
                .class("cb", 0.4)
                .build()
                .unwrap(),
            normal_profile: DemandProfile::builder()
                .class("na", 0.7)
                .class("nb", 0.3)
                .build()
                .unwrap(),
            prevalence: p(0.01),
        };
        let sweep = study.sweep(9).unwrap();
        for pair in sweep.windows(2) {
            prop_assert!(pair[1].fn_rate <= pair[0].fn_rate);
            prop_assert!(pair[1].fp_rate >= pair[0].fp_rate);
        }
    }
}
